//! The scientific (SQLShare-like) workload.
//!
//! The paper's first dataset is a biology database uploaded to SQLShare: a
//! wide differential-expression table `PmTE_ALL_DE` (3926 rows × 16 columns)
//! and a small companion table `table_Psemu1FL_RT_spgp_gp_ok` (424 rows × 3
//! columns) whose foreign-key join has 417 rows.  The raw upload is not
//! redistributable, so this module synthesizes a dataset with the same table
//! shapes, cardinalities, attribute types (log fold-changes and p-values per
//! nutrient condition) and join cardinality, plus analogues of the two real
//! biologist queries Q1 and Q2.

use qfe_query::{evaluate, ComparisonOp, Conjunct, DnfPredicate, SpjQuery, Term};
use qfe_relation::{ColumnDef, DataType, Database, ForeignKey, Table, TableSchema, Tuple, Value};
use rand::Rng;

use crate::workload::{rounded_uniform, seeded_rng, Workload};

/// Parent-table cardinality used by the paper.
pub const PMTE_ROWS: usize = 3926;
/// Child-table cardinality used by the paper.
pub const COMPANION_ROWS: usize = 424;
/// Foreign-key-join cardinality used by the paper (424 child rows, 7 of which
/// have a NULL gene reference and drop out of the join).
pub const JOIN_ROWS: usize = 417;

/// Builds the scientific workload at the paper's scale.
pub fn scientific(seed: u64) -> Workload {
    scientific_scaled(seed, PMTE_ROWS, COMPANION_ROWS, COMPANION_ROWS - JOIN_ROWS)
}

/// Builds a smaller scientific workload (used by fast unit/integration tests).
pub fn scientific_small(seed: u64) -> Workload {
    scientific_scaled(seed, 300, 60, 4)
}

/// Builds the scientific workload with explicit cardinalities.
///
/// `dangling_children` child rows receive a NULL gene reference so that the
/// foreign-key join has `child_rows - dangling_children` rows.
pub fn scientific_scaled(
    seed: u64,
    parent_rows: usize,
    child_rows: usize,
    dangling_children: usize,
) -> Workload {
    let mut rng = seeded_rng(seed);

    // ----- PmTE_ALL_DE: 16 columns -------------------------------------
    let conditions = ["Fe", "P", "Si", "Urea"];
    let mut columns = vec![ColumnDef::new("gene_id", DataType::Int)];
    for c in &conditions {
        columns.push(ColumnDef::new(format!("logFC_{c}"), DataType::Float));
    }
    for c in &conditions {
        columns.push(ColumnDef::new(format!("PValue_{c}"), DataType::Float));
    }
    columns.push(ColumnDef::new("expr_mean", DataType::Float));
    columns.push(ColumnDef::new("expr_var", DataType::Float));
    columns.push(ColumnDef::new("length_bp", DataType::Int));
    columns.push(ColumnDef::new("gc_content", DataType::Float));
    columns.push(ColumnDef::new("chromosome", DataType::Text));
    columns.push(ColumnDef::new("cluster_id", DataType::Int));
    columns.push(ColumnDef::new("annotation", DataType::Text));
    assert_eq!(columns.len(), 16);
    let pmte_schema = TableSchema::new("PmTE_ALL_DE", columns)
        .expect("valid schema")
        .with_primary_key(&["gene_id"])
        .expect("valid key");

    let chromosomes = ["chr1", "chr2", "chr3", "chr4", "chr5"];
    let annotations = [
        "transport",
        "kinase",
        "unknown",
        "ribosomal",
        "membrane",
        "stress",
    ];
    let mut pmte_rows: Vec<Tuple> = Vec::with_capacity(parent_rows);
    for gene in 0..parent_rows {
        let mut values = vec![Value::Int(gene as i64 + 1)];
        for _ in &conditions {
            values.push(Value::Float(rounded_uniform(&mut rng, -4.0, 4.0)));
        }
        for _ in &conditions {
            values.push(Value::Float(rounded_uniform(&mut rng, 0.0, 1.0)));
        }
        values.push(Value::Float(rounded_uniform(&mut rng, 0.0, 500.0)));
        values.push(Value::Float(rounded_uniform(&mut rng, 0.0, 50.0)));
        values.push(Value::Int(rng.gen_range(200..12_000)));
        values.push(Value::Float(rounded_uniform(&mut rng, 0.30, 0.65)));
        values.push(Value::Text(
            chromosomes[rng.gen_range(0..chromosomes.len())].to_string(),
        ));
        values.push(Value::Int(rng.gen_range(1..40)));
        values.push(Value::Text(
            annotations[rng.gen_range(0..annotations.len())].to_string(),
        ));
        pmte_rows.push(Tuple::new(values));
    }

    // ----- companion table: 3 columns ----------------------------------
    let companion_schema = TableSchema::new(
        "table_Psemu1FL_RT_spgp_gp_ok",
        vec![
            ColumnDef::nullable("gene_id", DataType::Int),
            ColumnDef::new("rt_value", DataType::Float),
            ColumnDef::new("spgp_group", DataType::Text),
        ],
    )
    .expect("valid schema");
    let groups = ["gp1", "gp2", "gp3", "gp4"];
    let mut companion_rows: Vec<Tuple> = Vec::with_capacity(child_rows);
    for i in 0..child_rows {
        let gene_ref = if i < dangling_children {
            Value::Null
        } else {
            Value::Int(rng.gen_range(1..=parent_rows as i64))
        };
        companion_rows.push(Tuple::new(vec![
            gene_ref,
            Value::Float(rounded_uniform(&mut rng, 0.0, 40.0)),
            Value::Text(groups[rng.gen_range(0..groups.len())].to_string()),
        ]));
    }

    let mut database = Database::new();
    database
        .add_table(Table::with_rows(pmte_schema, pmte_rows).expect("valid PmTE rows"))
        .expect("add PmTE");
    database
        .add_table(
            Table::with_rows(companion_schema, companion_rows).expect("valid companion rows"),
        )
        .expect("add companion");
    database
        .add_foreign_key(ForeignKey::new(
            "table_Psemu1FL_RT_spgp_gp_ok",
            "gene_id",
            "PmTE_ALL_DE",
            "gene_id",
        ))
        .expect("valid foreign key");

    // ----- target queries ------------------------------------------------
    // Q1: genes whose fold changes are flat for Fe but strongly down for the
    // other nutrients, significant in at least one condition (the paper's Q1
    // shape), projected over all companion-join attributes (π_* in the paper;
    // here a representative projection list).
    let q1 = scientific_q1();
    let q2 = scientific_q2();

    // Plant rows that satisfy Q1 (1 row) and Q2 (6 rows) and make sure no
    // other joined row satisfies them, mirroring the paper's result
    // cardinalities (1 and 6). Q1 owns gene 1, Q2 owns genes 2–7.
    let mut database = plant_query_rows(database, parent_rows, child_rows, dangling_children);
    calibrate(&mut database, &q1, 1, 0);
    calibrate(&mut database, &q2, 6, 1);

    Workload {
        name: "scientific".to_string(),
        database,
        queries: vec![q1, q2],
    }
}

/// The analogue of the paper's Q1 (flat Fe response, strong down-regulation
/// elsewhere, significant somewhere).
pub fn scientific_q1() -> SpjQuery {
    let base = vec![
        Term::compare("logFC_Fe", ComparisonOp::Lt, 0.5f64),
        Term::compare("logFC_Fe", ComparisonOp::Gt, -0.5f64),
        Term::compare("logFC_P", ComparisonOp::Lt, -1.0f64),
        Term::compare("logFC_Si", ComparisonOp::Lt, -1.0f64),
        Term::compare("logFC_Urea", ComparisonOp::Lt, -1.0f64),
    ];
    let pvalue_terms = ["Fe", "P", "Si", "Urea"]
        .iter()
        .map(|c| Term::compare(format!("PValue_{c}"), ComparisonOp::Lt, 0.05f64));
    let mut conjuncts = Vec::new();
    for p in pvalue_terms {
        let mut terms = base.clone();
        terms.push(p);
        conjuncts.push(Conjunct::new(terms));
    }
    SpjQuery::new(
        vec!["PmTE_ALL_DE", "table_Psemu1FL_RT_spgp_gp_ok"],
        vec!["PmTE_ALL_DE.gene_id", "logFC_Fe", "rt_value", "spgp_group"],
        DnfPredicate::new(conjuncts),
    )
    .with_label("Q1")
}

/// The analogue of the paper's Q2 (Fe-flat, up-regulated elsewhere,
/// significant somewhere).
pub fn scientific_q2() -> SpjQuery {
    let base = vec![
        Term::compare("logFC_Fe", ComparisonOp::Lt, 1.0f64),
        Term::compare("logFC_P", ComparisonOp::Gt, 1.0f64),
        Term::compare("logFC_Si", ComparisonOp::Gt, 1.0f64),
        Term::compare("logFC_Urea", ComparisonOp::Gt, 1.0f64),
    ];
    let pvalue_terms = ["Fe", "P", "Si", "Urea"]
        .iter()
        .map(|c| Term::compare(format!("PValue_{c}"), ComparisonOp::Lt, 0.05f64));
    let mut conjuncts = Vec::new();
    for p in pvalue_terms {
        let mut terms = base.clone();
        terms.push(p);
        conjuncts.push(Conjunct::new(terms));
    }
    SpjQuery::new(
        vec!["PmTE_ALL_DE", "table_Psemu1FL_RT_spgp_gp_ok"],
        vec!["PmTE_ALL_DE.gene_id", "logFC_P", "rt_value", "spgp_group"],
        DnfPredicate::new(conjuncts),
    )
    .with_label("Q2")
}

/// Ensures some joined rows exist that can satisfy the target queries by
/// pointing a handful of child rows at dedicated parent genes.
fn plant_query_rows(
    mut database: Database,
    parent_rows: usize,
    child_rows: usize,
    dangling_children: usize,
) -> Database {
    // Reserve the first few non-dangling child rows and point them at the
    // first few genes, one child per gene, so that calibrate() can shape those
    // genes' measurements without join fan-out surprises.
    let reserved = 8
        .min(child_rows.saturating_sub(dangling_children))
        .min(parent_rows);
    {
        let child = database
            .table_mut("table_Psemu1FL_RT_spgp_gp_ok")
            .expect("companion table exists");
        for i in 0..reserved {
            child
                .update_cell(dangling_children + i, "gene_id", Value::Int(i as i64 + 1))
                .expect("valid gene reference");
        }
        // No other child row may reference a reserved gene, otherwise the
        // reserved genes' join fan-out would exceed one and the calibrated
        // result cardinalities would drift.
        for row in (dangling_children + reserved)..child_rows {
            let gene = child
                .row(row)
                .and_then(|r| r.get(0).cloned())
                .and_then(|v| v.as_i64());
            if let Some(g) = gene {
                if g <= reserved as i64 && parent_rows > reserved {
                    let remapped =
                        reserved as i64 + 1 + (g + row as i64) % (parent_rows - reserved) as i64;
                    child
                        .update_cell(row, "gene_id", Value::Int(remapped))
                        .expect("valid remapped gene reference");
                }
            }
        }
    }
    database
}

/// Adjusts the parent table so that `query` returns exactly `target_rows`
/// joined rows: the reserved genes starting at parent row `first_gene_row`
/// are set to satisfy the predicate, every other satisfying row is nudged out
/// of range.
fn calibrate(database: &mut Database, query: &SpjQuery, target_rows: usize, first_gene_row: usize) {
    // 1. Make the first `target_rows` reserved genes satisfy the predicate.
    let satisfying_values: Vec<(String, Value)> = query
        .predicate
        .conjuncts()
        .first()
        .map(|c| {
            c.terms()
                .iter()
                .map(|t| match t {
                    Term::Compare {
                        attribute,
                        op,
                        value,
                    } => {
                        let v = value.as_f64().unwrap_or(0.0);
                        let adjusted = match op {
                            ComparisonOp::Lt => v - 0.25,
                            ComparisonOp::Le | ComparisonOp::Eq => v,
                            ComparisonOp::Gt => v + 0.25,
                            ComparisonOp::Ge => v,
                            ComparisonOp::Ne => v + 1.0,
                        };
                        (strip_table(attribute), Value::Float(adjusted))
                    }
                    other => (strip_table(other.attribute()), other.constants()[0].clone()),
                })
                .collect()
        })
        .unwrap_or_default();
    {
        let parent = database.table_mut("PmTE_ALL_DE").expect("parent table");
        for gene_row in first_gene_row..first_gene_row + target_rows {
            for (column, value) in &satisfying_values {
                if parent.schema().column_index(column).is_some() {
                    parent
                        .update_cell(gene_row, column, value.clone())
                        .expect("calibration update");
                }
            }
        }
    }

    // The special-case for Q1 vs Q2: their logFC ranges are disjoint
    // (down-regulated vs up-regulated), so calibrating one never creates
    // accidental satisfiers of the other among the reserved genes. Remaining
    // accidental satisfiers elsewhere are nudged out of range next.

    // 2. Demote every other satisfying joined row by pushing its first logFC
    //    attribute far out of every range used by the query.
    loop {
        let result = evaluate(query, database).expect("query evaluates");
        if result.len() <= target_rows {
            break;
        }
        // Find a satisfying gene beyond the reserved block and knock it out.
        let join = qfe_relation::foreign_key_join(
            database,
            &query
                .tables
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
        .expect("join");
        let bound = qfe_query::BoundQuery::bind(query, &join).expect("bind");
        let gene_col = join.resolve_column("PmTE_ALL_DE.gene_id").expect("gene_id");
        let protected = (first_gene_row as i64 + 1)..=(first_gene_row as i64 + target_rows as i64);
        let mut demoted = false;
        for row in join.rows() {
            if bound.matches_row(&row.tuple) {
                let gene = row.tuple.get(gene_col).and_then(Value::as_i64).unwrap_or(0);
                if !protected.contains(&gene) {
                    let parent_row = (gene - 1) as usize;
                    database
                        .table_mut("PmTE_ALL_DE")
                        .expect("parent")
                        .update_cell(parent_row, "logFC_P", Value::Float(9.9))
                        .expect("demotion update");
                    database
                        .table_mut("PmTE_ALL_DE")
                        .expect("parent")
                        .update_cell(parent_row, "logFC_Urea", Value::Float(-9.9))
                        .expect("demotion update");
                    demoted = true;
                    break;
                }
            }
        }
        if !demoted {
            break;
        }
    }
}

fn strip_table(attribute: &str) -> String {
    attribute
        .rsplit_once('.')
        .map(|(_, c)| c.to_string())
        .unwrap_or_else(|| attribute.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_relation::full_foreign_key_join;

    #[test]
    fn small_workload_has_expected_shape_and_cardinalities() {
        let w = scientific_small(42);
        assert_eq!(w.name, "scientific");
        let parent = w.database.table("PmTE_ALL_DE").unwrap();
        let child = w.database.table("table_Psemu1FL_RT_spgp_gp_ok").unwrap();
        assert_eq!(parent.arity(), 16);
        assert_eq!(child.arity(), 3);
        assert_eq!(parent.len(), 300);
        assert_eq!(child.len(), 60);
        let join = full_foreign_key_join(&w.database).unwrap();
        assert_eq!(join.len(), 56); // 60 children - 4 dangling
        assert!(w.database.check_integrity().is_ok());
    }

    #[test]
    fn q1_and_q2_return_the_paper_cardinalities() {
        let w = scientific_small(42);
        let r1 = w.example_result("Q1").unwrap();
        let r2 = w.example_result("Q2").unwrap();
        assert_eq!(r1.len(), 1, "Q1 must return 1 row as in the paper");
        assert_eq!(r2.len(), 6, "Q2 must return 6 rows as in the paper");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = scientific_small(7);
        let b = scientific_small(7);
        assert_eq!(
            a.database.table("PmTE_ALL_DE").unwrap().rows(),
            b.database.table("PmTE_ALL_DE").unwrap().rows()
        );
        let c = scientific_small(8);
        assert_ne!(
            a.database.table("PmTE_ALL_DE").unwrap().rows(),
            c.database.table("PmTE_ALL_DE").unwrap().rows()
        );
    }

    #[test]
    fn queries_share_the_two_table_join_schema() {
        let w = scientific_small(42);
        for q in &w.queries {
            assert_eq!(q.join_signature().len(), 2);
        }
        assert!(w.query("Q1").is_some());
        assert!(w.query("Q2").is_some());
    }

    #[test]
    #[ignore = "full paper-scale dataset; run with --ignored"]
    fn full_scale_matches_paper_cardinalities() {
        let w = scientific(42);
        let parent = w.database.table("PmTE_ALL_DE").unwrap();
        let child = w.database.table("table_Psemu1FL_RT_spgp_gp_ok").unwrap();
        assert_eq!(parent.len(), PMTE_ROWS);
        assert_eq!(child.len(), COMPANION_ROWS);
        let join = full_foreign_key_join(&w.database).unwrap();
        assert_eq!(join.len(), JOIN_ROWS);
        assert_eq!(w.example_result("Q1").unwrap().len(), 1);
        assert_eq!(w.example_result("Q2").unwrap().len(), 6);
    }
}
