//! Common workload representation and seeded random helpers.

use qfe_query::{evaluate, QueryResult, SpjQuery};
use qfe_relation::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A benchmark workload: a database plus the labeled target queries the
/// paper's evaluation runs against it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name ("scientific", "baseball", "adult").
    pub name: String,
    /// The database `D`.
    pub database: Database,
    /// The target queries, labeled as in the paper (Q1, Q2, …).
    pub queries: Vec<SpjQuery>,
}

impl Workload {
    /// The target query with the given label.
    pub fn query(&self, label: &str) -> Option<&SpjQuery> {
        self.queries
            .iter()
            .find(|q| q.label.as_deref() == Some(label))
    }

    /// Evaluates the labeled target query, producing the example result `R`
    /// used to seed a QFE session.
    pub fn example_result(&self, label: &str) -> Option<QueryResult> {
        let q = self.query(label)?;
        evaluate(q, &self.database).ok()
    }
}

/// Deterministic RNG used by all generators: fixed seeds give fixed datasets,
/// so experiments are reproducible run to run.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws a rounded float in `[lo, hi)` with three decimal places — keeps the
/// synthetic measurements readable when presented to a (simulated) user.
pub fn rounded_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let x: f64 = rng.gen_range(lo..hi);
    (x * 1000.0).round() / 1000.0
}

/// Picks one element of a slice.
#[allow(dead_code)]
pub fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::DnfPredicate;
    use qfe_relation::{tuple, ColumnDef, DataType, Table, TableSchema};

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = seeded_rng(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn rounded_uniform_stays_in_range_and_rounded() {
        let mut rng = seeded_rng(1);
        for _ in 0..100 {
            let x = rounded_uniform(&mut rng, -2.0, 2.0);
            assert!((-2.0..2.0).contains(&x));
            assert!(((x * 1000.0).round() - x * 1000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn workload_lookup_and_example_result() {
        let t = Table::with_rows(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
            )
            .unwrap(),
            vec![tuple![1i64, 10i64], tuple![2i64, 20i64]],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(t).unwrap();
        let q = SpjQuery::new(vec!["T"], vec!["id"], DnfPredicate::always_true()).with_label("Q1");
        let w = Workload {
            name: "tiny".into(),
            database: db,
            queries: vec![q],
        };
        assert!(w.query("Q1").is_some());
        assert!(w.query("Q9").is_none());
        assert_eq!(w.example_result("Q1").unwrap().len(), 2);
        assert!(w.example_result("Q9").is_none());
        let mut rng = seeded_rng(3);
        let xs = [1, 2, 3];
        assert!(xs.contains(pick(&mut rng, &xs)));
    }
}
