//! The Adult-census workload used by the paper's user study (Section 7.7).
//!
//! The study extracts a 5227-tuple `Adult` relation from the 1994 Census
//! database and runs three synthetic target queries over it.  This module
//! synthesizes an Adult-like single-table dataset of the same cardinality
//! with the usual census attributes and three target queries of increasing
//! predicate complexity.

use qfe_query::{ComparisonOp, Conjunct, DnfPredicate, SpjQuery, Term};
use qfe_relation::{ColumnDef, DataType, Database, Table, TableSchema, Tuple, Value};
use rand::Rng;

use crate::workload::{seeded_rng, Workload};

/// The paper's Adult extract cardinality.
pub const ADULT_ROWS: usize = 5227;

/// Builds the Adult workload at the paper's scale.
pub fn adult(seed: u64) -> Workload {
    adult_scaled(seed, ADULT_ROWS)
}

/// Builds a smaller Adult workload for fast tests.
pub fn adult_small(seed: u64) -> Workload {
    adult_scaled(seed, 500)
}

/// Builds the Adult workload with an explicit row count.
pub fn adult_scaled(seed: u64, rows: usize) -> Workload {
    let mut rng = seeded_rng(seed);
    let workclasses = [
        "Private",
        "Self-emp",
        "Federal-gov",
        "Local-gov",
        "State-gov",
    ];
    let educations = [
        "Bachelors",
        "HS-grad",
        "Masters",
        "Some-college",
        "Doctorate",
        "11th",
    ];
    let maritals = ["Married", "Never-married", "Divorced", "Widowed"];
    let occupations = [
        "Tech-support",
        "Craft-repair",
        "Sales",
        "Exec-managerial",
        "Prof-specialty",
        "Adm-clerical",
        "Machine-op-inspct",
    ];
    let races = ["White", "Black", "Asian-Pac-Islander", "Other"];
    let countries = [
        "United-States",
        "Mexico",
        "Philippines",
        "Germany",
        "Canada",
    ];

    let schema = TableSchema::new(
        "Adult",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("age", DataType::Int),
            ColumnDef::new("workclass", DataType::Text),
            ColumnDef::new("education", DataType::Text),
            ColumnDef::new("education_num", DataType::Int),
            ColumnDef::new("marital_status", DataType::Text),
            ColumnDef::new("occupation", DataType::Text),
            ColumnDef::new("race", DataType::Text),
            ColumnDef::new("sex", DataType::Text),
            ColumnDef::new("hours_per_week", DataType::Int),
            ColumnDef::new("native_country", DataType::Text),
            ColumnDef::new("capital_gain", DataType::Int),
        ],
    )
    .expect("adult schema")
    .with_primary_key(&["id"])
    .expect("adult key");

    let mut rows_v: Vec<Tuple> = Vec::with_capacity(rows);
    for id in 0..rows {
        rows_v.push(Tuple::new(vec![
            Value::Int(id as i64 + 1),
            Value::Int(rng.gen_range(17..90)),
            Value::Text(workclasses[rng.gen_range(0..workclasses.len())].to_string()),
            Value::Text(educations[rng.gen_range(0..educations.len())].to_string()),
            Value::Int(rng.gen_range(3..17)),
            Value::Text(maritals[rng.gen_range(0..maritals.len())].to_string()),
            Value::Text(occupations[rng.gen_range(0..occupations.len())].to_string()),
            Value::Text(races[rng.gen_range(0..races.len())].to_string()),
            Value::Text(if rng.gen_bool(0.55) { "Male" } else { "Female" }.to_string()),
            Value::Int(rng.gen_range(10..80)),
            Value::Text(countries[rng.gen_range(0..countries.len())].to_string()),
            Value::Int(if rng.gen_bool(0.85) {
                0
            } else {
                rng.gen_range(1000..60_000)
            }),
        ]));
    }

    let mut database = Database::new();
    database
        .add_table(Table::with_rows(schema, rows_v).expect("adult rows"))
        .expect("add Adult");

    let queries = vec![user_study_u1(), user_study_u2(), user_study_u3()];
    Workload {
        name: "adult".to_string(),
        database,
        queries,
    }
}

/// U1: elderly doctorate holders (simple two-term conjunction).
pub fn user_study_u1() -> SpjQuery {
    SpjQuery::new(
        vec!["Adult"],
        vec!["id", "age", "occupation"],
        DnfPredicate::conjunction(vec![
            Term::compare("age", ComparisonOp::Gt, 80i64),
            Term::eq("education", "Doctorate"),
        ]),
    )
    .with_label("U1")
}

/// U2: long-hours federal employees with capital gains (three-term
/// conjunction mixing numeric and categorical attributes).
pub fn user_study_u2() -> SpjQuery {
    SpjQuery::new(
        vec!["Adult"],
        vec!["id", "hours_per_week", "workclass"],
        DnfPredicate::conjunction(vec![
            Term::eq("workclass", "Federal-gov"),
            Term::compare("hours_per_week", ComparisonOp::Gt, 70i64),
            Term::compare("capital_gain", ComparisonOp::Gt, 0i64),
        ]),
    )
    .with_label("U2")
}

/// U3: a disjunctive target (young tech-support workers or widowed
/// executives), exercising multi-conjunct predicates in the user study.
pub fn user_study_u3() -> SpjQuery {
    SpjQuery::new(
        vec!["Adult"],
        vec!["id", "age", "occupation"],
        DnfPredicate::new(vec![
            Conjunct::new(vec![
                Term::eq("occupation", "Tech-support"),
                Term::compare("age", ComparisonOp::Lt, 20i64),
            ]),
            Conjunct::new(vec![
                Term::eq("occupation", "Exec-managerial"),
                Term::eq("marital_status", "Widowed"),
                Term::compare("age", ComparisonOp::Gt, 84i64),
            ]),
        ]),
    )
    .with_label("U3")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_integrity() {
        let w = adult_small(5);
        let t = w.database.table("Adult").unwrap();
        assert_eq!(t.arity(), 12);
        assert_eq!(t.len(), 500);
        assert!(w.database.check_integrity().is_ok());
        assert_eq!(w.queries.len(), 3);
    }

    #[test]
    fn user_study_queries_return_small_results() {
        let w = adult_small(5);
        for label in ["U1", "U2", "U3"] {
            let r = w.example_result(label).unwrap();
            assert!(r.len() <= 40, "{label} should stay small, got {}", r.len());
        }
        // At least one of the three returns something on the default seed.
        assert!(["U1", "U2", "U3"]
            .iter()
            .any(|l| !w.example_result(l).unwrap().is_empty()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = adult_small(9);
        let b = adult_small(9);
        assert_eq!(
            a.database.table("Adult").unwrap().rows()[..10],
            b.database.table("Adult").unwrap().rows()[..10]
        );
    }

    #[test]
    #[ignore = "full paper-scale dataset; run with --ignored"]
    fn full_scale_cardinality() {
        let w = adult(5);
        assert_eq!(w.database.table("Adult").unwrap().len(), ADULT_ROWS);
    }
}
