//! The baseball (Lahman-like) workload.
//!
//! The paper's second dataset is the Lahman Major-League-Baseball archive,
//! restricted to three tables: Manager (200 rows × 11 columns), Team
//! (252 rows × 29 columns) and Batting (6977 rows × 15 columns), whose
//! foreign-key join has 8810 rows.  This module synthesizes tables with the
//! same shapes and foreign-key graph plus analogues of the paper's four
//! synthetic queries Q3–Q6 (equality/range predicates over two relations,
//! `IN`-style disjunction over three relations, conjunctions and a nested
//! disjunction).

use qfe_query::{ComparisonOp, Conjunct, DnfPredicate, SpjQuery, Term};
use qfe_relation::{ColumnDef, DataType, Database, ForeignKey, Table, TableSchema, Tuple, Value};
use rand::Rng;

use crate::workload::{rounded_uniform, seeded_rng, Workload};

/// Paper cardinalities.
pub const MANAGER_ROWS: usize = 200;
/// Team-table cardinality used by the paper.
pub const TEAM_ROWS: usize = 252;
/// Batting-table cardinality used by the paper.
pub const BATTING_ROWS: usize = 6977;

/// Builds the baseball workload at the paper's scale.
pub fn baseball(seed: u64) -> Workload {
    baseball_scaled(seed, MANAGER_ROWS, TEAM_ROWS, BATTING_ROWS)
}

/// Builds a smaller baseball workload for fast tests.
pub fn baseball_small(seed: u64) -> Workload {
    baseball_scaled(seed, 30, 36, 700)
}

/// Builds the baseball workload with explicit cardinalities.
pub fn baseball_scaled(
    seed: u64,
    manager_rows: usize,
    team_rows: usize,
    batting_rows: usize,
) -> Workload {
    let mut rng = seeded_rng(seed);
    let team_codes = [
        "CIN", "NYA", "BOS", "LAN", "CHN", "SLN", "PIT", "PHI", "DET", "BAL", "OAK", "SEA",
    ];

    // ----- Team: 29 columns ---------------------------------------------
    let mut team_cols = vec![
        ColumnDef::new("team_key", DataType::Int),
        ColumnDef::new("teamID", DataType::Text),
        ColumnDef::new("year", DataType::Int),
        ColumnDef::new("lgID", DataType::Text),
        ColumnDef::new("Rank", DataType::Int),
        ColumnDef::new("G", DataType::Int),
        ColumnDef::new("W", DataType::Int),
        ColumnDef::new("L", DataType::Int),
        ColumnDef::new("R", DataType::Int),
        ColumnDef::new("RA", DataType::Int),
        ColumnDef::new("IP", DataType::Int),
        ColumnDef::new("BBA", DataType::Int),
        ColumnDef::new("SOA", DataType::Int),
        ColumnDef::new("E", DataType::Int),
        ColumnDef::new("attendance", DataType::Int),
    ];
    for i in team_cols.len()..29 {
        team_cols.push(ColumnDef::new(format!("team_stat_{i}"), DataType::Float));
    }
    let team_schema = TableSchema::new("Team", team_cols)
        .expect("team schema")
        .with_primary_key(&["team_key"])
        .expect("team key");
    let mut team_rows_v: Vec<Tuple> = Vec::with_capacity(team_rows);
    for key in 0..team_rows {
        let year = 1970 + (key % 25) as i64;
        let mut values = vec![
            Value::Int(key as i64 + 1),
            Value::Text(team_codes[key % team_codes.len()].to_string()),
            Value::Int(year),
            Value::Text(if key % 2 == 0 { "NL" } else { "AL" }.to_string()),
            Value::Int(rng.gen_range(1..8)),
            Value::Int(162),
            Value::Int(rng.gen_range(50..110)),
            Value::Int(rng.gen_range(50..110)),
            Value::Int(rng.gen_range(550..950)),
            Value::Int(rng.gen_range(550..950)),
            Value::Int(rng.gen_range(4200..4600)),
            Value::Int(rng.gen_range(350..650)),
            Value::Int(rng.gen_range(700..1300)),
            Value::Int(rng.gen_range(70..180)),
            Value::Int(rng.gen_range(800_000..3_200_000)),
        ];
        for _ in values.len()..29 {
            values.push(Value::Float(rounded_uniform(&mut rng, 0.0, 10.0)));
        }
        team_rows_v.push(Tuple::new(values));
    }

    // ----- Manager: 11 columns -------------------------------------------
    let manager_schema = TableSchema::new(
        "Manager",
        vec![
            ColumnDef::new("mgr_key", DataType::Int),
            ColumnDef::new("managerID", DataType::Text),
            ColumnDef::new("team_key", DataType::Int),
            ColumnDef::new("year", DataType::Int),
            ColumnDef::new("G", DataType::Int),
            ColumnDef::new("W", DataType::Int),
            ColumnDef::new("L", DataType::Int),
            ColumnDef::new("Rank", DataType::Int),
            ColumnDef::new("plyrMgr", DataType::Text),
            ColumnDef::new("lgID", DataType::Text),
            ColumnDef::new("R", DataType::Int),
        ],
    )
    .expect("manager schema")
    .with_primary_key(&["mgr_key"])
    .expect("manager key");
    let mut manager_rows_v: Vec<Tuple> = Vec::with_capacity(manager_rows);
    for key in 0..manager_rows {
        // Managers cover the first `manager_rows` teams (some teams have a
        // second, mid-season manager to give the three-way join a fan-out a
        // little above 1, as in the real data).
        let team_key = if key < team_rows {
            key as i64 + 1
        } else {
            rng.gen_range(1..=team_rows as i64)
        };
        let year = 1970 + ((team_key - 1) % 25);
        manager_rows_v.push(Tuple::new(vec![
            Value::Int(key as i64 + 1),
            Value::Text(format!("mgr{:03}", key % 120)),
            Value::Int(team_key),
            Value::Int(year),
            Value::Int(162),
            Value::Int(rng.gen_range(50..110)),
            Value::Int(rng.gen_range(50..110)),
            Value::Int(rng.gen_range(1..8)),
            Value::Text(if rng.gen_bool(0.1) { "Y" } else { "N" }.to_string()),
            Value::Text(if key % 2 == 0 { "NL" } else { "AL" }.to_string()),
            Value::Int(rng.gen_range(550..950)),
        ]));
    }

    // ----- Batting: 15 columns --------------------------------------------
    let batting_schema = TableSchema::new(
        "Batting",
        vec![
            ColumnDef::new("bat_key", DataType::Int),
            ColumnDef::new("playerID", DataType::Text),
            ColumnDef::new("team_key", DataType::Int),
            ColumnDef::new("year", DataType::Int),
            ColumnDef::new("G", DataType::Int),
            ColumnDef::new("AB", DataType::Int),
            ColumnDef::new("R", DataType::Int),
            ColumnDef::new("H", DataType::Int),
            ColumnDef::new("B2", DataType::Int),
            ColumnDef::new("B3", DataType::Int),
            ColumnDef::new("HR", DataType::Int),
            ColumnDef::new("RBI", DataType::Int),
            ColumnDef::new("SB", DataType::Int),
            ColumnDef::new("BB", DataType::Int),
            ColumnDef::new("SO", DataType::Int),
        ],
    )
    .expect("batting schema")
    .with_primary_key(&["bat_key"])
    .expect("batting key");
    // Player pool: a few hundred recurring IDs, including the paper's named
    // players.
    let named_players = [
        "rosepe01",
        "esaskni01",
        "sotoma01",
        "brownto05",
        "pariske01",
        "welshch01",
    ];
    let pool_size = (batting_rows / 12).max(named_players.len() + 1);
    let mut batting_rows_v: Vec<Tuple> = Vec::with_capacity(batting_rows);
    for key in 0..batting_rows {
        let pid = key % pool_size;
        let player = if pid < named_players.len() {
            named_players[pid].to_string()
        } else {
            format!("player{pid:04}")
        };
        // Managers only exist for the first manager_rows.min(team_rows) teams;
        // point most batting rows at those so the three-way join keeps most of
        // the Batting table (the paper's join has ~1.26 rows per batting row).
        let covered = manager_rows.min(team_rows).max(1);
        let team_key = rng.gen_range(1..=covered as i64);
        let year = 1970 + ((team_key - 1) % 25);
        batting_rows_v.push(Tuple::new(vec![
            Value::Int(key as i64 + 1),
            Value::Text(player),
            Value::Int(team_key),
            Value::Int(year),
            Value::Int(rng.gen_range(20..162)),
            Value::Int(rng.gen_range(50..650)),
            Value::Int(rng.gen_range(0..120)),
            Value::Int(rng.gen_range(10..220)),
            Value::Int(rng.gen_range(0..45)),
            Value::Int(rng.gen_range(0..12)),
            Value::Int(rng.gen_range(0..45)),
            Value::Int(rng.gen_range(0..130)),
            Value::Int(rng.gen_range(0..60)),
            Value::Int(rng.gen_range(0..110)),
            Value::Int(rng.gen_range(10..180)),
        ]));
    }

    let mut database = Database::new();
    database
        .add_table(Table::with_rows(team_schema, team_rows_v).expect("team rows"))
        .expect("add Team");
    database
        .add_table(Table::with_rows(manager_schema, manager_rows_v).expect("manager rows"))
        .expect("add Manager");
    database
        .add_table(Table::with_rows(batting_schema, batting_rows_v).expect("batting rows"))
        .expect("add Batting");
    database
        .add_foreign_key(ForeignKey::new("Manager", "team_key", "Team", "team_key"))
        .expect("manager fk");
    database
        .add_foreign_key(ForeignKey::new("Batting", "team_key", "Team", "team_key"))
        .expect("batting fk");

    let queries = vec![q3(&database), q4(), q5(&database), q6(&database)];
    Workload {
        name: "baseball".to_string(),
        database,
        queries,
    }
}

/// Q3: managers of a specific franchise in a year range (Manager ⋈ Team,
/// conjunction of an equality and two range terms, mirroring the paper's
/// `teamID = "CIN" ∧ year > 1982 ∧ year <= 1987`). The year window is
/// calibrated against the generated data so the result is small but nonempty.
pub fn q3(database: &Database) -> SpjQuery {
    // Years of the CIN franchise present in the generated Team table.
    let mut cin_years: Vec<i64> = database
        .table("Team")
        .ok()
        .map(|t| {
            t.rows()
                .iter()
                .filter(|r| r.get(1).and_then(Value::as_str) == Some("CIN"))
                .filter_map(|r| r.get(2).and_then(Value::as_i64))
                .collect()
        })
        .unwrap_or_default();
    cin_years.sort();
    cin_years.dedup();
    let (lo, hi) = match cin_years.as_slice() {
        [] => (1982, 1987),
        years => {
            let lo = years[0];
            let hi = years[(years.len() - 1).min(4)];
            (lo - 1, hi)
        }
    };
    SpjQuery::new(
        vec!["Manager", "Team"],
        vec!["managerID", "Team.year", "Team.R"],
        DnfPredicate::conjunction(vec![
            Term::eq("teamID", "CIN"),
            Term::compare("Team.year", ComparisonOp::Gt, lo),
            Term::compare("Team.year", ComparisonOp::Le, hi),
        ]),
    )
    .with_label("Q3")
}

/// Q4: managers of the teams a set of named players batted for
/// (Manager ⋈ Team ⋈ Batting, a 4-way disjunction of equalities).
pub fn q4() -> SpjQuery {
    let players = ["sotoma01", "brownto05", "pariske01", "welshch01"];
    SpjQuery::new(
        vec!["Manager", "Team", "Batting"],
        vec!["managerID", "Team.year", "B2"],
        DnfPredicate::new(
            players
                .iter()
                .map(|p| Conjunct::new(vec![Term::eq("playerID", *p)]))
                .collect(),
        ),
    )
    .with_label("Q4")
}

/// Q5: one player's high-HR, low-doubles seasons (3-way join, conjunction of
/// an equality and two numeric comparisons). The numeric thresholds are
/// calibrated against the generated data so the result stays small (~4 rows).
pub fn q5(database: &Database) -> SpjQuery {
    let hr_threshold = column_quantile(database, "Batting", "HR", 0.5).unwrap_or(1.0);
    let b2_threshold = column_quantile(database, "Batting", "B2", 0.6).unwrap_or(3.0);
    SpjQuery::new(
        vec!["Manager", "Team", "Batting"],
        vec!["managerID", "Team.year", "HR"],
        DnfPredicate::conjunction(vec![
            Term::eq("playerID", "rosepe01"),
            Term::compare("HR", ComparisonOp::Gt, hr_threshold),
            Term::compare("B2", ComparisonOp::Le, b2_threshold),
        ]),
    )
    .with_label("Q5")
}

/// Q6: one player's seasons filtered by a nested disjunction over team
/// pitching statistics (3-way join, DNF with two conjuncts).
pub fn q6(database: &Database) -> SpjQuery {
    let ip = column_quantile(database, "Team", "IP", 0.5).unwrap_or(4380.0);
    let bba = column_quantile(database, "Team", "BBA", 0.4).unwrap_or(485.0);
    SpjQuery::new(
        vec!["Manager", "Team", "Batting"],
        vec!["managerID", "Team.year", "B3"],
        DnfPredicate::new(vec![
            Conjunct::new(vec![
                Term::eq("playerID", "esaskni01"),
                Term::compare("IP", ComparisonOp::Gt, ip),
            ]),
            Conjunct::new(vec![
                Term::eq("playerID", "esaskni01"),
                Term::compare("IP", ComparisonOp::Le, ip),
                Term::compare("BBA", ComparisonOp::Le, bba),
            ]),
        ]),
    )
    .with_label("Q6")
}

/// The q-quantile of a numeric column, as a float.
fn column_quantile(database: &Database, table: &str, column: &str, q: f64) -> Option<f64> {
    let mut values: Vec<f64> = database
        .table(table)
        .ok()?
        .column_values(column)
        .ok()?
        .iter()
        .filter_map(Value::as_f64)
        .collect();
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((values.len() - 1) as f64 * q).round() as usize;
    Some(values[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_relation::foreign_key_join;

    #[test]
    fn small_workload_shape_and_integrity() {
        let w = baseball_small(11);
        assert_eq!(w.database.table("Manager").unwrap().arity(), 11);
        assert_eq!(w.database.table("Team").unwrap().arity(), 29);
        assert_eq!(w.database.table("Batting").unwrap().arity(), 15);
        assert!(w.database.check_integrity().is_ok());
        assert_eq!(w.queries.len(), 4);
    }

    #[test]
    fn three_way_join_has_fanout_at_least_batting_coverage() {
        let w = baseball_small(11);
        let join = foreign_key_join(
            &w.database,
            &[
                "Manager".to_string(),
                "Team".to_string(),
                "Batting".to_string(),
            ],
        )
        .unwrap();
        // Every batting row whose team has a manager appears at least once.
        assert!(join.len() >= w.database.table("Batting").unwrap().len() / 2);
    }

    #[test]
    fn queries_return_small_nonempty_results() {
        let w = baseball_small(11);
        for label in ["Q3", "Q4", "Q5", "Q6"] {
            let r = w.example_result(label).unwrap();
            assert!(!r.is_empty(), "{label} must return at least one row");
            assert!(r.len() <= 80, "{label} must stay small, got {}", r.len());
        }
    }

    #[test]
    fn q3_is_two_way_and_q4_to_q6_are_three_way() {
        let w = baseball_small(11);
        assert_eq!(w.query("Q3").unwrap().join_signature().len(), 2);
        for label in ["Q4", "Q5", "Q6"] {
            assert_eq!(w.query(label).unwrap().join_signature().len(), 3, "{label}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = baseball_small(3);
        let b = baseball_small(3);
        assert_eq!(
            a.database.table("Batting").unwrap().rows()[..20],
            b.database.table("Batting").unwrap().rows()[..20]
        );
    }

    #[test]
    #[ignore = "full paper-scale dataset; run with --ignored"]
    fn full_scale_cardinalities() {
        let w = baseball(11);
        assert_eq!(w.database.table("Manager").unwrap().len(), MANAGER_ROWS);
        assert_eq!(w.database.table("Team").unwrap().len(), TEAM_ROWS);
        assert_eq!(w.database.table("Batting").unwrap().len(), BATTING_ROWS);
        for label in ["Q3", "Q4", "Q5", "Q6"] {
            assert!(!w.example_result(label).unwrap().is_empty());
        }
    }
}
