//! Dataset variants for the Section 7.7 sensitivity experiments.
//!
//! * **Initial-pair size** — subsets `D_1 ⊂ D_2 ⊂ D_3 ⊂ D_4 = D` built by
//!   keeping a prefix of the rows of every table that is not referenced by a
//!   foreign key (so referential integrity is preserved and
//!   `Q(D_i) ⊆ Q(D_{i+1})` for monotone selections).
//! * **Active-domain entropy** — variants that reduce the number of distinct
//!   values of one attribute while preserving the result of a reference query
//!   (values are only merged within the same truth assignment of the query's
//!   terms on that attribute, so `Q(D_i) = Q(D_j)` holds by construction).

use qfe_query::{SpjQuery, Term};
use qfe_relation::{Database, Value};

/// Builds a database subset keeping roughly `fraction` of the rows of every
/// table that is not referenced by any foreign key (child/leaf tables);
/// referenced (parent) tables are kept whole so that no dangling references
/// are introduced.
pub fn child_table_subset(database: &Database, fraction: f64) -> Database {
    let fraction = fraction.clamp(0.0, 1.0);
    let referenced: Vec<String> = database
        .foreign_keys()
        .iter()
        .map(|fk| fk.parent_table.clone())
        .collect();
    let mut subset = database.clone();
    let table_names: Vec<String> = database
        .table_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    for name in table_names {
        if referenced.contains(&name) {
            continue;
        }
        let keep = ((database.table(&name).map(|t| t.len()).unwrap_or(0) as f64) * fraction).ceil()
            as usize;
        let table = subset.table_mut(&name).expect("table exists");
        while table.len() > keep.max(1) {
            let last = table.len() - 1;
            table.delete_row(last).expect("row exists");
        }
    }
    subset
}

/// The four nested subsets `(¼, ½, ¾, 1) × D` used by the initial-pair-size
/// experiment, smallest first.
pub fn initial_size_variants(database: &Database) -> Vec<(String, Database)> {
    [0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&f| {
            (
                format!("D{}", (f * 4.0) as usize),
                child_table_subset(database, f),
            )
        })
        .collect()
}

/// Reduces the number of distinct values of `table.column` to roughly
/// `distinct_fraction` of the original count, merging values only when they
/// satisfy exactly the same terms of `reference_query` on that column — so
/// the reference query's result is unchanged.
pub fn entropy_variant(
    database: &Database,
    table: &str,
    column: &str,
    distinct_fraction: f64,
    reference_query: &SpjQuery,
) -> Database {
    let mut variant = database.clone();
    let Ok(original_table) = database.table(table) else {
        return variant;
    };
    let Ok(values) = original_table.active_domain(column) else {
        return variant;
    };
    if values.is_empty() {
        return variant;
    }
    // Terms of the reference query on this column (by bare or qualified name).
    let terms: Vec<&Term> = reference_query
        .predicate
        .all_terms()
        .into_iter()
        .filter(|t| {
            let a = t.attribute();
            a == column || a.ends_with(&format!(".{column}")) || a == format!("{table}.{column}")
        })
        .collect();
    let truth = |v: &Value| -> Vec<bool> { terms.iter().map(|t| t.eval(v)).collect() };

    // Group the active domain by truth vector, then map each value to one of
    // the first ceil(fraction * group size) representatives of its group.
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<Vec<bool>, Vec<Value>> = BTreeMap::new();
    for v in &values {
        groups.entry(truth(v)).or_default().push(v.clone());
    }
    let mut mapping: BTreeMap<Value, Value> = BTreeMap::new();
    for group in groups.values() {
        let keep = ((group.len() as f64) * distinct_fraction.clamp(0.05, 1.0)).ceil() as usize;
        let keep = keep.max(1).min(group.len());
        for (i, v) in group.iter().enumerate() {
            mapping.insert(v.clone(), group[i % keep].clone());
        }
    }

    let col_idx = original_table
        .schema()
        .column_index(column)
        .expect("column exists");
    let table_mut = variant.table_mut(table).expect("table exists");
    for row in 0..table_mut.len() {
        let current = table_mut.row(row).and_then(|r| r.get(col_idx).cloned());
        if let Some(current) = current {
            if let Some(new_value) = mapping.get(&current) {
                if *new_value != current {
                    table_mut
                        .update_cell_at(row, col_idx, new_value.clone())
                        .expect("value conforms");
                }
            }
        }
    }
    variant
}

/// The five decreasing-entropy variants (distinct fractions 1.0, 0.8, 0.6,
/// 0.4, 0.2) used by the entropy experiment, highest entropy first.
pub fn entropy_variants(
    database: &Database,
    table: &str,
    column: &str,
    reference_query: &SpjQuery,
) -> Vec<(String, Database)> {
    [1.0, 0.8, 0.6, 0.4, 0.2]
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            (
                format!("E{}", i + 1),
                entropy_variant(database, table, column, f, reference_query),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scientific::scientific_small;
    use qfe_query::evaluate;

    #[test]
    fn child_subsets_preserve_integrity_and_shrink_children() {
        let w = scientific_small(42);
        let quarter = child_table_subset(&w.database, 0.25);
        assert!(quarter.check_integrity().is_ok());
        let full_child = w
            .database
            .table("table_Psemu1FL_RT_spgp_gp_ok")
            .unwrap()
            .len();
        let quarter_child = quarter.table("table_Psemu1FL_RT_spgp_gp_ok").unwrap().len();
        assert!(quarter_child < full_child);
        assert_eq!(
            quarter.table("PmTE_ALL_DE").unwrap().len(),
            w.database.table("PmTE_ALL_DE").unwrap().len(),
            "parent tables are kept whole"
        );
    }

    #[test]
    fn initial_size_variants_are_nested() {
        let w = scientific_small(42);
        let variants = initial_size_variants(&w.database);
        assert_eq!(variants.len(), 4);
        let sizes: Vec<usize> = variants
            .iter()
            .map(|(_, d)| d.table("table_Psemu1FL_RT_spgp_gp_ok").unwrap().len())
            .collect();
        for pair in sizes.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        assert_eq!(
            sizes[3],
            w.database
                .table("table_Psemu1FL_RT_spgp_gp_ok")
                .unwrap()
                .len()
        );
    }

    #[test]
    fn entropy_variants_preserve_the_reference_query_result() {
        let w = scientific_small(42);
        let q2 = w.query("Q2").unwrap().clone();
        let original = evaluate(&q2, &w.database).unwrap();
        let variants = entropy_variants(&w.database, "PmTE_ALL_DE", "logFC_P", &q2);
        assert_eq!(variants.len(), 5);
        let mut distinct_counts = Vec::new();
        for (_, variant) in &variants {
            let r = evaluate(&q2, variant).unwrap();
            assert!(r.bag_equal(&original), "entropy variant must preserve Q(D)");
            distinct_counts.push(
                variant
                    .table("PmTE_ALL_DE")
                    .unwrap()
                    .active_domain("logFC_P")
                    .unwrap()
                    .len(),
            );
        }
        // Distinct-value counts are non-increasing across the variants.
        for pair in distinct_counts.windows(2) {
            assert!(pair[1] <= pair[0]);
        }
        assert!(distinct_counts[4] < distinct_counts[0]);
    }

    #[test]
    fn entropy_variant_with_unknown_column_is_identity() {
        let w = scientific_small(42);
        let q2 = w.query("Q2").unwrap().clone();
        let v = entropy_variant(&w.database, "PmTE_ALL_DE", "no_such_column", 0.5, &q2);
        assert_eq!(&v, &w.database);
        let v = entropy_variant(&w.database, "NoTable", "logFC_P", 0.5, &q2);
        assert_eq!(&v, &w.database);
    }
}
