//! The paper's running example (Example 1.1): the Employee table, its result
//! `R = {Bob, Darren}` and the three candidate queries Q1–Q3.

use qfe_query::{evaluate, ComparisonOp, DnfPredicate, QueryResult, SpjQuery, Term};
use qfe_relation::{tuple, ColumnDef, DataType, Database, Table, TableSchema};

/// Builds Example 1.1: returns `(D, R, QC, target)` where the target is the
/// paper's Q2 (`salary > 4000`).
pub fn example_1_1() -> (Database, QueryResult, Vec<SpjQuery>, SpjQuery) {
    let employee = Table::with_rows(
        TableSchema::new(
            "Employee",
            vec![
                ColumnDef::new("Eid", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("gender", DataType::Text),
                ColumnDef::new("dept", DataType::Text),
                ColumnDef::new("salary", DataType::Int),
            ],
        )
        .expect("schema")
        .with_primary_key(&["Eid"])
        .expect("key"),
        vec![
            tuple![1i64, "Alice", "F", "Sales", 3700i64],
            tuple![2i64, "Bob", "M", "IT", 4200i64],
            tuple![3i64, "Celina", "F", "Service", 3000i64],
            tuple![4i64, "Darren", "M", "IT", 5000i64],
        ],
    )
    .expect("rows");
    let mut database = Database::new();
    database.add_table(employee).expect("add Employee");

    let q = |label: &str, predicate| {
        SpjQuery::new(vec!["Employee"], vec!["name"], predicate).with_label(label)
    };
    let candidates = vec![
        q("Q1", DnfPredicate::single(Term::eq("gender", "M"))),
        q(
            "Q2",
            DnfPredicate::single(Term::compare("salary", ComparisonOp::Gt, 4000i64)),
        ),
        q("Q3", DnfPredicate::single(Term::eq("dept", "IT"))),
    ];
    let target = candidates[1].clone();
    let result = evaluate(&candidates[0], &database).expect("evaluate Q1");
    (database, result, candidates, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_candidates_reproduce_the_example_result() {
        let (db, result, candidates, target) = example_1_1();
        assert_eq!(result.len(), 2);
        assert_eq!(candidates.len(), 3);
        assert_eq!(target.label.as_deref(), Some("Q2"));
        for q in &candidates {
            assert!(evaluate(q, &db).unwrap().bag_equal(&result), "{q}");
        }
    }

    #[test]
    fn result_contains_bob_and_darren() {
        let (_db, result, _qc, _t) = example_1_1();
        let mut names: Vec<String> = result
            .rows()
            .iter()
            .filter_map(|r| r.get(0).and_then(|v| v.as_str().map(String::from)))
            .collect();
        names.sort();
        assert_eq!(names, vec!["Bob".to_string(), "Darren".to_string()]);
    }
}
