//! # qfe-datasets — evaluation workloads for the QFE reproduction
//!
//! Seeded synthetic stand-ins for the datasets of the paper's evaluation
//! (Section 7), preserving table shapes, cardinalities, foreign-key graphs
//! and the structure of the target queries:
//!
//! * [`scientific`] — the SQLShare biology database (PmTE_ALL_DE 3926×16,
//!   companion table 424×3, foreign-key join of 417 rows) with the two real
//!   biologist queries Q1 and Q2;
//! * [`baseball`] — the Lahman-style Manager/Team/Batting database
//!   (200×11, 252×29, 6977×15) with the four synthetic queries Q3–Q6;
//! * [`adult`] — the 5227-row Adult census extract with the three
//!   user-study target queries;
//! * [`example_1_1`] — the paper's running Employee example;
//! * [`initial_size_variants`] / [`entropy_variants`] — the subset and
//!   active-domain-entropy variants used by the Section 7.7 sensitivity
//!   experiments.
//!
//! All generators take a seed and are fully deterministic. `*_small` variants
//! generate the same shapes at reduced cardinality for fast tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adult;
mod baseball;
mod example;
mod scientific;
mod variants;
mod workload;

pub use adult::{
    adult, adult_scaled, adult_small, user_study_u1, user_study_u2, user_study_u3, ADULT_ROWS,
};
pub use baseball::{
    baseball, baseball_scaled, baseball_small, q3, q4, q5, q6, BATTING_ROWS, MANAGER_ROWS,
    TEAM_ROWS,
};
pub use example::example_1_1;
pub use scientific::{
    scientific, scientific_q1, scientific_q2, scientific_scaled, scientific_small, COMPANION_ROWS,
    JOIN_ROWS, PMTE_ROWS,
};
pub use variants::{child_table_subset, entropy_variant, entropy_variants, initial_size_variants};
pub use workload::{seeded_rng, Workload};
