//! A hand-rolled HTTP/1.1 server: request parsing, response framing, and a
//! fixed thread pool over a blocking accept loop.
//!
//! Deliberately small: `Content-Length`-framed bodies only (no chunked
//! transfer), keep-alive connections, `Expect: 100-continue` support, and
//! hard limits on header and body sizes so a misbehaving client cannot
//! balloon the process. That subset is exactly what the JSON session API
//! and its clients need — and it keeps the frontend free of dependencies.
//!
//! Overload and failure behavior is explicit:
//!
//! * The accept queue is **bounded** ([`ServerConfig::queue_depth`]). When
//!   every worker is busy and the queue is full, new connections get an
//!   immediate `503` with a `Retry-After` header instead of piling up.
//! * Sockets carry read *and* write timeouts, and each request has a
//!   **deadline** from its first byte to its last — a slow-loris client
//!   trickling headers gets `408`, not a parked worker.
//! * Header count and total header bytes are bounded separately from the
//!   16 KiB head limit; exceeding either is a `431`, not a hangup.
//! * [`Server::shutdown_graceful`] stops accepting, lets in-flight requests
//!   finish (forcing `Connection: close` on their responses so keep-alive
//!   connections wind down), and reports whether the drain completed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest accepted request head (request line + headers) in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Most header lines accepted in one request.
const MAX_HEADER_COUNT: usize = 64;
/// Largest total header bytes (excluding the request line).
const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Largest accepted request body in bytes — snapshots of big workloads are
/// megabytes, so this is generous without being unbounded.
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// A parsed HTTP request: everything the router needs, nothing more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path without query string (`/sessions/3/step`).
    pub path: String,
    /// Raw request body (empty for bodyless requests).
    pub body: String,
}

/// An HTTP response the router hands back; the server frames and writes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body, always JSON text in this service.
    pub body: String,
    /// Emit a `Retry-After: <secs>` header (used with `503`).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            retry_after: None,
        }
    }

    /// A `503 Service Unavailable` telling the client when to retry.
    pub fn unavailable(reason: &str, retry_after_secs: u64) -> Response {
        Response {
            status: 503,
            body: format!("{{\"error\":{reason:?},\"kind\":\"unavailable\"}}"),
            retry_after: Some(retry_after_secs),
        }
    }
}

/// The application behind the server: maps one request to one response.
pub trait Handler: Send + Sync {
    /// Handles a single request. Must not panic — a panicking handler takes
    /// its worker thread down.
    fn handle(&self, request: &Request) -> Response;
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// Outcome of reading one request off a connection.
enum Parsed {
    /// A complete request; serve it.
    Ok(Request, /* keep_alive: */ bool),
    /// The peer closed the connection cleanly between requests.
    Eof,
    /// The request was malformed; respond with this status and close.
    Bad(u16, &'static str),
}

/// Reads one HTTP/1.1 request from the stream. Writes the interim
/// `100 Continue` itself when the client asked for it. `deadline` bounds
/// the whole parse, from request line to final body byte.
fn read_request(reader: &mut BufReader<TcpStream>, deadline: Duration) -> Parsed {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Parsed::Eof,
        Ok(_) => {}
        Err(_) => return Parsed::Eof, // timeout or reset between requests
    }
    // The deadline clock starts once the first byte of a request exists —
    // idle keep-alive connections are governed by the read timeout instead.
    let started = Instant::now();
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t),
        _ => return Parsed::Bad(400, "malformed request line"),
    };
    let method = method.to_ascii_uppercase();
    let path = target.split('?').next().unwrap_or("").to_string();

    let mut head_bytes = line.len();
    let mut header_bytes = 0usize;
    let mut header_count = 0usize;
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut expects_continue = false;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Parsed::Eof,
            Ok(_) => {}
            Err(_) => return Parsed::Bad(408, "request deadline exceeded"),
        }
        if started.elapsed() > deadline {
            return Parsed::Bad(408, "request deadline exceeded");
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Parsed::Bad(413, "request head too large");
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        header_bytes += header.len();
        header_count += 1;
        if header_count > MAX_HEADER_COUNT || header_bytes > MAX_HEADER_BYTES {
            return Parsed::Bad(431, "too many request headers");
        }
        let Some((name, value)) = header.split_once(':') else {
            return Parsed::Bad(400, "malformed header");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                Ok(_) => return Parsed::Bad(413, "request body too large"),
                Err(_) => return Parsed::Bad(400, "invalid content-length"),
            },
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            "expect" => expects_continue = value.eq_ignore_ascii_case("100-continue"),
            _ => {}
        }
    }

    if expects_continue && content_length > 0 {
        // The client is holding the body back until we commit.
        if reader
            .get_mut()
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .is_err()
        {
            return Parsed::Eof;
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 && reader.read_exact(&mut body).is_err() {
        return Parsed::Bad(400, "request body shorter than content-length");
    }
    if started.elapsed() > deadline {
        return Parsed::Bad(408, "request deadline exceeded");
    }
    let Ok(body) = String::from_utf8(body) else {
        return Parsed::Bad(400, "request body is not UTF-8");
    };
    Parsed::Ok(Request { method, path, body }, keep_alive)
}

fn write_response(stream: &mut TcpStream, response: &Response, keep_alive: bool) -> bool {
    // One write per response: head and body in the same segment, so Nagle's
    // algorithm never holds the body back waiting for an ACK of the head.
    let retry_after = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let mut message = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        retry_after,
        if keep_alive { "keep-alive" } else { "close" },
    );
    message.push_str(&response.body);
    stream.write_all(message.as_bytes()).is_ok() && stream.flush().is_ok()
}

/// State shared between the accept thread, workers, and the [`Server`]
/// handle — what graceful shutdown watches.
#[derive(Debug, Default)]
struct Shared {
    /// Set during graceful shutdown: finish in-flight work, close
    /// connections after their current response.
    draining: AtomicBool,
    /// Requests currently inside the handler (or having their response
    /// written).
    in_flight: AtomicUsize,
    /// Accepted connections waiting for a free worker.
    queued: AtomicUsize,
}

/// Serves one connection until it closes, errors, or asks to close.
fn serve_connection(
    stream: TcpStream,
    handler: &dyn Handler,
    shared: &Shared,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    // Interactive request/response traffic: latency beats batching.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, config.request_deadline) {
            Parsed::Eof => return,
            Parsed::Bad(status, message) => {
                let body = format!("{{\"error\":{:?},\"kind\":\"bad_request\"}}", message);
                let _ = write_response(reader.get_mut(), &Response::json(status, body), false);
                return;
            }
            Parsed::Ok(request, keep_alive) => {
                shared.in_flight.fetch_add(1, Ordering::SeqCst);
                let response = handler.handle(&request);
                // While draining, close after this response so the
                // connection cannot start another request.
                let keep_alive = keep_alive && !shared.draining.load(Ordering::SeqCst);
                let written = write_response(reader.get_mut(), &response, keep_alive);
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                if !written || !keep_alive {
                    return;
                }
            }
        }
    }
}

/// Tuning for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Accepted connections that may wait for a worker before new arrivals
    /// are refused with `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Per-socket read timeout; a stalled client frees its worker.
    pub read_timeout: Duration,
    /// Per-socket write timeout; a non-reading client frees its worker.
    pub write_timeout: Duration,
    /// Deadline for parsing one request, first byte to last body byte.
    pub request_deadline: Duration,
    /// `Retry-After` seconds advertised on backpressure `503`s.
    pub retry_after_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 8,
            queue_depth: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            request_deadline: Duration::from_secs(10),
            retry_after_secs: 1,
        }
    }
}

/// A running HTTP server: an accept thread feeding a fixed worker pool
/// through a bounded queue.
///
/// Dropping the server shuts it down: the accept loop is poked awake, new
/// connections are refused, and the accept thread is joined. In-flight
/// connections finish on their (detached) workers. For an orderly exit use
/// [`Server::shutdown_graceful`] first.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections.
    pub fn bind(
        addr: &str,
        handler: Arc<dyn Handler>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared::default());

        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            sync_channel(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        for worker in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("qfe-http-{worker}"))
                .spawn(move || loop {
                    let stream = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => return,
                    };
                    match stream {
                        Ok(stream) => {
                            shared.queued.fetch_sub(1, Ordering::SeqCst);
                            serve_connection(stream, handler.as_ref(), &shared, &config);
                        }
                        Err(_) => return, // server dropped the sender: shut down
                    }
                })?;
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_shared = Arc::clone(&shared);
        let retry_after = config.retry_after_secs;
        let accept_thread = std::thread::Builder::new()
            .name("qfe-http-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        return; // tx drops here; idle workers exit
                    }
                    let Ok(stream) = stream else { continue };
                    accept_shared.queued.fetch_add(1, Ordering::SeqCst);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut stream)) => {
                            // Pool saturated and queue full: shed load now
                            // with an honest 503 instead of queueing
                            // unboundedly.
                            accept_shared.queued.fetch_sub(1, Ordering::SeqCst);
                            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                            let _ = write_response(
                                &mut stream,
                                &Response::unavailable("server at capacity", retry_after),
                                false,
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => return,
                    }
                }
            })?;

        Ok(Server {
            local_addr,
            shutdown,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests currently being handled (for the readiness probe).
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `incoming()`; poke it awake so it
        // observes the flag. A failed connect means it is already gone.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Orderly shutdown: stop accepting, let queued and in-flight requests
    /// finish (their responses carry `Connection: close`), and wait up to
    /// `timeout` for the drain. Returns `true` when everything drained.
    pub fn shutdown_graceful(&mut self, timeout: Duration) -> bool {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shutdown();
        let deadline = Instant::now() + timeout;
        loop {
            let queued = self.shared.queued.load(Ordering::SeqCst);
            let in_flight = self.shared.in_flight.load(Ordering::SeqCst);
            if queued == 0 && in_flight == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Echo;

    impl Handler for Echo {
        fn handle(&self, request: &Request) -> Response {
            Response::json(
                200,
                format!(
                    "{{\"method\":{:?},\"path\":{:?},\"body_len\":{}}}",
                    request.method,
                    request.path,
                    request.body.len()
                ),
            )
        }
    }

    /// Echo, after a pause — occupies a worker long enough to observe
    /// saturation and drains.
    #[derive(Debug)]
    struct SlowEcho(Duration);

    impl Handler for SlowEcho {
        fn handle(&self, request: &Request) -> Response {
            std::thread::sleep(self.0);
            Echo.handle(request)
        }
    }

    fn start() -> Server {
        Server::bind(
            "127.0.0.1:0",
            Arc::new(Echo),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
        stream.write_all(request.as_bytes()).unwrap();
        read_reply(stream)
    }

    fn read_reply(stream: &mut TcpStream) -> String {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut content_length = 0usize;
        let mut headers = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim_end().is_empty() {
                break;
            }
            headers.push_str(&line);
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        format!(
            "{} | {} | {}",
            status.trim_end(),
            headers.trim_end().replace("\r\n", "; "),
            String::from_utf8(body).unwrap()
        )
    }

    #[test]
    fn serves_keep_alive_requests_on_one_connection() {
        let server = start();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let first = roundtrip(&mut stream, "GET /a HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(first.starts_with("HTTP/1.1 200"));
        assert!(first.contains("\"path\":\"/a\""));
        // Same socket, second request — keep-alive works.
        let second = roundtrip(
            &mut stream,
            "POST /b HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nwire",
        );
        assert!(second.contains("\"method\":\"POST\""));
        assert!(second.contains("\"body_len\":4"));
    }

    #[test]
    fn expect_continue_and_query_strings_are_handled() {
        let server = start();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(
                b"POST /c?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\n",
            )
            .unwrap();
        // Wait for the interim response before sending the body.
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut interim = String::new();
        reader.read_line(&mut interim).unwrap();
        assert!(interim.starts_with("HTTP/1.1 100"));
        let mut blank = String::new();
        reader.read_line(&mut blank).unwrap();
        let reply = roundtrip(&mut stream, "ok");
        assert!(
            reply.contains("\"path\":\"/c\""),
            "query string stripped: {reply}"
        );
        assert!(reply.contains("\"body_len\":2"));
    }

    #[test]
    fn malformed_requests_get_400_and_close() {
        let server = start();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = roundtrip(&mut stream, "NONSENSE\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection closed after the error");
    }

    #[test]
    fn oversized_declared_bodies_are_rejected() {
        let server = start();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = roundtrip(
            &mut stream,
            "POST /big HTTP/1.1\r\nHost: x\r\nContent-Length: 99999999999\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
    }

    #[test]
    fn excessive_header_count_gets_431() {
        let server = start();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut request = String::from("GET /h HTTP/1.1\r\nHost: x\r\n");
        for i in 0..100 {
            request.push_str(&format!("X-Pad-{i}: v\r\n"));
        }
        request.push_str("\r\n");
        let reply = roundtrip(&mut stream, &request);
        assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");
    }

    #[test]
    fn excessive_header_bytes_get_431() {
        let server = start();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A handful of huge headers: few in count, many in bytes.
        let big = "y".repeat(3000);
        let request =
            format!("GET /h HTTP/1.1\r\nHost: x\r\nX-A: {big}\r\nX-B: {big}\r\nX-C: {big}\r\n\r\n");
        let reply = roundtrip(&mut stream, &request);
        assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");
    }

    #[test]
    fn slow_header_trickle_gets_408() {
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::new(Echo),
            ServerConfig {
                workers: 1,
                request_deadline: Duration::from_millis(150),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"GET /slow HTTP/1.1\r\nHost: x\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(300));
        stream.write_all(b"X-Late: 1\r\n\r\n").unwrap();
        let reply = read_reply(&mut stream);
        assert!(reply.starts_with("HTTP/1.1 408"), "{reply}");
    }

    #[test]
    fn saturation_sheds_load_with_503_and_retry_after() {
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::new(SlowEcho(Duration::from_millis(600))),
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                retry_after_secs: 7,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        // First connection occupies the only worker…
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.write_all(b"GET /1 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // …second fills the queue…
        let mut queued = TcpStream::connect(addr).unwrap();
        queued
            .write_all(b"GET /2 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // …third is shed immediately with 503 + Retry-After.
        let mut shed = TcpStream::connect(addr).unwrap();
        let reply = read_reply(&mut shed);
        assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
        assert!(reply.contains("Retry-After: 7"), "{reply}");
        // The occupied and queued connections still complete normally.
        assert!(read_reply(&mut busy).contains("\"path\":\"/1\""));
        assert!(read_reply(&mut queued).contains("\"path\":\"/2\""));
    }

    #[test]
    fn graceful_shutdown_drains_in_flight_requests() {
        let mut server = Server::bind(
            "127.0.0.1:0",
            Arc::new(SlowEcho(Duration::from_millis(300))),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /drain HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(server.in_flight(), 1);
        // Drain: the in-flight request completes, its response closes the
        // connection, and the drain reports success.
        assert!(server.shutdown_graceful(Duration::from_secs(5)));
        let reply = read_reply(&mut stream);
        assert!(reply.contains("\"path\":\"/drain\""), "{reply}");
        assert!(reply.contains("Connection: close"), "{reply}");
        assert_eq!(server.in_flight(), 0);
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let mut server = start();
        let addr = server.local_addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // The port is free again.
        let _rebound = TcpListener::bind(addr).unwrap();
    }
}
