//! A hand-rolled HTTP/1.1 server: request parsing, response framing, and a
//! fixed thread pool over a blocking accept loop.
//!
//! Deliberately small: `Content-Length`-framed bodies only (no chunked
//! transfer), keep-alive connections, `Expect: 100-continue` support, and
//! hard limits on header and body sizes so a misbehaving client cannot
//! balloon the process. That subset is exactly what the JSON session API
//! and its clients need — and it keeps the frontend free of dependencies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted request head (request line + headers) in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body in bytes — snapshots of big workloads are
/// megabytes, so this is generous without being unbounded.
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Per-connection socket read timeout; a stalled client frees its worker.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed HTTP request: everything the router needs, nothing more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path without query string (`/sessions/3/step`).
    pub path: String,
    /// Raw request body (empty for bodyless requests).
    pub body: String,
}

/// An HTTP response the router hands back; the server frames and writes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body, always JSON text in this service.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
        }
    }
}

/// The application behind the server: maps one request to one response.
pub trait Handler: Send + Sync {
    /// Handles a single request. Must not panic — a panicking handler takes
    /// its worker thread down.
    fn handle(&self, request: &Request) -> Response;
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Status",
    }
}

/// Outcome of reading one request off a connection.
enum Parsed {
    /// A complete request; serve it.
    Ok(Request, /* keep_alive: */ bool),
    /// The peer closed the connection cleanly between requests.
    Eof,
    /// The request was malformed; respond with this status and close.
    Bad(u16, &'static str),
}

/// Reads one HTTP/1.1 request from the stream. Writes the interim
/// `100 Continue` itself when the client asked for it.
fn read_request(reader: &mut BufReader<TcpStream>) -> Parsed {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Parsed::Eof,
        Ok(_) => {}
        Err(_) => return Parsed::Eof, // timeout or reset between requests
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t),
        _ => return Parsed::Bad(400, "malformed request line"),
    };
    let method = method.to_ascii_uppercase();
    let path = target.split('?').next().unwrap_or("").to_string();

    let mut head_bytes = line.len();
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut expects_continue = false;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Parsed::Eof,
            Ok(_) => {}
            Err(_) => return Parsed::Bad(400, "header read failed"),
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Parsed::Bad(413, "request head too large");
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Parsed::Bad(400, "malformed header");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                Ok(_) => return Parsed::Bad(413, "request body too large"),
                Err(_) => return Parsed::Bad(400, "invalid content-length"),
            },
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            "expect" => expects_continue = value.eq_ignore_ascii_case("100-continue"),
            _ => {}
        }
    }

    if expects_continue && content_length > 0 {
        // The client is holding the body back until we commit.
        if reader
            .get_mut()
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .is_err()
        {
            return Parsed::Eof;
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 && reader.read_exact(&mut body).is_err() {
        return Parsed::Bad(400, "request body shorter than content-length");
    }
    let Ok(body) = String::from_utf8(body) else {
        return Parsed::Bad(400, "request body is not UTF-8");
    };
    Parsed::Ok(Request { method, path, body }, keep_alive)
}

fn write_response(stream: &mut TcpStream, response: &Response, keep_alive: bool) -> bool {
    // One write per response: head and body in the same segment, so Nagle's
    // algorithm never holds the body back waiting for an ACK of the head.
    let mut message = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    message.push_str(&response.body);
    stream.write_all(message.as_bytes()).is_ok() && stream.flush().is_ok()
}

/// Serves one connection until it closes, errors, or asks to close.
fn serve_connection(stream: TcpStream, handler: &dyn Handler) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    // Interactive request/response traffic: latency beats batching.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Parsed::Eof => return,
            Parsed::Bad(status, message) => {
                let body = format!("{{\"error\":{:?},\"kind\":\"bad_request\"}}", message);
                let _ = write_response(reader.get_mut(), &Response::json(status, body), false);
                return;
            }
            Parsed::Ok(request, keep_alive) => {
                let response = handler.handle(&request);
                if !write_response(reader.get_mut(), &response, keep_alive) || !keep_alive {
                    return;
                }
            }
        }
    }
}

/// Tuning for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { workers: 8 }
    }
}

/// A running HTTP server: an accept thread feeding a fixed worker pool.
///
/// Dropping the server shuts it down: the accept loop is poked awake, new
/// connections are refused, and the accept thread is joined. In-flight
/// connections finish on their (detached) workers.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections.
    pub fn bind(
        addr: &str,
        handler: Arc<dyn Handler>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        for worker in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            std::thread::Builder::new()
                .name(format!("qfe-http-{worker}"))
                .spawn(move || loop {
                    let stream = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => return,
                    };
                    match stream {
                        Ok(stream) => serve_connection(stream, handler.as_ref()),
                        Err(_) => return, // server dropped the sender: shut down
                    }
                })?;
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("qfe-http-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        return; // tx drops here; idle workers exit
                    }
                    let Ok(stream) = stream else { continue };
                    if tx.send(stream).is_err() {
                        return;
                    }
                }
            })?;

        Ok(Server {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `incoming()`; poke it awake so it
        // observes the flag. A failed connect means it is already gone.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Echo;

    impl Handler for Echo {
        fn handle(&self, request: &Request) -> Response {
            Response::json(
                200,
                format!(
                    "{{\"method\":{:?},\"path\":{:?},\"body_len\":{}}}",
                    request.method,
                    request.path,
                    request.body.len()
                ),
            )
        }
    }

    fn start() -> Server {
        Server::bind("127.0.0.1:0", Arc::new(Echo), ServerConfig { workers: 2 }).unwrap()
    }

    fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
        stream.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        format!("{} {}", status.trim_end(), String::from_utf8(body).unwrap())
    }

    #[test]
    fn serves_keep_alive_requests_on_one_connection() {
        let server = start();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let first = roundtrip(&mut stream, "GET /a HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(first.starts_with("HTTP/1.1 200"));
        assert!(first.contains("\"path\":\"/a\""));
        // Same socket, second request — keep-alive works.
        let second = roundtrip(
            &mut stream,
            "POST /b HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nwire",
        );
        assert!(second.contains("\"method\":\"POST\""));
        assert!(second.contains("\"body_len\":4"));
    }

    #[test]
    fn expect_continue_and_query_strings_are_handled() {
        let server = start();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(
                b"POST /c?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\n",
            )
            .unwrap();
        // Wait for the interim response before sending the body.
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut interim = String::new();
        reader.read_line(&mut interim).unwrap();
        assert!(interim.starts_with("HTTP/1.1 100"));
        let mut blank = String::new();
        reader.read_line(&mut blank).unwrap();
        let reply = roundtrip(&mut stream, "ok");
        assert!(
            reply.contains("\"path\":\"/c\""),
            "query string stripped: {reply}"
        );
        assert!(reply.contains("\"body_len\":2"));
    }

    #[test]
    fn malformed_requests_get_400_and_close() {
        let server = start();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = roundtrip(&mut stream, "NONSENSE\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection closed after the error");
    }

    #[test]
    fn oversized_declared_bodies_are_rejected() {
        let server = start();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = roundtrip(
            &mut stream,
            "POST /big HTTP/1.1\r\nHost: x\r\nContent-Length: 99999999999\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let mut server = start();
        let addr = server.local_addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // The port is free again.
        let _rebound = TcpListener::bind(addr).unwrap();
    }
}
