//! The JSON session API: maps HTTP requests onto a [`SessionBackend`] —
//! one [`SessionHost`](qfe_snapstore::SessionHost) or a sharded
//! [`Cluster`], the routes cannot tell the difference.
//!
//! | Method | Path                      | Meaning                          |
//! |--------|---------------------------|----------------------------------|
//! | GET    | `/healthz`                | liveness + occupancy counters    |
//! | GET    | `/sessions`               | every hosted session id          |
//! | POST   | `/sessions`               | create (named workload/snapshot) |
//! | GET    | `/sessions/{id}/step`     | advance; next round or outcome   |
//! | POST   | `/sessions/{id}/answer`   | answer the pending round         |
//! | POST   | `/sessions/{id}/reject`   | reject every presented result    |
//! | POST   | `/sessions/{id}/park`     | snapshot to the store, evict     |
//! | POST   | `/sessions/{id}/resume`   | rehydrate from the store         |
//! | DELETE | `/sessions/{id}`          | forget the session entirely      |
//! | GET    | `/admin/fsck`             | audit the backing store          |
//! | GET    | `/admin/shards`           | fleet status (clustered only)    |
//! | POST   | `/admin/shards/{i}/drain` | gracefully drain one shard       |
//! | POST   | `/admin/shards/{i}/kill`  | crash one shard + fail over      |
//! | POST   | `/admin/shards/{i}/restart` | bring a dead shard back        |
//!
//! Every response body is JSON. Errors are `{"error":…,"kind":…}` with the
//! status carrying the class: 400 bad input, 404 unknown session or route,
//! 405 wrong method, 409 protocol misuse (no pending round, bad choice),
//! 500 store/internal failure, 503 draining.
//!
//! ## Idempotency
//!
//! The mutating session verbs (`answer`, `reject`, `park`) accept an
//! optional `"idem"` string in the request body. The first request with a
//! given `(session, idem)` pair executes and its response is remembered; a
//! replay with the same pair returns the remembered response byte-for-byte
//! without re-executing. That makes client retries safe even when the
//! original response was lost in flight — the retry of an already-applied
//! `answer` cannot advance the session twice.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use qfe_cluster::Cluster;
use qfe_core::{QfeError, QfeSession, SessionId, SessionSnapshot, Step};
use qfe_datasets::example_1_1;
use qfe_snapstore::{SessionBackend, SessionHost};
use qfe_wire::{FromJson, Json, ToJson};

use crate::http::{Handler, Request, Response};

/// Most remembered idempotency responses; older entries are evicted FIFO.
const IDEM_CACHE_CAP: usize = 4096;

/// Deadline for a `POST /admin/shards/{i}/drain` park sweep.
const SHARD_DRAIN_DEADLINE: Duration = Duration::from_secs(30);

/// Remembered responses for deduplicating replayed mutations, keyed by
/// `(session id, idempotency key)`.
#[derive(Debug, Default)]
struct IdemCache {
    map: HashMap<(u64, String), Response>,
    order: VecDeque<(u64, String)>,
}

/// The service: a [`SessionBackend`] plus the route table.
#[derive(Debug)]
pub struct ServiceState {
    backend: Arc<dyn SessionBackend>,
    /// Set when the backend is a sharded fleet: unlocks the
    /// `/admin/shards` routes.
    cluster: Option<Arc<Cluster>>,
    /// Set when the service is shutting down: mutations get `503`, the
    /// readiness probe reports `draining`.
    draining: AtomicBool,
    /// Requests currently inside [`Handler::handle`].
    in_flight: AtomicUsize,
    /// Replays served from memory instead of re-executing.
    idem_replays: AtomicUsize,
    idem: Mutex<IdemCache>,
}

fn ok(body: Json) -> Response {
    Response::json(200, body.render())
}

fn created(body: Json) -> Response {
    Response::json(201, body.render())
}

fn error_response(status: u16, kind: &str, message: impl std::fmt::Display) -> Response {
    Response::json(
        status,
        Json::object([
            ("error", Json::Str(message.to_string())),
            ("kind", Json::Str(kind.to_string())),
        ])
        .render(),
    )
}

/// Maps a core error onto an HTTP status and machine-readable kind.
fn qfe_error_response(e: &QfeError) -> Response {
    let (status, kind) = match e {
        QfeError::UnknownSession { .. } => (404, "unknown_session"),
        QfeError::InvalidChoice { .. }
        | QfeError::NoPendingRound
        | QfeError::TargetNotInCandidates => (409, "conflict"),
        QfeError::Snapshot { .. } => (400, "snapshot"),
        QfeError::Store { .. } => (500, "store"),
        QfeError::Http { .. } => (500, "http"),
        _ => (500, "internal"),
    };
    error_response(status, kind, e)
}

fn step_body(step: &Step) -> Json {
    match step {
        Step::AwaitFeedback(round) => Json::object([
            ("status", Json::Str("await_feedback".to_string())),
            ("round", round.to_json()),
        ]),
        Step::Done(outcome) => Json::object([
            ("status", Json::Str("done".to_string())),
            ("query", outcome.query.to_json()),
            ("sql", Json::Str(qfe_query::to_sql(&outcome.query))),
            (
                "label",
                match &outcome.query.label {
                    Some(label) => Json::Str(label.clone()),
                    None => Json::Null,
                },
            ),
            (
                "indistinguishable",
                Json::Array(
                    outcome
                        .indistinguishable
                        .iter()
                        .map(|q| q.to_json())
                        .collect(),
                ),
            ),
            ("report", outcome.report.to_json()),
        ]),
    }
}

/// Builds a fresh session for a named workload. The catalog currently holds
/// the paper's running example; snapshot adoption covers everything else.
fn named_workload_session(name: &str) -> Option<QfeSession> {
    match name {
        "example_1_1" => {
            let (db, result, candidates, _) = example_1_1();
            QfeSession::builder(db, result)
                .with_candidates(candidates)
                .build()
                .ok()
        }
        _ => None,
    }
}

impl ServiceState {
    /// Wraps a single session host as an HTTP handler.
    pub fn new(host: SessionHost) -> ServiceState {
        ServiceState::from_backend(Arc::new(host))
    }

    /// Wraps any session backend as an HTTP handler.
    pub fn from_backend(backend: Arc<dyn SessionBackend>) -> ServiceState {
        ServiceState {
            backend,
            cluster: None,
            draining: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            idem_replays: AtomicUsize::new(0),
            idem: Mutex::new(IdemCache::default()),
        }
    }

    /// Wraps a sharded fleet as an HTTP handler, with the `/admin/shards`
    /// routes live.
    pub fn clustered(cluster: Arc<Cluster>) -> ServiceState {
        let mut state = ServiceState::from_backend(Arc::clone(&cluster) as Arc<dyn SessionBackend>);
        state.cluster = Some(cluster);
        state
    }

    /// The wrapped backend (for in-process callers and tests).
    pub fn backend(&self) -> &Arc<dyn SessionBackend> {
        &self.backend
    }

    /// The wrapped fleet, when this service is sharded.
    pub fn cluster(&self) -> Option<&Arc<Cluster>> {
        self.cluster.as_ref()
    }

    /// Flips the service into drain mode: the readiness probe turns `503
    /// draining`, and every session verb is refused with `503` +
    /// `Retry-After` so clients fail over while in-flight work completes.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// True once [`ServiceState::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// How many mutation replays were answered from the idempotency cache
    /// instead of re-executing.
    pub fn idem_replays(&self) -> usize {
        self.idem_replays.load(Ordering::SeqCst)
    }

    /// The readiness probe body: store backend, occupancy, traffic, drain
    /// state. Status `200` when ready, `503` while draining.
    fn healthz(&self) -> Response {
        let parked = match self.backend.parked_count() {
            Ok(n) => n,
            Err(e) => return qfe_error_response(&e),
        };
        let draining = self.is_draining();
        // The probe itself is in flight; report everyone else.
        let in_flight = self.in_flight.load(Ordering::SeqCst).saturating_sub(1);
        let shards = self.cluster.as_ref().map_or(1, |c| c.shard_count());
        let body = Json::object([
            (
                "status",
                Json::Str(if draining { "draining" } else { "ok" }.to_string()),
            ),
            (
                "store",
                Json::Str(self.backend.store_backend_name().to_string()),
            ),
            ("shards", Json::Int(shards as i64)),
            ("resident", Json::Int(self.backend.resident_count() as i64)),
            ("parked", Json::Int(parked as i64)),
            ("in_flight", Json::Int(in_flight as i64)),
            ("idem_replays", Json::Int(self.idem_replays() as i64)),
        ]);
        Response {
            status: if draining { 503 } else { 200 },
            body: body.render(),
            retry_after: if draining { Some(1) } else { None },
        }
    }

    /// Runs a mutating verb under its idempotency key, if the body carries
    /// one. The first execution's response is remembered (unless it is a
    /// 5xx — those must stay retryable); replays return it verbatim.
    fn idempotent(&self, id: SessionId, body: &str, run: impl FnOnce() -> Response) -> Response {
        let key = Json::parse(body)
            .ok()
            .and_then(|doc| doc.get("idem").map(|k| k.as_str().map(str::to_string)))
            .and_then(|k| k.ok());
        let Some(key) = key else { return run() };
        let cache_key = (id.as_u64(), key);
        if let Some(hit) = self
            .idem
            .lock()
            .expect("idempotency cache lock poisoned")
            .map
            .get(&cache_key)
        {
            self.idem_replays.fetch_add(1, Ordering::SeqCst);
            return hit.clone();
        }
        let response = run();
        if response.status < 500 {
            let mut cache = self.idem.lock().expect("idempotency cache lock poisoned");
            if cache.map.len() >= IDEM_CACHE_CAP {
                if let Some(oldest) = cache.order.pop_front() {
                    cache.map.remove(&oldest);
                }
            }
            cache.order.push_back(cache_key.clone());
            cache.map.insert(cache_key, response.clone());
        }
        response
    }

    /// Forgets every remembered response for a session (on delete, its
    /// keys can never be replayed meaningfully again).
    fn purge_idem(&self, id: SessionId) {
        let mut cache = self.idem.lock().expect("idempotency cache lock poisoned");
        cache.order.retain(|k| k.0 != id.as_u64());
        cache.map.retain(|k, _| k.0 != id.as_u64());
    }

    fn list_sessions(&self) -> Response {
        match self.backend.session_ids() {
            Ok(ids) => ok(Json::object([(
                "sessions",
                Json::Array(ids.iter().map(|id| Json::Int(id.as_u64() as i64)).collect()),
            )])),
            Err(e) => qfe_error_response(&e),
        }
    }

    fn create_session(&self, body: &str) -> Response {
        let doc = match Json::parse(body) {
            Ok(doc) => doc,
            Err(e) => return error_response(400, "bad_request", e),
        };
        let id = if let Some(snapshot) = doc.get("snapshot") {
            match SessionSnapshot::from_json(snapshot) {
                Ok(snapshot) => self.backend.restore(snapshot),
                Err(e) => return error_response(400, "snapshot", e),
            }
        } else if let Some(name) = doc.get("workload") {
            let name = match name.as_str() {
                Ok(name) => name,
                Err(e) => return error_response(400, "bad_request", e),
            };
            match named_workload_session(name) {
                Some(session) => self.backend.create(&session),
                None => {
                    return error_response(
                        400,
                        "bad_request",
                        format!("unknown workload {name:?} (try \"example_1_1\")"),
                    )
                }
            }
        } else {
            return error_response(
                400,
                "bad_request",
                "body must carry either \"workload\" or \"snapshot\"",
            );
        };
        match id {
            Ok(id) => created(Json::object([("id", Json::Int(id.as_u64() as i64))])),
            Err(e) => qfe_error_response(&e),
        }
    }

    fn step(&self, id: SessionId) -> Response {
        match self.backend.step(id) {
            Ok(step) => ok(step_body(&step)),
            Err(e) => qfe_error_response(&e),
        }
    }

    fn answer(&self, id: SessionId, body: &str) -> Response {
        let doc = match Json::parse(body) {
            Ok(doc) => doc,
            Err(e) => return error_response(400, "bad_request", e),
        };
        let choice = match doc.field("choice").and_then(|c| c.as_usize()) {
            Ok(choice) => choice,
            Err(e) => return error_response(400, "bad_request", e),
        };
        let answered = match doc.get("user_millis") {
            Some(millis) => match millis.as_f64() {
                Ok(ms) if ms >= 0.0 => {
                    self.backend
                        .answer_timed(id, choice, Duration::from_secs_f64(ms / 1000.0))
                }
                Ok(_) => return error_response(400, "bad_request", "user_millis must be >= 0"),
                Err(e) => return error_response(400, "bad_request", e),
            },
            None => self.backend.answer(id, choice),
        };
        match answered {
            Ok(()) => ok(Json::object([(
                "status",
                Json::Str("answered".to_string()),
            )])),
            Err(e) => qfe_error_response(&e),
        }
    }

    fn reject(&self, id: SessionId) -> Response {
        match self.backend.reject(id) {
            Ok(()) => ok(Json::object([(
                "status",
                Json::Str("rejected".to_string()),
            )])),
            Err(e) => qfe_error_response(&e),
        }
    }

    fn park(&self, id: SessionId) -> Response {
        match self.backend.park(id) {
            Ok(receipt) => ok(Json::object([
                ("status", Json::Str("parked".to_string())),
                ("workload_hash", Json::Str(receipt.workload_hash)),
                ("state_bytes", Json::Int(receipt.state_bytes as i64)),
                ("workload_bytes", Json::Int(receipt.workload_bytes as i64)),
                ("workload_shared", Json::Bool(receipt.workload_was_shared)),
            ])),
            Err(e) => qfe_error_response(&e),
        }
    }

    fn resume(&self, id: SessionId) -> Response {
        match self.backend.resume(id) {
            Ok(was_parked) => ok(Json::object([
                ("status", Json::Str("resumed".to_string())),
                ("was_parked", Json::Bool(was_parked)),
            ])),
            Err(e) => qfe_error_response(&e),
        }
    }

    fn delete(&self, id: SessionId) -> Response {
        self.purge_idem(id);
        match self.backend.evict(id) {
            Ok(true) => ok(Json::object([("status", Json::Str("deleted".to_string()))])),
            Ok(false) => error_response(404, "unknown_session", format!("no session {id}")),
            Err(e) => qfe_error_response(&e),
        }
    }

    /// `GET /admin/fsck`: audit the backing store and report what was
    /// found (and quarantined) as JSON.
    fn fsck(&self) -> Response {
        match self.backend.fsck() {
            Ok(report) => ok(report.to_json()),
            Err(e) => error_response(500, "store", e),
        }
    }

    /// `GET /admin/shards`: the fleet status, clustered deployments only.
    fn shards_status(&self) -> Response {
        match &self.cluster {
            Some(cluster) => ok(cluster.status().to_json()),
            None => error_response(404, "not_sharded", "this deployment runs a single host"),
        }
    }

    /// `POST /admin/shards/{i}/{drain|kill|restart}`.
    fn shard_admin(&self, index: &str, action: &str) -> Response {
        let Some(cluster) = &self.cluster else {
            return error_response(404, "not_sharded", "this deployment runs a single host");
        };
        let Ok(index) = index.parse::<usize>() else {
            return error_response(404, "not_found", format!("bad shard index {index:?}"));
        };
        if index >= cluster.shard_count() {
            return error_response(404, "not_found", format!("no shard {index}"));
        }
        match action {
            "drain" => match cluster.drain_shard(index, Some(SHARD_DRAIN_DEADLINE)) {
                Ok(outcome) => ok(Json::object([
                    (
                        "status",
                        Json::Str(
                            if outcome.completed {
                                "drained"
                            } else {
                                "rolled_back"
                            }
                            .to_string(),
                        ),
                    ),
                    ("parked", Json::Int(outcome.sweep.parked as i64)),
                    ("reassigned", Json::Int(outcome.reassigned as i64)),
                ])),
                Err(e) => qfe_error_response(&e),
            },
            "kill" => {
                let dropped = match cluster.kill_shard(index) {
                    Ok(dropped) => dropped,
                    Err(e) => return qfe_error_response(&e),
                };
                match cluster.fail_over(index) {
                    Ok(failed_over) => ok(Json::object([
                        ("status", Json::Str("killed".to_string())),
                        ("dropped", Json::Int(dropped as i64)),
                        ("failed_over", Json::Int(failed_over as i64)),
                    ])),
                    Err(e) => qfe_error_response(&e),
                }
            }
            "restart" => match cluster.restart_shard(index) {
                Ok(was_down) => ok(Json::object([
                    ("status", Json::Str("restarted".to_string())),
                    ("was_down", Json::Bool(was_down)),
                ])),
                Err(e) => qfe_error_response(&e),
            },
            other => error_response(404, "not_found", format!("no shard action {other:?}")),
        }
    }
}

fn parse_id(segment: &str) -> Option<SessionId> {
    segment.parse::<u64>().ok().map(SessionId::from_u64)
}

impl Handler for ServiceState {
    fn handle(&self, request: &Request) -> Response {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let response = self.route(request);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        response
    }
}

impl ServiceState {
    fn route(&self, request: &Request) -> Response {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let method = request.method.as_str();
        // The readiness probe keeps answering during a drain (that is its
        // job); everything else is refused so clients retry elsewhere.
        if self.is_draining() && segments.as_slice() != ["healthz"] {
            return Response::unavailable("service draining", 1);
        }
        match (method, segments.as_slice()) {
            ("GET", ["healthz"]) => self.healthz(),
            ("GET", ["admin", "fsck"]) => self.fsck(),
            ("GET", ["admin", "shards"]) => self.shards_status(),
            ("POST", ["admin", "shards", index, action]) => self.shard_admin(index, action),
            ("GET", ["sessions"]) => self.list_sessions(),
            ("POST", ["sessions"]) => self.create_session(&request.body),
            (_, ["healthz"]) | (_, ["sessions"]) => {
                error_response(405, "method_not_allowed", format!("{method} not allowed"))
            }
            (method, ["sessions", id, action]) => match parse_id(id) {
                None => error_response(404, "unknown_session", format!("bad session id {id:?}")),
                Some(id) => match (method, *action) {
                    ("GET", "step") => self.step(id),
                    ("POST", "answer") => {
                        self.idempotent(id, &request.body, || self.answer(id, &request.body))
                    }
                    ("POST", "reject") => self.idempotent(id, &request.body, || self.reject(id)),
                    ("POST", "park") => self.idempotent(id, &request.body, || self.park(id)),
                    ("POST", "resume") => self.resume(id),
                    _ => error_response(
                        404,
                        "not_found",
                        format!("no route {method} {}", request.path),
                    ),
                },
            },
            ("DELETE", ["sessions", id]) => match parse_id(id) {
                None => error_response(404, "unknown_session", format!("bad session id {id:?}")),
                Some(id) => self.delete(id),
            },
            _ => error_response(
                404,
                "not_found",
                format!("no route {method} {}", request.path),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_snapstore::{HostConfig, MemoryStore};
    use std::sync::Arc;

    fn service() -> ServiceState {
        let host = SessionHost::open(Arc::new(MemoryStore::new()), HostConfig::default()).unwrap();
        ServiceState::new(host)
    }

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.to_string(),
        }
    }

    fn json(response: &Response) -> Json {
        Json::parse(&response.body).unwrap()
    }

    #[test]
    fn full_session_over_the_route_table() {
        let service = service();
        let health = service.handle(&req("GET", "/healthz", ""));
        assert_eq!(health.status, 200);

        let create = service.handle(&req("POST", "/sessions", "{\"workload\":\"example_1_1\"}"));
        assert_eq!(create.status, 201, "{}", create.body);
        let id = json(&create).field("id").unwrap().as_i64().unwrap();

        let list = service.handle(&req("GET", "/sessions", ""));
        assert!(list.body.contains(&format!("{id}")));

        // Drive to completion with the oracle for candidate 1.
        let (_, _, candidates, _) = example_1_1();
        let target = candidates[1].clone();
        let oracle = qfe_core::OracleUser::new(target.clone());
        use qfe_core::FeedbackUser;
        let label = loop {
            let step = service.handle(&req("GET", &format!("/sessions/{id}/step"), ""));
            assert_eq!(step.status, 200, "{}", step.body);
            let doc = json(&step);
            match doc.field("status").unwrap().as_str().unwrap() {
                "done" => break doc.field("label").unwrap().as_str().unwrap().to_string(),
                "await_feedback" => {
                    let round =
                        qfe_core::FeedbackRound::from_json(doc.field("round").unwrap()).unwrap();
                    let choice = oracle.choose(&round).unwrap();
                    let answer = service.handle(&req(
                        "POST",
                        &format!("/sessions/{id}/answer"),
                        &format!("{{\"choice\":{choice},\"user_millis\":12.5}}"),
                    ));
                    assert_eq!(answer.status, 200, "{}", answer.body);
                }
                other => panic!("unexpected status {other}"),
            }
        };
        assert_eq!(label, target.label.unwrap());

        let delete = service.handle(&req("DELETE", &format!("/sessions/{id}"), ""));
        assert_eq!(delete.status, 200);
        assert_eq!(
            service
                .handle(&req("GET", &format!("/sessions/{id}/step"), ""))
                .status,
            404
        );
    }

    #[test]
    fn park_resume_and_snapshot_adoption_routes() {
        let service = service();
        let create = service.handle(&req("POST", "/sessions", "{\"workload\":\"example_1_1\"}"));
        let id = json(&create).field("id").unwrap().as_i64().unwrap();
        let _ = service.handle(&req("GET", &format!("/sessions/{id}/step"), ""));

        let park = service.handle(&req("POST", &format!("/sessions/{id}/park"), ""));
        assert_eq!(park.status, 200, "{}", park.body);
        let receipt = json(&park);
        assert!(receipt.field("state_bytes").unwrap().as_i64().unwrap() > 0);
        assert!(!receipt.field("workload_shared").unwrap().as_bool().unwrap());

        let resume = service.handle(&req("POST", &format!("/sessions/{id}/resume"), ""));
        assert_eq!(resume.status, 200);
        assert!(json(&resume)
            .field("was_parked")
            .unwrap()
            .as_bool()
            .unwrap());
        // Resuming a resident session is a cheap no-op.
        let again = service.handle(&req("POST", &format!("/sessions/{id}/resume"), ""));
        assert!(!json(&again).field("was_parked").unwrap().as_bool().unwrap());

        // Snapshot adoption: POST an engine snapshot as a new session.
        let (db, result, candidates, _) = example_1_1();
        let session = QfeSession::builder(db, result)
            .with_candidates(candidates)
            .build()
            .unwrap();
        let snapshot = session.start().snapshot();
        let body = format!("{{\"snapshot\":{}}}", snapshot.serialize());
        let adopted = service.handle(&req("POST", "/sessions", &body));
        assert_eq!(adopted.status, 201, "{}", adopted.body);
        let new_id = json(&adopted).field("id").unwrap().as_i64().unwrap();
        assert_ne!(new_id, id);
    }

    #[test]
    fn errors_map_to_statuses() {
        let service = service();
        // Unknown session.
        assert_eq!(
            service.handle(&req("GET", "/sessions/99/step", "")).status,
            404
        );
        // Bad id, bad route, bad method.
        assert_eq!(
            service.handle(&req("GET", "/sessions/xx/step", "")).status,
            404
        );
        assert_eq!(service.handle(&req("GET", "/nope", "")).status, 404);
        assert_eq!(service.handle(&req("DELETE", "/healthz", "")).status, 405);
        // Bad create bodies.
        assert_eq!(
            service.handle(&req("POST", "/sessions", "{nope")).status,
            400
        );
        assert_eq!(service.handle(&req("POST", "/sessions", "{}")).status, 400);
        assert_eq!(
            service
                .handle(&req("POST", "/sessions", "{\"workload\":\"nope\"}"))
                .status,
            400
        );
        assert_eq!(
            service
                .handle(&req("POST", "/sessions", "{\"snapshot\":{}}"))
                .status,
            400
        );
        // Protocol misuse: answering with no pending round is a conflict.
        let create = service.handle(&req("POST", "/sessions", "{\"workload\":\"example_1_1\"}"));
        let id = json(&create).field("id").unwrap().as_i64().unwrap();
        let answer = service.handle(&req(
            "POST",
            &format!("/sessions/{id}/answer"),
            "{\"choice\":0}",
        ));
        assert_eq!(answer.status, 409, "{}", answer.body);
        assert_eq!(
            json(&answer).field("kind").unwrap().as_str().unwrap(),
            "conflict"
        );
        // Malformed answer bodies.
        let bad = service.handle(&req("POST", &format!("/sessions/{id}/answer"), "{}"));
        assert_eq!(bad.status, 400);
        let _ = service.handle(&req("GET", &format!("/sessions/{id}/step"), ""));
        let neg = service.handle(&req(
            "POST",
            &format!("/sessions/{id}/answer"),
            "{\"choice\":0,\"user_millis\":-1}",
        ));
        assert_eq!(neg.status, 400);
        // Out-of-range choice is a conflict, not a panic.
        let wild = service.handle(&req(
            "POST",
            &format!("/sessions/{id}/answer"),
            "{\"choice\":999}",
        ));
        assert_eq!(wild.status, 409, "{}", wild.body);
    }

    #[test]
    fn healthz_is_a_readiness_probe() {
        let service = service();
        let health = service.handle(&req("GET", "/healthz", ""));
        assert_eq!(health.status, 200);
        let doc = json(&health);
        assert_eq!(doc.field("status").unwrap().as_str().unwrap(), "ok");
        assert_eq!(doc.field("store").unwrap().as_str().unwrap(), "mem");
        assert_eq!(doc.field("resident").unwrap().as_i64().unwrap(), 0);
        assert_eq!(doc.field("parked").unwrap().as_i64().unwrap(), 0);
        // Only this probe is running; it reports everyone else.
        assert_eq!(doc.field("in_flight").unwrap().as_i64().unwrap(), 0);

        service.begin_drain();
        let draining = service.handle(&req("GET", "/healthz", ""));
        assert_eq!(draining.status, 503);
        assert_eq!(draining.retry_after, Some(1));
        assert_eq!(
            json(&draining).field("status").unwrap().as_str().unwrap(),
            "draining"
        );
        // Every other verb is refused during the drain.
        let refused = service.handle(&req("GET", "/sessions", ""));
        assert_eq!(refused.status, 503);
        assert_eq!(refused.retry_after, Some(1));
    }

    #[test]
    fn idempotency_keys_dedup_replayed_mutations() {
        let service = service();
        let create = service.handle(&req("POST", "/sessions", "{\"workload\":\"example_1_1\"}"));
        let id = json(&create).field("id").unwrap().as_i64().unwrap();
        let _ = service.handle(&req("GET", &format!("/sessions/{id}/step"), ""));

        // First answer executes; the retry with the same key is served from
        // memory — byte-identical, and the session does NOT advance twice.
        let body = "{\"choice\":1,\"idem\":\"r0-a\"}";
        let first = service.handle(&req("POST", &format!("/sessions/{id}/answer"), body));
        assert_eq!(first.status, 200, "{}", first.body);
        let replay = service.handle(&req("POST", &format!("/sessions/{id}/answer"), body));
        assert_eq!(replay, first, "replay is byte-identical");
        assert_eq!(service.idem_replays(), 1);
        // Without the cache the second answer would be a 409 (no pending
        // round): prove that by answering again with a NEW key.
        let fresh = service.handle(&req(
            "POST",
            &format!("/sessions/{id}/answer"),
            "{\"choice\":1,\"idem\":\"r0-b\"}",
        ));
        assert_eq!(fresh.status, 409, "{}", fresh.body);

        // Park replays are deduped the same way.
        let park_body = "{\"idem\":\"park-1\"}";
        let parked = service.handle(&req("POST", &format!("/sessions/{id}/park"), park_body));
        assert_eq!(parked.status, 200, "{}", parked.body);
        let park_replay = service.handle(&req("POST", &format!("/sessions/{id}/park"), park_body));
        assert_eq!(park_replay, parked);
        assert_eq!(service.idem_replays(), 2);

        // Deleting the session purges its remembered responses.
        let _ = service.handle(&req("DELETE", &format!("/sessions/{id}"), ""));
        let after = service.handle(&req("POST", &format!("/sessions/{id}/answer"), body));
        assert_eq!(after.status, 404, "purged key re-executes: {}", after.body);
    }

    #[test]
    fn admin_fsck_reports_the_backing_store() {
        let service = service();
        let fsck = service.handle(&req("GET", "/admin/fsck", ""));
        assert_eq!(fsck.status, 200, "{}", fsck.body);
        let doc = json(&fsck);
        assert_eq!(doc.field("backend").unwrap().as_str().unwrap(), "mem");
        assert!(doc.field("clean").unwrap().as_bool().unwrap());
        // A single-host deployment has no shards to administer.
        assert_eq!(service.handle(&req("GET", "/admin/shards", "")).status, 404);
        assert_eq!(
            service
                .handle(&req("POST", "/admin/shards/0/kill", ""))
                .status,
            404
        );
    }

    #[test]
    fn admin_shards_routes_drive_the_fleet() {
        let cluster = Arc::new(
            qfe_cluster::Cluster::open(
                Arc::new(MemoryStore::new()),
                qfe_cluster::ClusterConfig::with_shards(2),
            )
            .unwrap(),
        );
        let service = ServiceState::clustered(Arc::clone(&cluster));
        let create = service.handle(&req("POST", "/sessions", "{\"workload\":\"example_1_1\"}"));
        assert_eq!(create.status, 201, "{}", create.body);
        let id = json(&create).field("id").unwrap().as_i64().unwrap();
        let _ = service.handle(&req("GET", &format!("/sessions/{id}/step"), ""));

        let status = service.handle(&req("GET", "/admin/shards", ""));
        assert_eq!(status.status, 200, "{}", status.body);
        let doc = json(&status);
        assert_eq!(doc.field("routed_sessions").unwrap().as_i64().unwrap(), 1);
        let home = cluster
            .router()
            .shard_of(SessionId::from_u64(id as u64))
            .unwrap();

        // Kill the session's shard: it fails over and keeps serving.
        let kill = service.handle(&req("POST", &format!("/admin/shards/{home}/kill"), ""));
        assert_eq!(kill.status, 200, "{}", kill.body);
        assert_eq!(
            json(&kill).field("failed_over").unwrap().as_i64().unwrap(),
            1
        );
        let step = service.handle(&req("GET", &format!("/sessions/{id}/step"), ""));
        assert_eq!(step.status, 200, "{}", step.body);

        // Restart it, then drain the survivor onto it.
        let restart = service.handle(&req("POST", &format!("/admin/shards/{home}/restart"), ""));
        assert_eq!(restart.status, 200);
        assert!(json(&restart).field("was_down").unwrap().as_bool().unwrap());
        let other = 1 - home;
        let drain = service.handle(&req("POST", &format!("/admin/shards/{other}/drain"), ""));
        assert_eq!(drain.status, 200, "{}", drain.body);
        assert_eq!(
            json(&drain).field("status").unwrap().as_str().unwrap(),
            "drained"
        );
        let step = service.handle(&req("GET", &format!("/sessions/{id}/step"), ""));
        assert_eq!(step.status, 200, "{}", step.body);

        // Unknown shard index and action 404 cleanly.
        assert_eq!(
            service
                .handle(&req("POST", "/admin/shards/9/kill", ""))
                .status,
            404
        );
        assert_eq!(
            service
                .handle(&req("POST", "/admin/shards/0/explode", ""))
                .status,
            404
        );
        // The healthz probe reports the fleet width.
        let health = service.handle(&req("GET", "/healthz", ""));
        assert_eq!(json(&health).field("shards").unwrap().as_i64().unwrap(), 2);
    }

    #[test]
    fn requests_without_idem_keys_are_untouched() {
        let service = service();
        let create = service.handle(&req("POST", "/sessions", "{\"workload\":\"example_1_1\"}"));
        let id = json(&create).field("id").unwrap().as_i64().unwrap();
        let _ = service.handle(&req("GET", &format!("/sessions/{id}/step"), ""));
        let first = service.handle(&req(
            "POST",
            &format!("/sessions/{id}/answer"),
            "{\"choice\":1}",
        ));
        assert_eq!(first.status, 200);
        // No key → no dedup: the naked replay hits the protocol conflict.
        let replay = service.handle(&req(
            "POST",
            &format!("/sessions/{id}/answer"),
            "{\"choice\":1}",
        ));
        assert_eq!(replay.status, 409);
        assert_eq!(service.idem_replays(), 0);
    }
}
