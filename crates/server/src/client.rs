//! A minimal blocking HTTP/1.1 client for the session API.
//!
//! Keeps one keep-alive connection to the server and reconnects once,
//! transparently, when the pooled connection has gone stale. All failures
//! surface as [`QfeError::Http`] naming the request that failed.
//!
//! ## Retries
//!
//! Without a [`RetryPolicy`], the client performs one transparent resend
//! only when the server *provably never saw* the request (connect/write
//! failure, or zero status bytes on a stale pooled connection) — a failure
//! mid-response is not retried, because the server may already have applied
//! a non-idempotent action.
//!
//! With a policy ([`HttpClient::with_retry`]), the client retries failed
//! and `503`-refused requests under exponential backoff with seeded jitter,
//! bounded by a total sleep budget. Ambiguous failures (the request may
//! have been applied) are retried only for requests sent through
//! [`HttpClient::post_idempotent`], which stamps an idempotency key into
//! the body so the server replays the original response instead of
//! re-executing — making *every* retry safe, not just provably-unprocessed
//! ones.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, SystemTime};

use qfe_core::{QfeError, Result};
use qfe_wire::Json;

/// Socket timeout for reads: a hung server fails the request instead of
/// hanging the fleet thread forever.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Days since 1970-01-01 for a proleptic-Gregorian civil date (negative
/// before the epoch). Howard Hinnant's `days_from_civil` algorithm.
fn days_from_civil(year: i64, month: u32, day: u32) -> i64 {
    let year = if month <= 2 { year - 1 } else { year };
    let era = if year >= 0 { year } else { year - 399 } / 400;
    let year_of_era = year - era * 400;
    let month_points = (i64::from(month) + 9) % 12;
    let day_of_year = (153 * month_points + 2) / 5 + i64::from(day) - 1;
    let day_of_era = year_of_era * 365 + year_of_era / 4 - year_of_era / 100 + day_of_year;
    era * 146_097 + day_of_era - 719_468
}

/// Parses an RFC 1123 HTTP-date (`Sun, 06 Nov 1994 08:49:37 GMT`) to Unix
/// seconds. The weekday prefix is optional and untrusted; only `GMT`/`UTC`
/// zones are accepted. `None` for anything malformed or pre-epoch.
fn parse_http_date(value: &str) -> Option<u64> {
    let rest = value
        .split_once(',')
        .map(|(_, rest)| rest)
        .unwrap_or(value)
        .trim();
    let mut parts = rest.split_whitespace();
    let day: u32 = parts.next()?.parse().ok()?;
    let month = match parts.next()? {
        "Jan" => 1,
        "Feb" => 2,
        "Mar" => 3,
        "Apr" => 4,
        "May" => 5,
        "Jun" => 6,
        "Jul" => 7,
        "Aug" => 8,
        "Sep" => 9,
        "Oct" => 10,
        "Nov" => 11,
        "Dec" => 12,
        _ => return None,
    };
    let year: i64 = parts.next()?.parse().ok()?;
    let mut clock = parts.next()?.split(':');
    let hours: u64 = clock.next()?.parse().ok()?;
    let minutes: u64 = clock.next()?.parse().ok()?;
    let seconds: u64 = clock.next()?.parse().ok()?;
    let zone = parts.next()?;
    if clock.next().is_some() || parts.next().is_some() {
        return None;
    }
    if !(zone == "GMT" || zone == "UTC")
        || !(1..=31).contains(&day)
        || hours > 23
        || minutes > 59
        || seconds > 60
    {
        return None;
    }
    let days = days_from_civil(year, month, day);
    if days < 0 {
        return None;
    }
    Some(days as u64 * 86_400 + hours * 3_600 + minutes * 60 + seconds)
}

/// Cap on a parsed delta: a year. Anything a server advertises beyond this
/// is nonsense, and the cap keeps `Duration::from_secs_f64` panic-free.
const RETRY_AFTER_CAP_SECS: f64 = 31_536_000.0;

/// Parses a `Retry-After` header value: delta-seconds (integral *or*
/// fractional, e.g. `"0.5"`) or an RFC 1123 HTTP-date, anchored at `now`.
/// A date already in the past is `Some(ZERO)` (retry immediately); anything
/// malformed is `None`, so the caller falls back to its own backoff instead
/// of failing the request over a bad header.
fn parse_retry_after(value: &str, now: SystemTime) -> Option<Duration> {
    let value = value.trim();
    if value.is_empty() {
        return None;
    }
    if let Ok(secs) = value.parse::<f64>() {
        return (secs.is_finite() && secs >= 0.0)
            .then(|| Duration::from_secs_f64(secs.min(RETRY_AFTER_CAP_SECS)));
    }
    let target = Duration::from_secs(parse_http_date(value)?);
    let now = now.duration_since(SystemTime::UNIX_EPOCH).ok()?;
    Some(target.saturating_sub(now))
}

/// One step of the splitmix64 sequence — the client's whole PRNG, used for
/// backoff jitter and idempotency-key uniqueness.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How hard to retry: exponential backoff with jitter under a sleep budget.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Most resends of one logical request (beyond the first attempt).
    pub max_retries: u32,
    /// First backoff delay; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling per delay (also caps an advertised `Retry-After`).
    pub max_delay: Duration,
    /// Total sleep allowed across all retries of one logical request.
    pub budget: Duration,
    /// Seed for the jitter sequence — pin it for reproducible schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            budget: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

/// A keep-alive JSON-over-HTTP client bound to one server address.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    stream: Option<TcpStream>,
    retry: Option<RetryPolicy>,
    rng: u64,
    idem_seq: u64,
    retries: usize,
    last_retry_after: Option<Duration>,
}

fn http_err(context: &str, message: impl std::fmt::Display) -> QfeError {
    QfeError::Http {
        context: context.to_string(),
        message: message.to_string(),
    }
}

impl HttpClient {
    /// A client for the server at `addr` (`"127.0.0.1:8080"`). Connects
    /// lazily on the first request.
    pub fn new(addr: impl Into<String>) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            stream: None,
            retry: None,
            rng: 0x5EED,
            idem_seq: 0,
            retries: 0,
            last_retry_after: None,
        }
    }

    /// A client that retries under `policy` (see the module docs).
    pub fn with_retry(addr: impl Into<String>, policy: RetryPolicy) -> HttpClient {
        let mut client = HttpClient::new(addr);
        client.rng = policy.seed;
        client.retry = Some(policy);
        client
    }

    /// How many resends this client has performed (across all requests).
    pub fn retries(&self) -> usize {
        self.retries
    }

    /// GETs `path`, returning the status and parsed JSON body.
    pub fn get(&mut self, path: &str) -> Result<(u16, Json)> {
        self.request("GET", path, None, false)
    }

    /// POSTs `body` to `path`, returning the status and parsed JSON body.
    pub fn post(&mut self, path: &str, body: &Json) -> Result<(u16, Json)> {
        self.request("POST", path, Some(body.render()), false)
    }

    /// POSTs `body` with a fresh idempotency key stamped into it (`"idem"`
    /// field), making the request safe to resend even after an ambiguous
    /// failure: the server dedups replays and returns the original
    /// response. Use for the mutating session verbs (`answer`, `reject`,
    /// `park`). Requires an object body.
    pub fn post_idempotent(&mut self, path: &str, body: &Json) -> Result<(u16, Json)> {
        let Json::Object(mut fields) = body.clone() else {
            return self.post(path, body);
        };
        self.idem_seq += 1;
        // Unique per logical request, stable across its retries.
        let key = format!("i{:016x}-{}", splitmix64(&mut self.rng), self.idem_seq);
        fields.push(("idem".to_string(), Json::Str(key)));
        self.request("POST", path, Some(Json::Object(fields).render()), true)
    }

    /// Sends a DELETE to `path`.
    pub fn delete(&mut self, path: &str) -> Result<(u16, Json)> {
        self.request("DELETE", path, None, false)
    }

    fn connect(&mut self, context: &str) -> Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr).map_err(|e| http_err(context, e))?;
            stream
                .set_read_timeout(Some(CLIENT_READ_TIMEOUT))
                .map_err(|e| http_err(context, e))?;
            // Requests are written as one buffer; never wait on Nagle.
            stream.set_nodelay(true).map_err(|e| http_err(context, e))?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("stream just ensured"))
    }

    /// Draws a jitter factor in `[0.5, 1.0)` from the seeded sequence.
    fn jitter(&mut self) -> f64 {
        0.5 + 0.5 * ((splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<String>,
        idempotent: bool,
    ) -> Result<(u16, Json)> {
        let context = format!("{method} {path}");
        let policy = self.retry.clone();
        let max_retries = policy.as_ref().map(|p| p.max_retries).unwrap_or(1);
        let mut attempt: u32 = 0;
        let mut slept = Duration::ZERO;
        loop {
            self.last_retry_after = None;
            match self.try_request(&context, method, path, body.as_deref()) {
                // A 503 is a refusal issued *before* execution (load shed or
                // drain), so it is safe to retry regardless of idempotency —
                // but only a policy-carrying client bothers.
                Ok((503, _)) if policy.is_some() && attempt < max_retries => {}
                Ok(reply) => return Ok(reply),
                Err((unprocessed, err)) => {
                    // Ambiguous failures (the request may have been applied)
                    // are only retried when an idempotency key protects the
                    // resend.
                    let retryable = unprocessed || (idempotent && policy.is_some());
                    if !retryable || attempt >= max_retries {
                        self.stream = None;
                        return Err(err);
                    }
                }
            }
            self.stream = None;
            self.retries += 1;
            attempt += 1;
            if let Some(policy) = &policy {
                // Exponential backoff with jitter, honoring an advertised
                // Retry-After up to `max_delay`, under the total budget.
                let shift = (attempt - 1).min(16);
                let mut delay = policy
                    .base_delay
                    .saturating_mul(1u32 << shift)
                    .min(policy.max_delay);
                if let Some(advertised) = self.last_retry_after {
                    delay = delay.max(advertised.min(policy.max_delay));
                }
                let delay = delay
                    .mul_f64(self.jitter())
                    .min(policy.budget.saturating_sub(slept));
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                    slept += delay;
                }
            }
        }
    }

    fn try_request(
        &mut self,
        context: &str,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::result::Result<(u16, Json), (bool, QfeError)> {
        let stream = self.connect(context).map_err(|e| (true, e))?;
        let body = body.unwrap_or("");
        // Head and body go out as one write (and one segment — see nodelay).
        let mut message = format!(
            "{method} {path} HTTP/1.1\r\nHost: qfe\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        message.push_str(body);
        stream
            .write_all(message.as_bytes())
            .and_then(|()| stream.flush())
            .map_err(|e| (true, http_err(context, e)))?;

        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| (false, http_err(context, e)))?,
        );
        let mut status_line = String::new();
        reader
            .read_line(&mut status_line)
            .map_err(|e| (true, http_err(context, e)))?;
        if status_line.is_empty() {
            return Err((true, http_err(context, "server closed the connection")));
        }
        self.finish_response(context, reader, &status_line)
            .map_err(|e| (false, e))
    }

    fn finish_response(
        &mut self,
        context: &str,
        mut reader: BufReader<TcpStream>,
        status_line: &str,
    ) -> Result<(u16, Json)> {
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| http_err(context, format!("bad status line {status_line:?}")))?;

        let mut content_length = 0usize;
        let mut keep_alive = true;
        loop {
            let mut line = String::new();
            reader
                .read_line(&mut line)
                .map_err(|e| http_err(context, e))?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value
                        .parse()
                        .map_err(|e| http_err(context, format!("bad content-length: {e}")))?;
                }
                "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
                "retry-after" => {
                    self.last_retry_after = parse_retry_after(value, SystemTime::now())
                }
                _ => {}
            }
        }
        let mut buf = vec![0u8; content_length];
        reader
            .read_exact(&mut buf)
            .map_err(|e| http_err(context, e))?;
        if !keep_alive {
            self.stream = None;
        }
        let text = String::from_utf8(buf)
            .map_err(|e| http_err(context, format!("response not UTF-8: {e}")))?;
        let json = Json::parse(&text)
            .map_err(|e| http_err(context, format!("response not JSON ({e}): {text}")))?;
        Ok((status, json))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unix(secs: u64) -> SystemTime {
        SystemTime::UNIX_EPOCH + Duration::from_secs(secs)
    }

    #[test]
    fn retry_after_accepts_delta_seconds() {
        let now = unix(1_000_000);
        assert_eq!(
            parse_retry_after("120", now),
            Some(Duration::from_secs(120))
        );
        assert_eq!(
            parse_retry_after(" 0.5 ", now),
            Some(Duration::from_secs_f64(0.5))
        );
        assert_eq!(parse_retry_after("0", now), Some(Duration::ZERO));
        // Absurd deltas are capped, not panicked on.
        assert_eq!(
            parse_retry_after("1e300", now),
            Some(Duration::from_secs_f64(RETRY_AFTER_CAP_SECS))
        );
    }

    #[test]
    fn retry_after_accepts_http_dates() {
        // "Sun, 06 Nov 1994 08:49:37 GMT" == 784111777 (RFC 7231's own
        // example date).
        let target = 784_111_777;
        let now = unix(target - 90);
        for form in [
            "Sun, 06 Nov 1994 08:49:37 GMT",
            "06 Nov 1994 08:49:37 GMT",
            "Sun, 06 Nov 1994 08:49:37 UTC",
        ] {
            assert_eq!(
                parse_retry_after(form, now),
                Some(Duration::from_secs(90)),
                "{form}"
            );
        }
        // A date in the past means "retry now", not an error.
        assert_eq!(
            parse_retry_after("Sun, 06 Nov 1994 08:49:37 GMT", unix(target + 5)),
            Some(Duration::ZERO)
        );
    }

    #[test]
    fn malformed_retry_after_falls_back_to_none() {
        let now = unix(1_000_000);
        for bad in [
            "",
            "soon",
            "-5",
            "nan",
            "inf",
            "Sun, 06 Nov 1994 08:49:37 PST",
            "Sun, 06 Nov 1994 08:49 GMT",
            "Sun, 32 Nov 1994 08:49:37 GMT",
            "Sun, 06 Nov 1994 25:49:37 GMT",
            "Sun, 06 Foo 1994 08:49:37 GMT",
            "Sun, 06 Nov 1994 08:49:37 GMT extra",
        ] {
            assert_eq!(parse_retry_after(bad, now), None, "{bad:?}");
        }
    }
}
