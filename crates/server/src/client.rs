//! A minimal blocking HTTP/1.1 client for the session API.
//!
//! Keeps one keep-alive connection to the server and reconnects once,
//! transparently, when the pooled connection has gone stale. All failures
//! surface as [`QfeError::Http`] naming the request that failed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use qfe_core::{QfeError, Result};
use qfe_wire::Json;

/// Socket timeout for reads: a hung server fails the request instead of
/// hanging the fleet thread forever.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// A keep-alive JSON-over-HTTP client bound to one server address.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    stream: Option<TcpStream>,
}

fn http_err(context: &str, message: impl std::fmt::Display) -> QfeError {
    QfeError::Http {
        context: context.to_string(),
        message: message.to_string(),
    }
}

impl HttpClient {
    /// A client for the server at `addr` (`"127.0.0.1:8080"`). Connects
    /// lazily on the first request.
    pub fn new(addr: impl Into<String>) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            stream: None,
        }
    }

    /// GETs `path`, returning the status and parsed JSON body.
    pub fn get(&mut self, path: &str) -> Result<(u16, Json)> {
        self.request("GET", path, None)
    }

    /// POSTs `body` to `path`, returning the status and parsed JSON body.
    pub fn post(&mut self, path: &str, body: &Json) -> Result<(u16, Json)> {
        self.request("POST", path, Some(body.render()))
    }

    /// Sends a DELETE to `path`.
    pub fn delete(&mut self, path: &str) -> Result<(u16, Json)> {
        self.request("DELETE", path, None)
    }

    fn connect(&mut self, context: &str) -> Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr).map_err(|e| http_err(context, e))?;
            stream
                .set_read_timeout(Some(CLIENT_READ_TIMEOUT))
                .map_err(|e| http_err(context, e))?;
            // Requests are written as one buffer; never wait on Nagle.
            stream.set_nodelay(true).map_err(|e| http_err(context, e))?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("stream just ensured"))
    }

    fn request(&mut self, method: &str, path: &str, body: Option<String>) -> Result<(u16, Json)> {
        let context = format!("{method} {path}");
        // One transparent retry, but only when the server provably never saw
        // the request (connect/write failure, or the pooled keep-alive
        // connection was closed before a single status byte came back). A
        // failure mid-response is NOT retried: the server may already have
        // applied a non-idempotent action such as `answer`, and re-sending it
        // would surface a spurious conflict.
        match self.try_request(&context, method, path, body.as_deref()) {
            Ok(reply) => Ok(reply),
            Err((true, _first)) => {
                self.stream = None;
                self.try_request(&context, method, path, body.as_deref())
                    .map_err(|(_, err)| err)
            }
            Err((false, err)) => {
                self.stream = None;
                Err(err)
            }
        }
    }

    fn try_request(
        &mut self,
        context: &str,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::result::Result<(u16, Json), (bool, QfeError)> {
        let stream = self.connect(context).map_err(|e| (true, e))?;
        let body = body.unwrap_or("");
        // Head and body go out as one write (and one segment — see nodelay).
        let mut message = format!(
            "{method} {path} HTTP/1.1\r\nHost: qfe\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        message.push_str(body);
        stream
            .write_all(message.as_bytes())
            .and_then(|()| stream.flush())
            .map_err(|e| (true, http_err(context, e)))?;

        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| (false, http_err(context, e)))?,
        );
        let mut status_line = String::new();
        reader
            .read_line(&mut status_line)
            .map_err(|e| (true, http_err(context, e)))?;
        if status_line.is_empty() {
            return Err((true, http_err(context, "server closed the connection")));
        }
        self.finish_response(context, reader, &status_line)
            .map_err(|e| (false, e))
    }

    fn finish_response(
        &mut self,
        context: &str,
        mut reader: BufReader<TcpStream>,
        status_line: &str,
    ) -> Result<(u16, Json)> {
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| http_err(context, format!("bad status line {status_line:?}")))?;

        let mut content_length = 0usize;
        let mut keep_alive = true;
        loop {
            let mut line = String::new();
            reader
                .read_line(&mut line)
                .map_err(|e| http_err(context, e))?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value
                        .parse()
                        .map_err(|e| http_err(context, format!("bad content-length: {e}")))?;
                }
                "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
        let mut buf = vec![0u8; content_length];
        reader
            .read_exact(&mut buf)
            .map_err(|e| http_err(context, e))?;
        if !keep_alive {
            self.stream = None;
        }
        let text = String::from_utf8(buf)
            .map_err(|e| http_err(context, format!("response not UTF-8: {e}")))?;
        let json = Json::parse(&text)
            .map_err(|e| http_err(context, format!("response not JSON ({e}): {text}")))?;
        Ok((status, json))
    }
}
