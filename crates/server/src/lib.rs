//! QFE as a service: a dependency-free HTTP/1.1 frontend over the session
//! engine, with durable parking through `qfe-snapstore`.
//!
//! Three layers:
//!
//! * [`http`] — a hand-rolled HTTP/1.1 server (thread pool, keep-alive,
//!   `Content-Length` framing, `Expect: 100-continue`) and nothing more.
//! * [`routes`] — the JSON session API mapping requests onto any
//!   [`qfe_snapstore::SessionBackend`] (a single
//!   [`qfe_snapstore::SessionHost`] or a sharded [`qfe_cluster::Cluster`]):
//!   create, step, answer, reject, park, resume, delete, plus `/healthz`, a
//!   session listing, `GET /admin/fsck`, and — when clustered — the
//!   `/admin/shards` fleet-administration routes.
//! * [`client`] — a matching keep-alive client used by the simulated-user
//!   fleet bench, the examples, and the CI smoke test. With a
//!   [`RetryPolicy`] it retries under exponential backoff with jitter, and
//!   [`HttpClient::post_idempotent`] stamps idempotency keys so replayed
//!   mutations are deduplicated server-side.
//!
//! [`chaos`] provides [`FlakyHandler`], a seeded misbehaving middleware
//! (drops, delays, duplicates responses) used by the chaos bench and the
//! exactly-once tests.
//!
//! [`serve`] wires the layers together; the `qfe-server` binary is a thin
//! argument parser around it plus a `POST /admin/shutdown` graceful-exit
//! route (drain in-flight requests, park every resident session, exit).
//!
//! ```no_run
//! use std::sync::Arc;
//! use qfe_server::{serve, HttpClient, ServerConfig};
//! use qfe_snapstore::{HostConfig, MemoryStore, SessionHost};
//!
//! let host = SessionHost::open(Arc::new(MemoryStore::new()), HostConfig::default()).unwrap();
//! let server = serve("127.0.0.1:0", host, ServerConfig::default()).unwrap();
//! let mut client = HttpClient::new(server.local_addr().to_string());
//! let (status, body) = client.get("/healthz").unwrap();
//! assert_eq!(status, 200);
//! println!("{}", body.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod http;
pub mod routes;

use std::sync::Arc;

pub use chaos::{FlakyConfig, FlakyHandler};
pub use client::{HttpClient, RetryPolicy};
pub use http::{Handler, Request, Response, Server, ServerConfig};
pub use routes::ServiceState;

use qfe_snapstore::{SessionBackend, SessionHost};

/// Boots the session service: binds `addr` (port 0 for an ephemeral port)
/// and serves `host` until the returned [`Server`] is shut down or dropped.
pub fn serve(addr: &str, host: SessionHost, config: ServerConfig) -> std::io::Result<Server> {
    Server::bind(addr, Arc::new(ServiceState::new(host)), config)
}

/// [`serve`] over any [`SessionBackend`] — e.g. a sharded
/// [`qfe_cluster::Cluster`]. For the `/admin/shards` routes, build the
/// state with [`ServiceState::clustered`] and bind it yourself.
pub fn serve_backend(
    addr: &str,
    backend: Arc<dyn SessionBackend>,
    config: ServerConfig,
) -> std::io::Result<Server> {
    Server::bind(addr, Arc::new(ServiceState::from_backend(backend)), config)
}
