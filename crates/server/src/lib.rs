//! QFE as a service: a dependency-free HTTP/1.1 frontend over the session
//! engine, with durable parking through `qfe-snapstore`.
//!
//! Three layers:
//!
//! * [`http`] — a hand-rolled HTTP/1.1 server (thread pool, keep-alive,
//!   `Content-Length` framing, `Expect: 100-continue`) and nothing more.
//! * [`routes`] — the JSON session API mapping requests onto a
//!   [`qfe_snapstore::SessionHost`]: create, step, answer, reject, park,
//!   resume, delete, plus `/healthz` and a session listing.
//! * [`client`] — a matching keep-alive client used by the simulated-user
//!   fleet bench, the examples, and the CI smoke test. With a
//!   [`RetryPolicy`] it retries under exponential backoff with jitter, and
//!   [`HttpClient::post_idempotent`] stamps idempotency keys so replayed
//!   mutations are deduplicated server-side.
//!
//! [`chaos`] provides [`FlakyHandler`], a seeded misbehaving middleware
//! (drops, delays, duplicates responses) used by the chaos bench and the
//! exactly-once tests.
//!
//! [`serve`] wires the layers together; the `qfe-server` binary is a thin
//! argument parser around it plus a `POST /admin/shutdown` graceful-exit
//! route (drain in-flight requests, park every resident session, exit).
//!
//! ```no_run
//! use std::sync::Arc;
//! use qfe_server::{serve, HttpClient, ServerConfig};
//! use qfe_snapstore::{HostConfig, MemoryStore, SessionHost};
//!
//! let host = SessionHost::open(Arc::new(MemoryStore::new()), HostConfig::default()).unwrap();
//! let server = serve("127.0.0.1:0", host, ServerConfig::default()).unwrap();
//! let mut client = HttpClient::new(server.local_addr().to_string());
//! let (status, body) = client.get("/healthz").unwrap();
//! assert_eq!(status, 200);
//! println!("{}", body.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod http;
pub mod routes;

use std::sync::Arc;

pub use chaos::{FlakyConfig, FlakyHandler};
pub use client::{HttpClient, RetryPolicy};
pub use http::{Handler, Request, Response, Server, ServerConfig};
pub use routes::ServiceState;

use qfe_snapstore::SessionHost;

/// Boots the session service: binds `addr` (port 0 for an ephemeral port)
/// and serves `host` until the returned [`Server`] is shut down or dropped.
pub fn serve(addr: &str, host: SessionHost, config: ServerConfig) -> std::io::Result<Server> {
    Server::bind(addr, Arc::new(ServiceState::new(host)), config)
}
