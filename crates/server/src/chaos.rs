//! Deterministic request-level chaos: a [`Handler`] wrapper that delays,
//! duplicates, and drops responses on a seeded schedule.
//!
//! [`FlakyHandler`] sits between the HTTP server and the real application
//! handler, misbehaving in the ways a lossy network or a struggling proxy
//! would:
//!
//! * **delay** — sleep before handling, exercising client read patience;
//! * **duplicate** — invoke the inner handler *twice* for one request (as a
//!   replaying proxy would), returning the second response — the server's
//!   idempotency cache must make the second invocation a no-op replay;
//! * **drop** — invoke the inner handler (the effect *is* applied), then
//!   discard the response and return `503`, as if the reply was lost in
//!   flight — the client's retry must be deduplicated server-side, which is
//!   exactly the case idempotency keys exist for.
//!
//! All misbehavior is drawn from a seeded splitmix64 sequence: the same
//! seed and request order produce the same schedule, so chaos runs are
//! replayable in CI. Faults only apply to paths containing one of the
//! configured needles, so the session-creation plumbing stays reliable
//! while the verbs under test suffer.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::http::{Handler, Request, Response};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Misbehavior probabilities and targeting for a [`FlakyHandler`].
#[derive(Debug, Clone)]
pub struct FlakyConfig {
    /// Seed of the fault schedule; same seed → same schedule.
    pub seed: u64,
    /// Probability of executing the request but returning `503` instead of
    /// its response (a lost reply).
    pub drop_response: f64,
    /// Probability of handling the request twice (a replaying proxy).
    pub duplicate: f64,
    /// Probability of sleeping [`FlakyConfig::delay_millis`] first.
    pub delay: f64,
    /// How long a delay fault sleeps.
    pub delay_millis: u64,
    /// Only requests whose path contains one of these substrings are
    /// eligible for faults; everything else passes through untouched.
    pub target_paths: Vec<String>,
}

impl Default for FlakyConfig {
    fn default() -> FlakyConfig {
        FlakyConfig {
            seed: 0xC4A05,
            drop_response: 0.15,
            duplicate: 0.1,
            delay: 0.1,
            delay_millis: 20,
            target_paths: vec![
                "/answer".to_string(),
                "/reject".to_string(),
                "/park".to_string(),
            ],
        }
    }
}

/// A [`Handler`] that wraps another and misbehaves per [`FlakyConfig`].
pub struct FlakyHandler {
    inner: Arc<dyn Handler>,
    config: FlakyConfig,
    rng: Mutex<u64>,
    dropped: AtomicUsize,
    duplicated: AtomicUsize,
    delayed: AtomicUsize,
}

impl std::fmt::Debug for FlakyHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlakyHandler")
            .field("config", &self.config)
            .field("dropped", &self.dropped())
            .field("duplicated", &self.duplicated())
            .field("delayed", &self.delayed())
            .finish_non_exhaustive()
    }
}

impl FlakyHandler {
    /// Wraps `inner` with the fault schedule seeded by `config`.
    pub fn new(inner: Arc<dyn Handler>, config: FlakyConfig) -> FlakyHandler {
        let seed = config.seed;
        FlakyHandler {
            inner,
            config,
            rng: Mutex::new(seed),
            dropped: AtomicUsize::new(0),
            duplicated: AtomicUsize::new(0),
            delayed: AtomicUsize::new(0),
        }
    }

    /// Responses dropped (executed, then replaced by `503`).
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Requests handled twice.
    pub fn duplicated(&self) -> usize {
        self.duplicated.load(Ordering::SeqCst)
    }

    /// Requests delayed before handling.
    pub fn delayed(&self) -> usize {
        self.delayed.load(Ordering::SeqCst)
    }

    fn targeted(&self, request: &Request) -> bool {
        self.config
            .target_paths
            .iter()
            .any(|needle| request.path.contains(needle))
    }
}

impl Handler for FlakyHandler {
    fn handle(&self, request: &Request) -> Response {
        if !self.targeted(request) {
            return self.inner.handle(request);
        }
        // One lock scope for all of this request's draws keeps the
        // schedule deterministic under concurrency-free drivers.
        let (delay, duplicate, drop) = {
            let mut rng = self.rng.lock().expect("flaky rng lock poisoned");
            (
                unit(&mut rng) < self.config.delay,
                unit(&mut rng) < self.config.duplicate,
                unit(&mut rng) < self.config.drop_response,
            )
        };
        if delay {
            self.delayed.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(self.config.delay_millis));
        }
        let mut response = self.inner.handle(request);
        if duplicate {
            self.duplicated.fetch_add(1, Ordering::SeqCst);
            response = self.inner.handle(request);
        }
        if drop {
            self.dropped.fetch_add(1, Ordering::SeqCst);
            return Response::unavailable("chaos: response dropped", 1);
        }
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts invocations; echoes the count so duplicates are visible.
    #[derive(Debug, Default)]
    struct Counter(AtomicUsize);

    impl Handler for Counter {
        fn handle(&self, _request: &Request) -> Response {
            let n = self.0.fetch_add(1, Ordering::SeqCst) + 1;
            Response::json(200, format!("{{\"calls\":{n}}}"))
        }
    }

    fn req(path: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            body: String::new(),
        }
    }

    #[test]
    fn untargeted_paths_pass_through() {
        let flaky = FlakyHandler::new(
            Arc::new(Counter::default()),
            FlakyConfig {
                drop_response: 1.0,
                duplicate: 1.0,
                delay: 0.0,
                ..FlakyConfig::default()
            },
        );
        let response = flaky.handle(&req("/healthz"));
        assert_eq!(response.status, 200);
        assert_eq!(flaky.dropped(), 0);
        assert_eq!(flaky.duplicated(), 0);
    }

    #[test]
    fn drop_executes_then_loses_the_response() {
        let inner = Arc::new(Counter::default());
        let flaky = FlakyHandler::new(
            Arc::clone(&inner) as Arc<dyn Handler>,
            FlakyConfig {
                drop_response: 1.0,
                duplicate: 0.0,
                delay: 0.0,
                ..FlakyConfig::default()
            },
        );
        let response = flaky.handle(&req("/sessions/1/answer"));
        // The effect happened (inner ran) but the caller sees a 503.
        assert_eq!(response.status, 503);
        assert_eq!(inner.0.load(Ordering::SeqCst), 1);
        assert_eq!(flaky.dropped(), 1);
    }

    #[test]
    fn duplicate_invokes_inner_twice() {
        let inner = Arc::new(Counter::default());
        let flaky = FlakyHandler::new(
            Arc::clone(&inner) as Arc<dyn Handler>,
            FlakyConfig {
                drop_response: 0.0,
                duplicate: 1.0,
                delay: 0.0,
                ..FlakyConfig::default()
            },
        );
        let response = flaky.handle(&req("/sessions/1/answer"));
        assert_eq!(response.status, 200);
        assert!(response.body.contains("\"calls\":2"));
        assert_eq!(inner.0.load(Ordering::SeqCst), 2);
        assert_eq!(flaky.duplicated(), 1);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let flaky = FlakyHandler::new(
                Arc::new(Counter::default()),
                FlakyConfig {
                    seed,
                    ..FlakyConfig::default()
                },
            );
            let mut statuses = Vec::new();
            for i in 0..50 {
                statuses.push(flaky.handle(&req(&format!("/sessions/{i}/answer"))).status);
            }
            (
                statuses,
                flaky.dropped(),
                flaky.duplicated(),
                flaky.delayed(),
            )
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7).0, run(8).0, "different seed, different schedule");
    }
}
