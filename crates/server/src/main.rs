//! The `qfe-server` binary: serve QFE sessions over HTTP.
//!
//! ```text
//! qfe-server [--addr HOST:PORT] [--store mem|log:PATH|dir:PATH]
//!            [--workers N] [--max-resident N] [--shards N] [--fsck]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:7878`, in-memory store, 8 workers, no
//! resident watermark, one shard. See the operators guide in the umbrella
//! crate docs for a curl walkthrough.
//!
//! `--shards N` (N > 1) serves a sharded fleet over the one store: requests
//! route through `qfe-cluster`, and the `/admin/shards` routes come alive
//! for status, drain, kill, and restart.
//!
//! `--fsck` audits the store instead of serving: the `FsckReport` prints as
//! JSON on stdout, and the exit code is `0` when every record verifies,
//! `1` when anything was quarantined.
//!
//! `POST /admin/shutdown` begins a graceful exit: the readiness probe flips
//! to `503 draining`, new work is refused, in-flight requests finish, and
//! every resident session is parked to the store before the process exits —
//! nothing is lost, everything resumes on the next boot.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use qfe_cluster::{Cluster, ClusterConfig};
use qfe_server::{Handler, Request, Response, Server, ServerConfig, ServiceState};
use qfe_snapstore::{DirStore, HostConfig, LogStore, MemoryStore, SessionHost, SnapshotStore};

/// How long the exit path may spend parking resident sessions — shared
/// with the in-flight request drain.
const SHUTDOWN_PARK_DEADLINE: Duration = Duration::from_secs(30);

struct Args {
    addr: String,
    store: String,
    workers: usize,
    max_resident: Option<usize>,
    shards: usize,
    fsck: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        store: "mem".to_string(),
        workers: 8,
        max_resident: None,
        shards: 1,
        fsck: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--store" => args.store = value("--store")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-resident" => {
                args.max_resident = Some(
                    value("--max-resident")?
                        .parse()
                        .map_err(|e| format!("--max-resident: {e}"))?,
                )
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--fsck" => args.fsck = true,
            "--help" | "-h" => {
                return Err(
                    "usage: qfe-server [--addr HOST:PORT] [--store mem|log:PATH|dir:PATH] \
                     [--workers N] [--max-resident N] [--shards N] [--fsck]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn open_store(spec: &str) -> Result<Arc<dyn SnapshotStore>, String> {
    if spec == "mem" {
        return Ok(Arc::new(MemoryStore::new()));
    }
    if let Some(path) = spec.strip_prefix("log:") {
        return Ok(Arc::new(LogStore::open(path).map_err(|e| e.to_string())?));
    }
    if let Some(path) = spec.strip_prefix("dir:") {
        return Ok(Arc::new(DirStore::open(path).map_err(|e| e.to_string())?));
    }
    Err(format!(
        "unknown store {spec:?}: expected mem, log:PATH or dir:PATH"
    ))
}

/// Routes `POST /admin/shutdown` to a signal channel; everything else goes
/// to the service.
struct AdminGate {
    service: Arc<ServiceState>,
    shutdown_tx: Mutex<mpsc::Sender<()>>,
}

impl Handler for AdminGate {
    fn handle(&self, request: &Request) -> Response {
        if request.method == "POST" && request.path == "/admin/shutdown" {
            let _ = self
                .shutdown_tx
                .lock()
                .expect("shutdown channel lock poisoned")
                .send(());
            return Response::json(200, "{\"status\":\"draining\"}");
        }
        self.service.handle(request)
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let store = match open_store(&args.store) {
        Ok(store) => store,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if args.fsck {
        // Audit mode: scan, repair what is repairable, report, exit.
        match store.fsck() {
            Ok(report) => {
                println!("{}", report.to_json().render());
                eprintln!("{report}");
                std::process::exit(if report.is_clean() { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("fsck failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let service = if args.shards > 1 {
        let cluster = Cluster::open(
            store,
            ClusterConfig {
                shards: args.shards,
                max_resident_per_shard: args.max_resident,
                ..ClusterConfig::default()
            },
        );
        match cluster {
            Ok(cluster) => Arc::new(ServiceState::clustered(Arc::new(cluster))),
            Err(e) => {
                eprintln!("failed to open session cluster: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match SessionHost::open(
            store,
            HostConfig {
                max_resident: args.max_resident,
            },
        ) {
            Ok(host) => Arc::new(ServiceState::new(host)),
            Err(e) => {
                eprintln!("failed to open session host: {e}");
                std::process::exit(1);
            }
        }
    };
    let (shutdown_tx, shutdown_rx) = mpsc::channel();
    let gate = Arc::new(AdminGate {
        service: Arc::clone(&service),
        shutdown_tx: Mutex::new(shutdown_tx),
    });
    let mut server = match Server::bind(
        &args.addr,
        gate,
        ServerConfig {
            workers: args.workers,
            ..ServerConfig::default()
        },
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    // Line-buffered announcement so scripts (and the CI smoke job) can
    // scrape the bound address even with an ephemeral port.
    println!("qfe-server listening on http://{}", server.local_addr());

    // Block until an operator POSTs /admin/shutdown, then exit gracefully:
    // refuse new work, drain what is in flight, park every resident session.
    let _ = shutdown_rx.recv();
    eprintln!("qfe-server: shutdown requested, draining");
    service.begin_drain();
    let drained = server.shutdown_graceful(SHUTDOWN_PARK_DEADLINE);
    // The same deadline-bounded sweep a cluster shard drain runs.
    let sweep = service.backend().park_all(Some(SHUTDOWN_PARK_DEADLINE));
    if sweep.is_complete() {
        eprintln!(
            "qfe-server: drained={drained}, parked {} resident session(s); exiting",
            sweep.parked
        );
    } else {
        match sweep.first_error {
            Some(e) => eprintln!("qfe-server: failed to park resident sessions: {e}"),
            None => eprintln!(
                "qfe-server: park sweep timed out with {} session(s) resident",
                sweep.remaining
            ),
        }
        std::process::exit(1);
    }
}
