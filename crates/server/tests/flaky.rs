//! Exactly-once session effects under a misbehaving server.
//!
//! Boots the real service behind a [`FlakyHandler`] that drops, delays, and
//! duplicates responses on a seeded schedule, drives full oracle-answered
//! sessions through an [`HttpClient`] with retries and idempotency keys,
//! and asserts that every session still converges to the right query with
//! no duplicate `answer` effects — the whole point of idempotent retries.

use std::sync::Arc;
use std::time::Duration;

use qfe_core::{FeedbackRound, FeedbackUser, OracleUser};
use qfe_datasets::example_1_1;
use qfe_server::{
    FlakyConfig, FlakyHandler, HttpClient, RetryPolicy, Server, ServerConfig, ServiceState,
};
use qfe_snapstore::{HostConfig, MemoryStore, SessionHost};
use qfe_wire::{FromJson, Json};

/// Drives one session to completion over HTTP, parking/resuming midway,
/// and returns the final label. Panics on any protocol surprise.
fn drive_session(client: &mut HttpClient) -> String {
    let (_, _, candidates, _) = example_1_1();
    let target = candidates[1].clone();
    let oracle = OracleUser::new(target.clone());

    let (status, created) = client
        .post(
            "/sessions",
            &Json::object([("workload", Json::Str("example_1_1".to_string()))]),
        )
        .expect("create session");
    assert_eq!(status, 201, "{}", created.render());
    let id = created.field("id").unwrap().as_i64().unwrap();

    let mut rounds = 0usize;
    loop {
        let (status, step) = client
            .get(&format!("/sessions/{id}/step"))
            .expect("step session");
        assert_eq!(status, 200, "{}", step.render());
        match step.field("status").unwrap().as_str().unwrap() {
            "done" => {
                let label = step.field("label").unwrap().as_str().unwrap().to_string();
                let (status, _) = client
                    .delete(&format!("/sessions/{id}"))
                    .expect("delete session");
                assert_eq!(status, 200);
                return label;
            }
            "await_feedback" => {
                rounds += 1;
                // Park/resume churn mid-session: parked state must survive
                // the chaos too (park is idempotent-keyed).
                if rounds == 2 {
                    let (status, _) = client
                        .post_idempotent(
                            &format!("/sessions/{id}/park"),
                            &Json::object::<String, [(String, Json); 0]>([]),
                        )
                        .expect("park session");
                    assert_eq!(status, 200);
                    let (status, _) = client
                        .post(
                            &format!("/sessions/{id}/resume"),
                            &Json::object::<String, [(String, Json); 0]>([]),
                        )
                        .expect("resume session");
                    assert_eq!(status, 200);
                }
                let round = FeedbackRound::from_json(step.field("round").unwrap()).unwrap();
                let choice = oracle.choose(&round).unwrap();
                let (status, answered) = client
                    .post_idempotent(
                        &format!("/sessions/{id}/answer"),
                        &Json::object([("choice", Json::Int(choice as i64))]),
                    )
                    .expect("answer round");
                // Exactly-once: a duplicated or replayed answer must never
                // surface as a 409 conflict — the idempotency cache absorbs
                // it. Any other status would mean a double effect.
                assert_eq!(status, 200, "{}", answered.render());
            }
            other => panic!("unexpected step status {other}"),
        }
        assert!(rounds < 100, "session failed to converge");
    }
}

#[test]
fn sessions_survive_drops_delays_and_duplicates_exactly_once() {
    let host = SessionHost::open(Arc::new(MemoryStore::new()), HostConfig::default()).unwrap();
    let state = Arc::new(ServiceState::new(host));
    let flaky = Arc::new(FlakyHandler::new(
        Arc::clone(&state) as Arc<dyn qfe_server::Handler>,
        FlakyConfig {
            seed: 0xC4A05,
            drop_response: 0.35,
            duplicate: 0.25,
            delay: 0.2,
            delay_millis: 5,
            ..FlakyConfig::default()
        },
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&flaky) as Arc<dyn qfe_server::Handler>,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut client = HttpClient::with_retry(
        server.local_addr().to_string(),
        RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(20),
            budget: Duration::from_secs(2),
            seed: 0xFEED,
        },
    );

    let (_, _, candidates, _) = example_1_1();
    let expected = candidates[1].label.clone().unwrap();
    for _ in 0..3 {
        let label = drive_session(&mut client);
        assert_eq!(label, expected, "chaos must not change the outcome");
    }

    // The chaos actually happened and the machinery actually engaged:
    // responses were dropped (forcing retries of applied mutations) and the
    // server answered those retries from the idempotency cache.
    assert!(flaky.dropped() > 0, "schedule produced no drops");
    assert!(client.retries() > 0, "client never had to retry");
    assert!(
        state.idem_replays() > 0,
        "no replay was deduplicated — retries were not exercising idempotency"
    );
}

#[test]
fn without_idempotency_dropped_answers_surface_conflicts() {
    // The control experiment: same chaos, but answers sent WITHOUT
    // idempotency keys. A dropped response means the answer was applied but
    // the retry re-executes it — surfacing a 409 conflict. This is the
    // failure mode idempotency keys eliminate.
    let host = SessionHost::open(Arc::new(MemoryStore::new()), HostConfig::default()).unwrap();
    let state = Arc::new(ServiceState::new(host));
    let flaky = Arc::new(FlakyHandler::new(
        Arc::clone(&state) as Arc<dyn qfe_server::Handler>,
        FlakyConfig {
            seed: 1,
            drop_response: 1.0, // every answer's response is lost
            duplicate: 0.0,
            delay: 0.0,
            ..FlakyConfig::default()
        },
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        flaky as Arc<dyn qfe_server::Handler>,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = HttpClient::with_retry(
        server.local_addr().to_string(),
        RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
            budget: Duration::from_millis(200),
            seed: 2,
        },
    );
    let (status, created) = client
        .post(
            "/sessions",
            &Json::object([("workload", Json::Str("example_1_1".to_string()))]),
        )
        .unwrap();
    assert_eq!(status, 201);
    let id = created.field("id").unwrap().as_i64().unwrap();
    let (_, step) = client.get(&format!("/sessions/{id}/step")).unwrap();
    let round = FeedbackRound::from_json(step.field("round").unwrap()).unwrap();
    let oracle = OracleUser::new(example_1_1().2[1].clone());
    let choice = oracle.choose(&round).unwrap();

    // Plain post: the answer is applied, its response dropped (503), and
    // the naked retry of the applied mutation re-executes.
    let (status, body) = client
        .post(
            &format!("/sessions/{id}/answer"),
            &Json::object([("choice", Json::Int(choice as i64))]),
        )
        .unwrap();
    // All retries burned: the last attempt still collides with the
    // already-applied answer (409) or is still being dropped (503) —
    // either way, no clean 200 without idempotency.
    assert_ne!(status, 200, "{}", body.render());
}
