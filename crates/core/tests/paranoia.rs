//! The `QFE_PARANOIA` self-check mode: delta-maintained advances are
//! spot-validated against a fresh rebuild, and a divergence degrades
//! gracefully to the rebuilt context instead of serving drifted state.
//!
//! This lives in its own integration-test binary because the sampling
//! interval is parsed from the environment once per process — the variable
//! must be set before the first `advance` anywhere in the process.

use qfe_core::{paranoia_checks, paranoia_mismatches, AdvancePath, CellEdit, GenerationContext};
use qfe_relation::Value;

#[test]
fn paranoia_mode_spot_validates_delta_advances() {
    std::env::set_var("QFE_PARANOIA", "1");

    let (db, result, candidates, _) = qfe_datasets::example_1_1();
    let ctx = GenerationContext::new(&db, &result, &candidates).unwrap();

    // An edited advance takes the delta path and gets spot-checked.
    let edits = vec![CellEdit {
        table: "Employee".to_string(),
        row: 0,
        column: "salary".to_string(),
        new_value: Value::Int(4100),
    }];
    let (advanced, report) = ctx.advance_with_report(&[0, 1, 2], &edits).unwrap();
    assert_eq!(report.path, AdvancePath::DeltaPatched);
    assert!(
        report.paranoia_checked,
        "QFE_PARANOIA=1 checks every advance"
    );
    assert!(
        report.paranoia_mismatch.is_none(),
        "a correct delta repair must pass its own audit: {:?}",
        report.paranoia_mismatch
    );

    // The no-edit (Arc-shared) advance is audited too.
    let (_, report) = advanced.advance_with_report(&[0, 1, 2], &[]).unwrap();
    assert_eq!(report.path, AdvancePath::SharedNoEdit);
    assert!(report.paranoia_checked);
    assert!(report.paranoia_mismatch.is_none());

    assert!(paranoia_checks() >= 2, "both advances were sampled");
    assert_eq!(paranoia_mismatches(), 0, "no divergence on healthy paths");
}

#[test]
fn divergence_audit_reports_real_differences() {
    // The comparator behind the paranoia check: reflexively clean, and a
    // context with a different surviving-candidate set is named as divergent.
    let (db, result, candidates, _) = qfe_datasets::example_1_1();
    let ctx = GenerationContext::new(&db, &result, &candidates).unwrap();
    assert!(ctx.divergence_from(&ctx).is_none());

    let fewer = GenerationContext::new(&db, &result, &candidates[..2]).unwrap();
    let reason = ctx.divergence_from(&fewer);
    assert!(reason.is_some(), "candidate-count drift must be detected");
}
