//! The alternative cost model used as the user-study baseline (Section 7.7).
//!
//! The paper compares its user-effort cost model against "an alternative cost
//! model that aims to reduce both the size of query subsets as well as the
//! number of iterations by choosing data modifications to maximize the number
//! of partitioned query subsets".  This module packages that alternative as a
//! preset of [`CostParams`] so that experiments can switch between the two
//! with a single call.

use crate::cost::{CostModelKind, CostParams};

/// Preset factory for the two cost models compared in the paper's user study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AltCostModel;

impl AltCostModel {
    /// Parameters for the paper's proposed user-effort cost model.
    pub fn qfe_params() -> CostParams {
        CostParams::default().with_model(CostModelKind::UserEffort)
    }

    /// Parameters for the alternative, maximize-the-number-of-partitions
    /// model.
    pub fn alternative_params() -> CostParams {
        CostParams::default().with_model(CostModelKind::MaxPartitions)
    }

    /// Both presets, labeled — convenient for sweeping experiments.
    pub fn both() -> Vec<(&'static str, CostParams)> {
        vec![
            ("qfe-user-effort", Self::qfe_params()),
            ("max-partitions", Self::alternative_params()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_objective() {
        let a = AltCostModel::qfe_params();
        let b = AltCostModel::alternative_params();
        assert_eq!(a.model, CostModelKind::UserEffort);
        assert_eq!(b.model, CostModelKind::MaxPartitions);
        assert_eq!(a.beta, b.beta);
        assert_eq!(a.skyline_time_budget, b.skyline_time_budget);
        assert_eq!(AltCostModel::both().len(), 2);
    }
}
