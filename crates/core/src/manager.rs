//! Hosting many concurrent QFE sessions behind opaque handles.
//!
//! [`SessionManager`] owns a set of [`QfeEngine`]s keyed by [`SessionId`]
//! and exposes the engine operations — step, answer, reject, snapshot —
//! through the handle. It is the embedding point for a server frontend: a
//! request handler resolves the session id, steps or answers, and returns;
//! no thread ever blocks waiting for a user.
//!
//! Concurrency: the manager is `Sync`. The session table is behind a
//! read-write lock held only for lookup, and each engine has its own mutex,
//! so sessions progress independently — stepping one session (which runs
//! Algorithms 2–4) never blocks stepping another.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::driver::QfeSession;
use crate::engine::{QfeEngine, SessionSnapshot, Step};
use crate::error::{QfeError, Result};

/// Opaque handle to a session hosted by a [`SessionManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw numeric id (for logging and wire protocols).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from its raw numeric id (the inverse of
    /// [`SessionId::as_u64`], for wire protocols and durable stores). The id
    /// is not checked against any manager; operations on an unhosted id fail
    /// with [`QfeError::UnknownSession`] as usual.
    pub fn from_u64(id: u64) -> SessionId {
        SessionId(id)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// A hosted engine plus its idle clock: `last_touch` is updated on every
/// step/answer/reject, so eviction policy (park the longest-idle session
/// first) is deterministic and observable via
/// [`SessionManager::idle_since`].
#[derive(Debug)]
struct Hosted {
    engine: Mutex<QfeEngine>,
    last_touch: Mutex<Instant>,
}

impl Hosted {
    fn new(engine: QfeEngine) -> Arc<Hosted> {
        Arc::new(Hosted {
            engine: Mutex::new(engine),
            last_touch: Mutex::new(Instant::now()),
        })
    }

    fn touch(&self) {
        *self.last_touch.lock().expect("idle clock lock poisoned") = Instant::now();
    }
}

/// Hosts many concurrent [`QfeEngine`]s behind [`SessionId`] handles.
#[derive(Debug, Default)]
pub struct SessionManager {
    sessions: RwLock<HashMap<SessionId, Arc<Hosted>>>,
    next_id: AtomicU64,
}

impl SessionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Starts hosting a new session built from the given configured session.
    pub fn create(&self, session: &QfeSession) -> SessionId {
        self.adopt(session.start())
    }

    /// Starts hosting an existing engine (e.g. one resumed from a snapshot).
    pub fn adopt(&self, engine: QfeEngine) -> SessionId {
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.sessions
            .write()
            .expect("session table lock poisoned")
            .insert(id, Hosted::new(engine));
        id
    }

    /// Starts hosting an engine under a caller-chosen id — the rehydration
    /// path: a session parked to a durable store must come back under the
    /// handle its clients already hold. Fails when the id is already
    /// resident. The manager's id counter is advanced past `id` so freshly
    /// created sessions can never collide with rehydrated ones.
    pub fn adopt_as(&self, id: SessionId, engine: QfeEngine) -> Result<()> {
        self.reserve_ids(id.0.saturating_add(1));
        let mut sessions = self.sessions.write().expect("session table lock poisoned");
        if sessions.contains_key(&id) {
            return Err(QfeError::Store {
                context: format!("adopt_as {id}"),
                message: "session id is already resident".into(),
            });
        }
        sessions.insert(id, Hosted::new(engine));
        Ok(())
    }

    /// Restores a session from a snapshot and starts hosting it.
    pub fn restore(&self, snapshot: SessionSnapshot) -> Result<SessionId> {
        Ok(self.adopt(QfeEngine::resume(snapshot)?))
    }

    /// [`SessionManager::adopt_as`] from a snapshot.
    pub fn restore_as(&self, id: SessionId, snapshot: SessionSnapshot) -> Result<()> {
        self.adopt_as(id, QfeEngine::resume(snapshot)?)
    }

    /// Guarantees that every id handed out in the future is `>= min_next`.
    /// Called when sessions from a previous process generation are found in a
    /// durable store, so new ids never collide with parked ones.
    pub fn reserve_ids(&self, min_next: u64) {
        self.next_id.fetch_max(min_next, Ordering::Relaxed);
    }

    fn hosted(&self, id: SessionId) -> Result<Arc<Hosted>> {
        self.sessions
            .read()
            .expect("session table lock poisoned")
            .get(&id)
            .cloned()
            .ok_or(QfeError::UnknownSession { id: id.0 })
    }

    /// Advances a session: [`QfeEngine::step`] through the handle.
    pub fn step(&self, id: SessionId) -> Result<Step> {
        let hosted = self.hosted(id)?;
        hosted.touch();
        let step = hosted.engine.lock().expect("engine lock poisoned").step();
        step
    }

    /// Answers a session's pending round: [`QfeEngine::answer`].
    pub fn answer(&self, id: SessionId, choice_idx: usize) -> Result<()> {
        let hosted = self.hosted(id)?;
        hosted.touch();
        let answered = hosted
            .engine
            .lock()
            .expect("engine lock poisoned")
            .answer(choice_idx);
        answered
    }

    /// [`QfeEngine::answer_timed`] through the handle.
    pub fn answer_timed(
        &self,
        id: SessionId,
        choice_idx: usize,
        user_time: Duration,
    ) -> Result<()> {
        let hosted = self.hosted(id)?;
        hosted.touch();
        let answered = hosted
            .engine
            .lock()
            .expect("engine lock poisoned")
            .answer_timed(choice_idx, user_time);
        answered
    }

    /// Reports "none of these" for a session's pending round:
    /// [`QfeEngine::reject`].
    pub fn reject(&self, id: SessionId) -> Result<()> {
        let hosted = self.hosted(id)?;
        hosted.touch();
        let rejected = hosted.engine.lock().expect("engine lock poisoned").reject();
        rejected
    }

    /// Externalizes a session's state: [`QfeEngine::snapshot`]. The session
    /// keeps running; pair with [`SessionManager::evict`] to migrate it away.
    ///
    /// Snapshotting does not reset the idle clock: parking a long-idle
    /// session must not make it look freshly used.
    pub fn snapshot(&self, id: SessionId) -> Result<SessionSnapshot> {
        Ok(self
            .hosted(id)?
            .engine
            .lock()
            .expect("engine lock poisoned")
            .snapshot())
    }

    /// How long ago the session was last stepped, answered or rejected.
    /// Freshly created/adopted sessions start the clock at adoption.
    pub fn idle_since(&self, id: SessionId) -> Result<Duration> {
        Ok(self
            .hosted(id)?
            .last_touch
            .lock()
            .expect("idle clock lock poisoned")
            .elapsed())
    }

    /// `(id, idle duration)` for every hosted session, most idle first (ties
    /// broken by ascending id) — the order an eviction policy should park
    /// sessions in. One consistent pass under the table read lock.
    pub fn idle_sessions(&self) -> Vec<(SessionId, Duration)> {
        let now = Instant::now();
        let mut idle: Vec<(SessionId, Duration)> = self
            .sessions
            .read()
            .expect("session table lock poisoned")
            .iter()
            .map(|(id, hosted)| {
                let touched = *hosted.last_touch.lock().expect("idle clock lock poisoned");
                (*id, now.saturating_duration_since(touched))
            })
            .collect();
        idle.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        idle
    }

    /// Stops hosting a session. Returns `false` when the id was unknown
    /// (evicting twice is not an error).
    pub fn evict(&self, id: SessionId) -> bool {
        self.sessions
            .write()
            .expect("session table lock poisoned")
            .remove(&id)
            .is_some()
    }

    /// True when the id is currently hosted.
    pub fn contains(&self, id: SessionId) -> bool {
        self.sessions
            .read()
            .expect("session table lock poisoned")
            .contains_key(&id)
    }

    /// Number of hosted sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .read()
            .expect("session table lock poisoned")
            .len()
    }

    /// True when no sessions are hosted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ids of all hosted sessions, in ascending order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .sessions
            .read()
            .expect("session table lock poisoned")
            .keys()
            .copied()
            .collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Step;
    use crate::feedback::{FeedbackUser, OracleUser};
    use qfe_datasets::example_1_1;
    use qfe_query::SpjQuery;

    fn session_for(target_idx: usize) -> (QfeSession, SpjQuery) {
        let (db, result, candidates, _) = example_1_1();
        let target = candidates[target_idx].clone();
        let session = QfeSession::builder(db, result)
            .with_candidates(candidates)
            .build()
            .unwrap();
        (session, target)
    }

    #[test]
    fn create_step_answer_evict_lifecycle() {
        let manager = SessionManager::new();
        assert!(manager.is_empty());
        let (session, target) = session_for(1);
        let id = manager.create(&session);
        assert!(manager.contains(id));
        assert_eq!(manager.len(), 1);
        assert_eq!(manager.session_ids(), vec![id]);
        assert_eq!(id.to_string(), format!("session-{}", id.as_u64()));

        let oracle = OracleUser::new(target.clone());
        let outcome = loop {
            match manager.step(id).unwrap() {
                Step::Done(outcome) => break outcome,
                Step::AwaitFeedback(round) => {
                    manager.answer(id, oracle.choose(&round).unwrap()).unwrap();
                }
            }
        };
        assert_eq!(outcome.query.label, target.label);
        assert!(manager.evict(id));
        assert!(!manager.evict(id));
        assert!(matches!(
            manager.step(id),
            Err(QfeError::UnknownSession { .. })
        ));
    }

    #[test]
    fn snapshot_restore_continues_under_a_new_id() {
        let manager = SessionManager::new();
        let (session, target) = session_for(2);
        let id = manager.create(&session);
        // Generate a round, snapshot mid-round, evict the original.
        let round = match manager.step(id).unwrap() {
            Step::AwaitFeedback(round) => round,
            Step::Done(_) => panic!("three candidates cannot finish immediately"),
        };
        let snapshot = manager.snapshot(id).unwrap();
        assert!(manager.evict(id));

        let restored = manager.restore(snapshot).unwrap();
        assert_ne!(restored, id);
        let oracle = OracleUser::new(target.clone());
        // The restored session re-presents the cached round.
        let outcome = loop {
            match manager.step(restored).unwrap() {
                Step::Done(outcome) => break outcome,
                Step::AwaitFeedback(r) => {
                    if r.iteration == round.iteration {
                        assert_eq!(r, round, "cached round must be re-presented");
                    }
                    manager
                        .answer(restored, oracle.choose(&r).unwrap())
                        .unwrap();
                }
            }
        };
        assert_eq!(outcome.query.label, target.label);
    }

    #[test]
    fn unknown_ids_are_reported() {
        let manager = SessionManager::new();
        let ghost = SessionId(999);
        assert!(!manager.contains(ghost));
        assert!(matches!(
            manager.answer(ghost, 0),
            Err(QfeError::UnknownSession { id: 999 })
        ));
        assert!(matches!(
            manager.snapshot(ghost),
            Err(QfeError::UnknownSession { .. })
        ));
        assert!(matches!(
            manager.reject(ghost),
            Err(QfeError::UnknownSession { .. })
        ));
        assert!(matches!(
            manager.answer_timed(ghost, 0, Duration::ZERO),
            Err(QfeError::UnknownSession { .. })
        ));
    }

    #[test]
    fn idle_clock_resets_on_step_and_answer() {
        let manager = SessionManager::new();
        let (session, _) = session_for(1);
        let id = manager.create(&session);
        assert!(manager.idle_since(id).unwrap() < Duration::from_secs(5));
        std::thread::sleep(Duration::from_millis(15));
        let idled = manager.idle_since(id).unwrap();
        assert!(idled >= Duration::from_millis(15));
        // Stepping resets the clock.
        let _ = manager.step(id).unwrap();
        assert!(manager.idle_since(id).unwrap() < idled);
        std::thread::sleep(Duration::from_millis(15));
        // Answering resets it again.
        manager.answer(id, 0).unwrap();
        assert!(manager.idle_since(id).unwrap() < Duration::from_millis(15));
        assert!(matches!(
            manager.idle_since(SessionId(404)),
            Err(QfeError::UnknownSession { id: 404 })
        ));
    }

    #[test]
    fn idle_sessions_order_most_idle_first() {
        let manager = SessionManager::new();
        let (s1, _) = session_for(1);
        let (s2, _) = session_for(2);
        let a = manager.create(&s1);
        let b = manager.create(&s2);
        std::thread::sleep(Duration::from_millis(10));
        let _ = manager.step(b).unwrap(); // b is now the freshest
        let order: Vec<SessionId> = manager.idle_sessions().iter().map(|(id, _)| *id).collect();
        assert_eq!(order, vec![a, b]);
        let _ = manager.step(a).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let order: Vec<SessionId> = manager.idle_sessions().iter().map(|(id, _)| *id).collect();
        assert_eq!(order, vec![b, a]);
    }

    #[test]
    fn adopt_as_rehosts_under_the_original_id_and_reserves_ids() {
        let manager = SessionManager::new();
        let (session, target) = session_for(2);
        let id = manager.create(&session);
        let _ = manager.step(id).unwrap();
        let snapshot = manager.snapshot(id).unwrap();
        assert!(manager.evict(id));

        // A fresh manager (a "restarted process") rehosts under the same id.
        let fresh = SessionManager::new();
        fresh.restore_as(id, snapshot.clone()).unwrap();
        assert!(fresh.contains(id));
        // Ids handed out afterwards never collide with the rehydrated one.
        let (other, _) = session_for(1);
        let new_id = fresh.create(&other);
        assert!(new_id.as_u64() > id.as_u64());

        // Rehosting over a resident id is a store error, not a panic.
        assert!(matches!(
            fresh.restore_as(id, snapshot),
            Err(QfeError::Store { .. })
        ));

        // The rehydrated session still finishes.
        let oracle = OracleUser::new(target.clone());
        let outcome = loop {
            match fresh.step(id).unwrap() {
                Step::Done(outcome) => break outcome,
                Step::AwaitFeedback(round) => {
                    fresh.answer(id, oracle.choose(&round).unwrap()).unwrap()
                }
            }
        };
        assert_eq!(outcome.query.label, target.label);
    }

    #[test]
    fn session_id_roundtrips_through_u64() {
        let id = SessionId::from_u64(42);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(id, SessionId(42));
    }

    #[test]
    fn sessions_are_isolated() {
        let manager = SessionManager::new();
        let (s1, t1) = session_for(1);
        let (s2, t2) = session_for(2);
        let a = manager.create(&s1);
        let b = manager.create(&s2);
        // Interleave the two sessions round by round.
        let (o1, o2) = {
            let drive = |id, target: &SpjQuery| {
                let oracle = OracleUser::new(target.clone());
                loop {
                    match manager.step(id).unwrap() {
                        Step::Done(outcome) => break outcome,
                        Step::AwaitFeedback(round) => {
                            manager.answer(id, oracle.choose(&round).unwrap()).unwrap()
                        }
                    }
                }
            };
            // Alternate single steps first to prove interleaving is safe.
            let _ = manager.step(a).unwrap();
            let _ = manager.step(b).unwrap();
            (drive(a, &t1), drive(b, &t2))
        };
        assert_eq!(o1.query.label, t1.label);
        assert_eq!(o2.query.label, t2.label);
    }
}
