//! Hosting many concurrent QFE sessions behind opaque handles.
//!
//! [`SessionManager`] owns a set of [`QfeEngine`]s keyed by [`SessionId`]
//! and exposes the engine operations — step, answer, reject, snapshot —
//! through the handle. It is the embedding point for a server frontend: a
//! request handler resolves the session id, steps or answers, and returns;
//! no thread ever blocks waiting for a user.
//!
//! Concurrency: the manager is `Sync`. The session table is behind a
//! read-write lock held only for lookup, and each engine has its own mutex,
//! so sessions progress independently — stepping one session (which runs
//! Algorithms 2–4) never blocks stepping another.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use crate::driver::QfeSession;
use crate::engine::{QfeEngine, SessionSnapshot, Step};
use crate::error::{QfeError, Result};

/// Opaque handle to a session hosted by a [`SessionManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw numeric id (for logging and wire protocols).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

type SharedEngine = Arc<Mutex<QfeEngine>>;

/// Hosts many concurrent [`QfeEngine`]s behind [`SessionId`] handles.
#[derive(Debug, Default)]
pub struct SessionManager {
    sessions: RwLock<HashMap<SessionId, SharedEngine>>,
    next_id: AtomicU64,
}

impl SessionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Starts hosting a new session built from the given configured session.
    pub fn create(&self, session: &QfeSession) -> SessionId {
        self.adopt(session.start())
    }

    /// Starts hosting an existing engine (e.g. one resumed from a snapshot).
    pub fn adopt(&self, engine: QfeEngine) -> SessionId {
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.sessions
            .write()
            .expect("session table lock poisoned")
            .insert(id, Arc::new(Mutex::new(engine)));
        id
    }

    /// Restores a session from a snapshot and starts hosting it.
    pub fn restore(&self, snapshot: SessionSnapshot) -> Result<SessionId> {
        Ok(self.adopt(QfeEngine::resume(snapshot)?))
    }

    fn engine(&self, id: SessionId) -> Result<SharedEngine> {
        self.sessions
            .read()
            .expect("session table lock poisoned")
            .get(&id)
            .cloned()
            .ok_or(QfeError::UnknownSession { id: id.0 })
    }

    /// Advances a session: [`QfeEngine::step`] through the handle.
    pub fn step(&self, id: SessionId) -> Result<Step> {
        self.engine(id)?
            .lock()
            .expect("engine lock poisoned")
            .step()
    }

    /// Answers a session's pending round: [`QfeEngine::answer`].
    pub fn answer(&self, id: SessionId, choice_idx: usize) -> Result<()> {
        self.engine(id)?
            .lock()
            .expect("engine lock poisoned")
            .answer(choice_idx)
    }

    /// [`QfeEngine::answer_timed`] through the handle.
    pub fn answer_timed(
        &self,
        id: SessionId,
        choice_idx: usize,
        user_time: Duration,
    ) -> Result<()> {
        self.engine(id)?
            .lock()
            .expect("engine lock poisoned")
            .answer_timed(choice_idx, user_time)
    }

    /// Reports "none of these" for a session's pending round:
    /// [`QfeEngine::reject`].
    pub fn reject(&self, id: SessionId) -> Result<()> {
        self.engine(id)?
            .lock()
            .expect("engine lock poisoned")
            .reject()
    }

    /// Externalizes a session's state: [`QfeEngine::snapshot`]. The session
    /// keeps running; pair with [`SessionManager::evict`] to migrate it away.
    pub fn snapshot(&self, id: SessionId) -> Result<SessionSnapshot> {
        Ok(self
            .engine(id)?
            .lock()
            .expect("engine lock poisoned")
            .snapshot())
    }

    /// Stops hosting a session. Returns `false` when the id was unknown
    /// (evicting twice is not an error).
    pub fn evict(&self, id: SessionId) -> bool {
        self.sessions
            .write()
            .expect("session table lock poisoned")
            .remove(&id)
            .is_some()
    }

    /// True when the id is currently hosted.
    pub fn contains(&self, id: SessionId) -> bool {
        self.sessions
            .read()
            .expect("session table lock poisoned")
            .contains_key(&id)
    }

    /// Number of hosted sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .read()
            .expect("session table lock poisoned")
            .len()
    }

    /// True when no sessions are hosted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ids of all hosted sessions, in ascending order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .sessions
            .read()
            .expect("session table lock poisoned")
            .keys()
            .copied()
            .collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Step;
    use crate::feedback::{FeedbackUser, OracleUser};
    use qfe_datasets::example_1_1;
    use qfe_query::SpjQuery;

    fn session_for(target_idx: usize) -> (QfeSession, SpjQuery) {
        let (db, result, candidates, _) = example_1_1();
        let target = candidates[target_idx].clone();
        let session = QfeSession::builder(db, result)
            .with_candidates(candidates)
            .build()
            .unwrap();
        (session, target)
    }

    #[test]
    fn create_step_answer_evict_lifecycle() {
        let manager = SessionManager::new();
        assert!(manager.is_empty());
        let (session, target) = session_for(1);
        let id = manager.create(&session);
        assert!(manager.contains(id));
        assert_eq!(manager.len(), 1);
        assert_eq!(manager.session_ids(), vec![id]);
        assert_eq!(id.to_string(), format!("session-{}", id.as_u64()));

        let oracle = OracleUser::new(target.clone());
        let outcome = loop {
            match manager.step(id).unwrap() {
                Step::Done(outcome) => break outcome,
                Step::AwaitFeedback(round) => {
                    manager.answer(id, oracle.choose(&round).unwrap()).unwrap();
                }
            }
        };
        assert_eq!(outcome.query.label, target.label);
        assert!(manager.evict(id));
        assert!(!manager.evict(id));
        assert!(matches!(
            manager.step(id),
            Err(QfeError::UnknownSession { .. })
        ));
    }

    #[test]
    fn snapshot_restore_continues_under_a_new_id() {
        let manager = SessionManager::new();
        let (session, target) = session_for(2);
        let id = manager.create(&session);
        // Generate a round, snapshot mid-round, evict the original.
        let round = match manager.step(id).unwrap() {
            Step::AwaitFeedback(round) => round,
            Step::Done(_) => panic!("three candidates cannot finish immediately"),
        };
        let snapshot = manager.snapshot(id).unwrap();
        assert!(manager.evict(id));

        let restored = manager.restore(snapshot).unwrap();
        assert_ne!(restored, id);
        let oracle = OracleUser::new(target.clone());
        // The restored session re-presents the cached round.
        let outcome = loop {
            match manager.step(restored).unwrap() {
                Step::Done(outcome) => break outcome,
                Step::AwaitFeedback(r) => {
                    if r.iteration == round.iteration {
                        assert_eq!(r, round, "cached round must be re-presented");
                    }
                    manager
                        .answer(restored, oracle.choose(&r).unwrap())
                        .unwrap();
                }
            }
        };
        assert_eq!(outcome.query.label, target.label);
    }

    #[test]
    fn unknown_ids_are_reported() {
        let manager = SessionManager::new();
        let ghost = SessionId(999);
        assert!(!manager.contains(ghost));
        assert!(matches!(
            manager.answer(ghost, 0),
            Err(QfeError::UnknownSession { id: 999 })
        ));
        assert!(matches!(
            manager.snapshot(ghost),
            Err(QfeError::UnknownSession { .. })
        ));
        assert!(matches!(
            manager.reject(ghost),
            Err(QfeError::UnknownSession { .. })
        ));
        assert!(matches!(
            manager.answer_timed(ghost, 0, Duration::ZERO),
            Err(QfeError::UnknownSession { .. })
        ));
    }

    #[test]
    fn sessions_are_isolated() {
        let manager = SessionManager::new();
        let (s1, t1) = session_for(1);
        let (s2, t2) = session_for(2);
        let a = manager.create(&s1);
        let b = manager.create(&s2);
        // Interleave the two sessions round by round.
        let (o1, o2) = {
            let drive = |id, target: &SpjQuery| {
                let oracle = OracleUser::new(target.clone());
                loop {
                    match manager.step(id).unwrap() {
                        Step::Done(outcome) => break outcome,
                        Step::AwaitFeedback(round) => {
                            manager.answer(id, oracle.choose(&round).unwrap()).unwrap()
                        }
                    }
                }
            };
            // Alternate single steps first to prove interleaving is safe.
            let _ = manager.step(a).unwrap();
            let _ = manager.step(b).unwrap();
            (drive(a, &t1), drive(b, &t2))
        };
        assert_eq!(o1.query.label, t1.label);
        assert_eq!(o2.query.label, t2.label);
    }
}
