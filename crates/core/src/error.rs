//! Error type for the QFE core.

use std::fmt;

use qfe_qbo::QboError;
use qfe_query::QueryError;
use qfe_relation::RelationError;

/// Errors raised while running QFE.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum QfeError {
    /// The relational substrate reported an error.
    Relation(RelationError),
    /// Query evaluation reported an error.
    Query(QueryError),
    /// Candidate-query generation reported an error.
    Qbo(QboError),
    /// The candidate set is empty.
    NoCandidates,
    /// The remaining candidate queries cannot be distinguished by any valid
    /// database modification (they are equivalent over every database the
    /// generator can reach). The surviving queries are reported.
    NoDistinguishingDatabase { remaining: Vec<String> },
    /// The user reported that none of the presented results matches the
    /// intended query: the target query is not in the candidate set.
    TargetNotInCandidates,
    /// Candidate queries use different join schemas; run QFE per join group
    /// (Section 6.2) or enable the grouped driver.
    MixedJoinSchemas,
    /// An internal invariant was violated (a bug in the caller or in QFE).
    Internal { message: String },
}

impl fmt::Display for QfeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QfeError::Relation(e) => write!(f, "{e}"),
            QfeError::Query(e) => write!(f, "{e}"),
            QfeError::Qbo(e) => write!(f, "{e}"),
            QfeError::NoCandidates => write!(f, "the candidate query set is empty"),
            QfeError::NoDistinguishingDatabase { remaining } => write!(
                f,
                "no valid database modification distinguishes the {} remaining candidate queries",
                remaining.len()
            ),
            QfeError::TargetNotInCandidates => write!(
                f,
                "none of the presented results matches the target query; it is not in the candidate set"
            ),
            QfeError::MixedJoinSchemas => write!(
                f,
                "candidate queries use different join schemas; use the grouped driver (Section 6.2)"
            ),
            QfeError::Internal { message } => write!(f, "internal QFE error: {message}"),
        }
    }
}

impl std::error::Error for QfeError {}

impl From<RelationError> for QfeError {
    fn from(e: RelationError) -> Self {
        QfeError::Relation(e)
    }
}

impl From<QueryError> for QfeError {
    fn from(e: QueryError) -> Self {
        QfeError::Query(e)
    }
}

impl From<QboError> for QfeError {
    fn from(e: QboError) -> Self {
        QfeError::Qbo(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, QfeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(QfeError::NoCandidates.to_string().contains("empty"));
        assert!(QfeError::TargetNotInCandidates
            .to_string()
            .contains("not in the candidate set"));
        assert!(QfeError::MixedJoinSchemas.to_string().contains("join schemas"));
        let e = QfeError::NoDistinguishingDatabase {
            remaining: vec!["Q1".into(), "Q2".into()],
        };
        assert!(e.to_string().contains("2 remaining"));
        let e = QfeError::Internal {
            message: "oops".into(),
        };
        assert!(e.to_string().contains("oops"));
    }

    #[test]
    fn conversions() {
        let e: QfeError = RelationError::UnknownTable { table: "T".into() }.into();
        assert!(matches!(e, QfeError::Relation(_)));
        let e: QfeError = QueryError::NoTables.into();
        assert!(matches!(e, QfeError::Query(_)));
        let e: QfeError = QboError::EmptyResult.into();
        assert!(matches!(e, QfeError::Qbo(_)));
    }
}
