//! Error type for the QFE core.

use std::fmt;

use qfe_qbo::QboError;
use qfe_query::QueryError;
use qfe_relation::RelationError;

/// Errors raised while running QFE.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum QfeError {
    /// The relational substrate reported an error.
    Relation(RelationError),
    /// Query evaluation reported an error.
    Query(QueryError),
    /// Candidate-query generation reported an error.
    Qbo(QboError),
    /// The candidate set is empty.
    NoCandidates,
    /// The remaining candidate queries cannot be distinguished by any valid
    /// database modification (they are equivalent over every database the
    /// generator can reach). The surviving queries are reported.
    NoDistinguishingDatabase { remaining: Vec<String> },
    /// The user reported that none of the presented results matches the
    /// intended query: the target query is not in the candidate set.
    TargetNotInCandidates,
    /// Candidate queries use different join schemas; run QFE per join group
    /// (Section 6.2) or enable the grouped driver.
    MixedJoinSchemas,
    /// The feedback loop exceeded its iteration safety cap without narrowing
    /// the candidates to one query.
    IterationLimitExceeded { limit: usize },
    /// The caller answered a feedback round with a choice index outside the
    /// presented results.
    InvalidChoice { chosen: usize, available: usize },
    /// `answer` / `reject` was called while no feedback round was pending
    /// (the engine was never stepped, or the round was already answered).
    NoPendingRound,
    /// A session manager operation referenced a session id that is not (or no
    /// longer) hosted.
    UnknownSession { id: u64 },
    /// A session snapshot could not be serialized or deserialized.
    Snapshot { message: String },
    /// A snapshot store operation failed (I/O error, corrupt record, missing
    /// content-addressed workload). `context` names the operation and key so
    /// an operator can locate the damage; the failure surfaces to the caller
    /// instead of panicking inside the session manager.
    Store { context: String, message: String },
    /// An HTTP request or response could not be parsed or transported.
    /// `context` names the endpoint or protocol stage.
    Http { context: String, message: String },
    /// An internal invariant was violated (a bug in the caller or in QFE).
    Internal { message: String },
}

impl fmt::Display for QfeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QfeError::Relation(e) => write!(f, "{e}"),
            QfeError::Query(e) => write!(f, "{e}"),
            QfeError::Qbo(e) => write!(f, "{e}"),
            QfeError::NoCandidates => write!(f, "the candidate query set is empty"),
            QfeError::NoDistinguishingDatabase { remaining } => write!(
                f,
                "no valid database modification distinguishes the {} remaining candidate queries",
                remaining.len()
            ),
            QfeError::TargetNotInCandidates => write!(
                f,
                "none of the presented results matches the target query; it is not in the candidate set"
            ),
            QfeError::MixedJoinSchemas => write!(
                f,
                "candidate queries use different join schemas; use the grouped driver (Section 6.2)"
            ),
            QfeError::IterationLimitExceeded { limit } => write!(
                f,
                "exceeded the maximum of {limit} feedback iterations"
            ),
            QfeError::InvalidChoice { chosen, available } => write!(
                f,
                "choice {chosen} is out of range: the round presents {available} results"
            ),
            QfeError::NoPendingRound => write!(
                f,
                "no feedback round is pending; step the engine before answering"
            ),
            QfeError::UnknownSession { id } => write!(f, "unknown session id {id}"),
            QfeError::Snapshot { message } => write!(f, "session snapshot error: {message}"),
            QfeError::Store { context, message } => {
                write!(f, "snapshot store error ({context}): {message}")
            }
            QfeError::Http { context, message } => {
                write!(f, "http error ({context}): {message}")
            }
            QfeError::Internal { message } => write!(f, "internal QFE error: {message}"),
        }
    }
}

impl std::error::Error for QfeError {}

impl From<RelationError> for QfeError {
    fn from(e: RelationError) -> Self {
        QfeError::Relation(e)
    }
}

impl From<QueryError> for QfeError {
    fn from(e: QueryError) -> Self {
        QfeError::Query(e)
    }
}

impl From<QboError> for QfeError {
    fn from(e: QboError) -> Self {
        QfeError::Qbo(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, QfeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_api_error_messages() {
        let e = QfeError::IterationLimitExceeded { limit: 64 };
        assert!(e.to_string().contains("64"));
        let e = QfeError::InvalidChoice {
            chosen: 5,
            available: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
        assert!(QfeError::NoPendingRound.to_string().contains("pending"));
        assert!(QfeError::UnknownSession { id: 9 }.to_string().contains('9'));
        let e = QfeError::Snapshot {
            message: "bad json".into(),
        };
        assert!(e.to_string().contains("bad json"));
        let e = QfeError::Store {
            context: "get_session s7".into(),
            message: "record truncated".into(),
        };
        assert!(e.to_string().contains("get_session s7"));
        assert!(e.to_string().contains("record truncated"));
        let e = QfeError::Http {
            context: "POST /sessions".into(),
            message: "connection reset".into(),
        };
        assert!(e.to_string().contains("POST /sessions"));
        assert!(e.to_string().contains("connection reset"));
    }

    #[test]
    fn display_messages() {
        assert!(QfeError::NoCandidates.to_string().contains("empty"));
        assert!(QfeError::TargetNotInCandidates
            .to_string()
            .contains("not in the candidate set"));
        assert!(QfeError::MixedJoinSchemas
            .to_string()
            .contains("join schemas"));
        let e = QfeError::NoDistinguishingDatabase {
            remaining: vec!["Q1".into(), "Q2".into()],
        };
        assert!(e.to_string().contains("2 remaining"));
        let e = QfeError::Internal {
            message: "oops".into(),
        };
        assert!(e.to_string().contains("oops"));
    }

    #[test]
    fn conversions() {
        let e: QfeError = RelationError::UnknownTable { table: "T".into() }.into();
        assert!(matches!(e, QfeError::Relation(_)));
        let e: QfeError = QueryError::NoTables.into();
        assert!(matches!(e, QfeError::Query(_)));
        let e: QfeError = QboError::EmptyResult.into();
        assert!(matches!(e, QfeError::Qbo(_)));
    }
}
