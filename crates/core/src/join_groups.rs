//! Candidate queries with different join schemas (Section 6.2).
//!
//! The core database generator assumes all candidates share one join schema.
//! When they do not, the paper's simplest strategy is divide and conquer:
//! partition the candidates into groups by join schema, process the groups in
//! non-ascending size order (the target is more likely to be in a larger
//! group), and stop as soon as the target query is identified in some group.

use std::collections::BTreeMap;

use qfe_query::{QueryResult, SpjQuery};
use qfe_relation::Database;

use crate::cost::CostParams;
use crate::driver::{QfeOutcome, QfeSession};
use crate::error::{QfeError, Result};
use crate::feedback::FeedbackUser;

/// Partitions candidate queries by their join signature, largest group first.
pub fn group_by_join_schema(queries: &[SpjQuery]) -> Vec<Vec<SpjQuery>> {
    let mut groups: BTreeMap<Vec<String>, Vec<SpjQuery>> = BTreeMap::new();
    for q in queries {
        groups
            .entry(q.join_signature())
            .or_default()
            .push(q.clone());
    }
    let mut groups: Vec<Vec<SpjQuery>> = groups.into_values().collect();
    groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
    groups
}

/// Runs QFE over a candidate set whose queries may use different join
/// schemas, processing one join group at a time (Section 6.2).
///
/// Groups are tried in non-ascending size order. A group is abandoned when
/// the user reports that none of the presented results is correct
/// ([`QfeError::TargetNotInCandidates`]) or when its queries cannot be
/// distinguished; the next group is then tried. Singleton groups are only
/// accepted once every multi-query group has been ruled out (there is no
/// feedback that could confirm them earlier).
pub fn run_grouped(
    database: &Database,
    result: &QueryResult,
    candidates: &[SpjQuery],
    params: &CostParams,
    user: &dyn FeedbackUser,
) -> Result<QfeOutcome> {
    if candidates.is_empty() {
        return Err(QfeError::NoCandidates);
    }
    let groups = group_by_join_schema(candidates);
    let mut singletons: Vec<SpjQuery> = Vec::new();
    let mut last_error = QfeError::TargetNotInCandidates;

    for group in &groups {
        if group.len() == 1 {
            singletons.push(group[0].clone());
            continue;
        }
        let session = QfeSession::builder(database.clone(), result.clone())
            .with_candidates(group.clone())
            .with_params(params.clone())
            .build()?;
        match session.run(user) {
            Ok(outcome) => return Ok(outcome),
            Err(e @ QfeError::TargetNotInCandidates)
            | Err(e @ QfeError::NoDistinguishingDatabase { .. }) => {
                last_error = e;
            }
            Err(other) => return Err(other),
        }
    }

    // All multi-query groups ruled out: if exactly one singleton remains it is
    // the only viable explanation; otherwise report failure.
    if singletons.len() == 1 {
        let session = QfeSession::builder(database.clone(), result.clone())
            .with_candidates(singletons)
            .with_params(params.clone())
            .build()?;
        return session.run(user);
    }
    Err(last_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::OracleUser;
    use qfe_query::{evaluate, ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, ForeignKey, Table, TableSchema};

    /// Dept(did, dname) ⋈ Emp(eid, did, level, bonus): candidates over either
    /// Emp alone or Dept ⋈ Emp.
    fn two_schema_db() -> Database {
        let dept = Table::with_rows(
            TableSchema::new(
                "Dept",
                vec![
                    ColumnDef::new("did", DataType::Int),
                    ColumnDef::new("dname", DataType::Text),
                ],
            )
            .unwrap()
            .with_primary_key(&["did"])
            .unwrap(),
            vec![tuple![1i64, "IT"], tuple![2i64, "Sales"]],
        )
        .unwrap();
        let emp = Table::with_rows(
            TableSchema::new(
                "Emp",
                vec![
                    ColumnDef::new("eid", DataType::Int),
                    ColumnDef::new("did", DataType::Int),
                    ColumnDef::new("level", DataType::Int),
                    ColumnDef::new("bonus", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["eid"])
            .unwrap(),
            vec![
                tuple![10i64, 1i64, 3i64, 100i64],
                tuple![11i64, 1i64, 4i64, 250i64],
                tuple![12i64, 2i64, 5i64, 50i64],
                tuple![13i64, 2i64, 6i64, 75i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(dept).unwrap();
        db.add_table(emp).unwrap();
        db.add_foreign_key(ForeignKey::new("Emp", "did", "Dept", "did"))
            .unwrap();
        db
    }

    fn mixed_candidates() -> Vec<SpjQuery> {
        vec![
            // Single-table group (2 queries): eid of employees with high bonus
            // vs high level.
            SpjQuery::new(
                vec!["Emp"],
                vec!["eid"],
                DnfPredicate::single(Term::compare("bonus", ComparisonOp::Ge, 100i64)),
            )
            .with_label("E1"),
            SpjQuery::new(
                vec!["Emp"],
                vec!["eid"],
                DnfPredicate::single(Term::compare("level", ComparisonOp::Le, 4i64)),
            )
            .with_label("E2"),
            // Two-table group (2 queries): eid of IT employees vs eid of
            // employees in department 1.
            SpjQuery::new(
                vec!["Dept", "Emp"],
                vec!["eid"],
                DnfPredicate::single(Term::eq("dname", "IT")),
            )
            .with_label("J1"),
            SpjQuery::new(
                vec!["Dept", "Emp"],
                vec!["eid"],
                DnfPredicate::single(Term::compare("Dept.did", ComparisonOp::Le, 1i64)),
            )
            .with_label("J2"),
        ]
    }

    #[test]
    fn grouping_is_by_join_signature_largest_first() {
        let mut queries = mixed_candidates();
        queries.push(
            SpjQuery::new(vec!["Emp"], vec!["eid"], DnfPredicate::always_true()).with_label("E3"),
        );
        let groups = group_by_join_schema(&queries);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 3); // the Emp-only group is larger
        assert_eq!(groups[1].len(), 2);
    }

    #[test]
    fn queries_used_for_this_test_agree_on_the_original_database() {
        let db = two_schema_db();
        let candidates = mixed_candidates();
        let r0 = evaluate(&candidates[0], &db).unwrap();
        for q in &candidates {
            assert!(
                evaluate(q, &db).unwrap().bag_equal(&r0),
                "candidate {q} must reproduce the example result"
            );
        }
    }

    #[test]
    fn grouped_driver_finds_targets_in_either_group() {
        let db = two_schema_db();
        let candidates = mixed_candidates();
        let result = evaluate(&candidates[0], &db).unwrap();
        for target in &candidates {
            let outcome = run_grouped(
                &db,
                &result,
                &candidates,
                &CostParams::default(),
                &OracleUser::new(target.clone()),
            );
            match outcome {
                Ok(outcome) => {
                    // Whatever query is identified must be consistent with
                    // every piece of feedback, and in particular reproduce the
                    // original example result.
                    assert!(
                        evaluate(&outcome.query, &db).unwrap().bag_equal(&result),
                        "identified query must reproduce R"
                    );
                    // Targets in the first-processed (two-table) group are
                    // pinned down exactly; a target in a later group may be
                    // answered by an earlier query that the feedback could not
                    // tell apart from it.
                    if target.tables.len() == 2 {
                        assert_eq!(outcome.query.label, target.label);
                    }
                }
                Err(QfeError::TargetNotInCandidates)
                | Err(QfeError::NoDistinguishingDatabase { .. }) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
    }

    #[test]
    fn empty_candidates_rejected() {
        let db = two_schema_db();
        let result = QueryResult::empty(vec!["eid".to_string()]);
        assert!(matches!(
            run_grouped(
                &db,
                &result,
                &[],
                &CostParams::default(),
                &crate::feedback::WorstCaseUser
            ),
            Err(QfeError::NoCandidates)
        ));
    }
}
