//! The Result Feedback module: presenting choices and collecting the user's
//! selection.
//!
//! At each iteration the user is shown the modified database `D'` (as its
//! difference `Δ(D, D')` from the original) and the candidate results
//! `R_1, …, R_k` (as differences `Δ(R, R_i)`), and picks the result their
//! intended query would produce on `D'`.  [`FeedbackUser`] abstracts over who
//! answers: the paper's experiments automate it with a *worst-case* responder
//! (always keep the largest candidate subset) and an *oracle* responder
//! (always keep the subset containing the target query); the user study uses
//! humans, which we model with a response-time model on top of the oracle.

use std::time::Duration;

use qfe_query::{evaluate, QueryResult, SpjQuery};
use qfe_relation::Database;

use crate::delta::{DatabaseDelta, ResultDelta};

/// One selectable result in a feedback round.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackChoice {
    /// The candidate result `R_i` on the modified database.
    pub result: QueryResult,
    /// Its difference from the original result `R`.
    pub result_delta: ResultDelta,
    /// How many candidate queries produce this result.
    pub candidate_count: usize,
    /// Indices (into the current candidate list) of those queries.
    pub query_indices: Vec<usize>,
}

/// Everything shown to the user in one feedback round.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackRound {
    /// 1-based iteration number.
    pub iteration: usize,
    /// The modified database `D'`.
    pub database: Database,
    /// Its difference from the original database `D`.
    pub database_delta: DatabaseDelta,
    /// The candidate results, in presentation order.
    pub choices: Vec<FeedbackChoice>,
}

impl FeedbackRound {
    /// Number of presented results `k`.
    pub fn choice_count(&self) -> usize {
        self.choices.len()
    }
}

/// A source of feedback: given a round, returns the index of the correct
/// result, or `None` when none of the presented results matches the intended
/// query (meaning the target query is not among the candidates).
pub trait FeedbackUser {
    /// Chooses a result.
    fn choose(&self, round: &FeedbackRound) -> Option<usize>;

    /// The (simulated or measured) time the user needed to answer. The
    /// default is zero; [`SimulatedHumanUser`] overrides it with a model of
    /// reading effort.
    fn response_time(&self, _round: &FeedbackRound, _choice: Option<usize>) -> Duration {
        Duration::ZERO
    }
}

/// The paper's worst-case automated responder: always keeps the largest
/// candidate subset, maximizing the number of remaining iterations
/// (Section 7: "by always choosing the largest query subset (to examine
/// worst-case behavior)").
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstCaseUser;

impl FeedbackUser for WorstCaseUser {
    fn choose(&self, round: &FeedbackRound) -> Option<usize> {
        round
            .choices
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (c.candidate_count, std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
    }
}

/// The oracle responder: knows the target query and always picks the result
/// that query produces on the presented database (the paper's "automated
/// result feedback that always chooses the query subset that contains the
/// target query").
#[derive(Debug, Clone)]
pub struct OracleUser {
    target: SpjQuery,
}

impl OracleUser {
    /// Creates an oracle for the given target query.
    pub fn new(target: SpjQuery) -> Self {
        OracleUser { target }
    }

    /// The oracle's target query.
    pub fn target(&self) -> &SpjQuery {
        &self.target
    }
}

impl FeedbackUser for OracleUser {
    fn choose(&self, round: &FeedbackRound) -> Option<usize> {
        let target_result = evaluate(&self.target, &round.database).ok()?;
        round
            .choices
            .iter()
            .position(|c| c.result.bag_equal(&target_result))
    }
}

/// A responder driven by a caller-provided closure — the hook for wiring QFE
/// into an actual interactive front end.
pub struct InteractiveUser {
    chooser: Box<Chooser>,
}

/// The boxed decision procedure behind an [`InteractiveUser`].
type Chooser = dyn Fn(&FeedbackRound) -> Option<usize> + Send + Sync;

impl InteractiveUser {
    /// Creates a responder from a closure.
    pub fn new(chooser: impl Fn(&FeedbackRound) -> Option<usize> + Send + Sync + 'static) -> Self {
        InteractiveUser {
            chooser: Box::new(chooser),
        }
    }
}

impl FeedbackUser for InteractiveUser {
    fn choose(&self, round: &FeedbackRound) -> Option<usize> {
        (self.chooser)(round)
    }
}

impl std::fmt::Debug for InteractiveUser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InteractiveUser").finish_non_exhaustive()
    }
}

/// A simulated human: answers like the oracle but takes time proportional to
/// the amount of presented change, mirroring the paper's user-study
/// observation that response time dominates total time and grows with the
/// modification cost (longest observed answer 85 s, shortest 2 s).
#[derive(Debug, Clone)]
pub struct SimulatedHumanUser {
    oracle: OracleUser,
    /// Fixed reading overhead per round.
    pub base_time: Duration,
    /// Additional time per unit of presented modification cost (database edit
    /// cost plus the result-delta cost of every presented choice).
    pub time_per_cost_unit: Duration,
}

impl SimulatedHumanUser {
    /// Creates a simulated human with the given response-time model.
    pub fn new(target: SpjQuery, base_time: Duration, time_per_cost_unit: Duration) -> Self {
        SimulatedHumanUser {
            oracle: OracleUser::new(target),
            base_time,
            time_per_cost_unit,
        }
    }

    /// A model calibrated against the paper's user study: 2 s of fixed
    /// overhead plus 6 s per presented modification, which reproduces the
    /// observed 2–85 s response-time range for the observed 3–5 cost range
    /// (plus larger rounds).
    pub fn paper_calibrated(target: SpjQuery) -> Self {
        SimulatedHumanUser::new(target, Duration::from_secs(2), Duration::from_secs(6))
    }

    /// The total presented modification cost of a round.
    pub fn presented_cost(round: &FeedbackRound) -> usize {
        let db_cost = round.database_delta.len();
        let result_cost: usize = round
            .choices
            .iter()
            .map(|c| c.result_delta.removed.len() + c.result_delta.added.len())
            .sum();
        db_cost + result_cost
    }
}

impl FeedbackUser for SimulatedHumanUser {
    fn choose(&self, round: &FeedbackRound) -> Option<usize> {
        self.oracle.choose(round)
    }

    fn response_time(&self, round: &FeedbackRound, _choice: Option<usize>) -> Duration {
        self.base_time + self.time_per_cost_unit * Self::presented_cost(round) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::{ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, Table, TableSchema, Tuple, Value};

    fn employee_db() -> Database {
        let t = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 3900i64], // D1 of Example 1.1
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(t).unwrap();
        db
    }

    fn round() -> FeedbackRound {
        // Choices mirroring D1 of Example 1.1: R1 = {Bob, Darren} (Q1, Q3),
        // R2 = {Darren} (Q2).
        let r1 = QueryResult::new(
            vec!["name".to_string()],
            vec![tuple!["Bob"], tuple!["Darren"]],
        );
        let r2 = QueryResult::new(vec!["name".to_string()], vec![tuple!["Darren"]]);
        let original = r1.clone();
        FeedbackRound {
            iteration: 1,
            database: employee_db(),
            database_delta: DatabaseDelta {
                edits: vec![qfe_relation::EditOp::ModifyCell {
                    table: "Employee".into(),
                    row: 1,
                    column: "salary".into(),
                    old: Value::Int(4200),
                    new: Value::Int(3900),
                }],
            },
            choices: vec![
                FeedbackChoice {
                    result: r1.clone(),
                    result_delta: ResultDelta::between(&original, &r1),
                    candidate_count: 2,
                    query_indices: vec![0, 2],
                },
                FeedbackChoice {
                    result: r2.clone(),
                    result_delta: ResultDelta::between(&original, &r2),
                    candidate_count: 1,
                    query_indices: vec![1],
                },
            ],
        }
    }

    #[test]
    fn worst_case_user_keeps_largest_subset() {
        let r = round();
        assert_eq!(r.choice_count(), 2);
        assert_eq!(WorstCaseUser.choose(&r), Some(0));
        assert_eq!(WorstCaseUser.response_time(&r, Some(0)), Duration::ZERO);
    }

    #[test]
    fn oracle_user_follows_its_target() {
        let r = round();
        // Target Q2 (salary > 4000) returns {Darren} on D1 -> choice 1.
        let q2 = SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::single(Term::compare("salary", ComparisonOp::Gt, 4000i64)),
        );
        let oracle = OracleUser::new(q2.clone());
        assert_eq!(oracle.choose(&r), Some(1));
        assert_eq!(oracle.target(), &q2);
        // Target Q1 (gender = M) returns {Bob, Darren} -> choice 0.
        let q1 = SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::single(Term::eq("gender", "M")),
        );
        assert_eq!(OracleUser::new(q1).choose(&r), Some(0));
        // A target whose result matches no presented choice yields None.
        let alien = SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::single(Term::eq("name", "Celina")),
        );
        assert_eq!(OracleUser::new(alien).choose(&r), None);
    }

    #[test]
    fn interactive_user_delegates_to_closure() {
        let r = round();
        let user = InteractiveUser::new(|round: &FeedbackRound| {
            // Pick the choice with the fewest result rows.
            round
                .choices
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.result.len())
                .map(|(i, _)| i)
        });
        assert_eq!(user.choose(&r), Some(1));
        assert!(format!("{user:?}").contains("InteractiveUser"));
    }

    #[test]
    fn simulated_human_takes_time_proportional_to_presented_change() {
        let r = round();
        let q2 = SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::single(Term::compare("salary", ComparisonOp::Gt, 4000i64)),
        );
        let user =
            SimulatedHumanUser::new(q2.clone(), Duration::from_secs(2), Duration::from_secs(6));
        assert_eq!(user.choose(&r), Some(1));
        // Presented cost: 1 db edit + 0 delta rows (choice 0) + 1 delta row
        // (choice 1) = 2 -> 2 + 2*6 = 14 seconds.
        assert_eq!(SimulatedHumanUser::presented_cost(&r), 2);
        assert_eq!(user.response_time(&r, Some(1)), Duration::from_secs(14));
        let calibrated = SimulatedHumanUser::paper_calibrated(q2);
        assert!(calibrated.response_time(&r, Some(1)) >= Duration::from_secs(2));
    }

    #[test]
    fn result_delta_inside_choice_reports_removed_row() {
        let r = round();
        assert!(r.choices[0].result_delta.is_empty());
        assert_eq!(
            r.choices[1].result_delta.removed,
            vec![Tuple::new(vec![Value::Text("Bob".into())])]
        );
    }
}
