//! Dense bit-packed kernel for class-level outcome reasoning.
//!
//! The skyline enumeration (Algorithm 3) and the subset search (Algorithm 4)
//! ask the same two questions millions of times per round: *does a tuple of
//! class `X` satisfy candidate `Q_i`?* and *how does a (source, destination)
//! class pair partition the candidates?*  Answering them through hash-map
//! caches and per-class `Vec<bool>` rows makes the generator pointer-bound.
//!
//! [`OutcomeKernel`] replaces that with dense bit-parallel state prepared once
//! per [`GenerationContext`](crate::GenerationContext):
//!
//! * every tuple class gets a **mixed-radix interned id** (`Σ blockᵢ·strideᵢ`)
//!   — no hashing, no allocation;
//! * each candidate's DNF conjuncts get one bit in a **conjunct bitmap**, and
//!   for every `(attribute, block)` the kernel precomputes which conjuncts the
//!   block satisfies; a class's candidate-match bitset is then an AND over its
//!   attributes followed by a mask fold (the fold is the identity when every
//!   candidate is a single conjunct — the common case);
//! * when the class space is small enough the kernel additionally
//!   materializes the **full per-class match table**, making `class_matches`
//!   a single bit probe;
//! * a per-attribute **projection-touch mask** answers "did this modification
//!   change a projected column?" without consulting the column sets.
//!
//! Everything is immutable after construction, so the kernel — and with it
//! the whole `GenerationContext` — is `Sync` and can be shared across the
//! skyline worker threads without locks.

use std::collections::BTreeSet;

use qfe_query::SpjQuery;
use qfe_relation::JoinedRelation;

use crate::error::{QfeError, Result};
use crate::tuple_class::{SelectionAttribute, TupleClassSpace};

/// Upper bound on the number of interned classes for which the full per-class
/// match table is materialized. Beyond it the kernel falls back to the
/// factorized (attribute-wise AND) computation, which needs no table.
const MAX_TABLE_CLASSES: usize = 1 << 16;

/// Number of `u64` words needed for `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Reusable scratch buffers for match-bitset computation. One per thread;
/// obtained from [`OutcomeKernel::scratch`].
#[derive(Debug, Clone)]
pub(crate) struct MatchScratch {
    conj: Vec<u64>,
    query: Vec<u64>,
}

/// The partitioning a single (source, destination) class pair induces on the
/// candidate set, reduced to the four Lemma 5.1 outcome counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PairStats {
    /// Queries per outcome, in canonical `[Unchanged, Added, Removed,
    /// Replaced]` order (zero entries mean the outcome does not occur).
    pub counts: [usize; 4],
}

impl PairStats {
    /// Number of non-empty query subsets.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn group_count(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The non-empty subset sizes in canonical order.
    pub fn sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.counts.iter().copied().filter(|&c| c > 0)
    }

    /// Balance score of the induced partitioning (bitwise identical to
    /// [`crate::cost::balance_score`] over [`Self::sizes`]).
    pub fn balance(&self) -> f64 {
        let mut sizes = [0usize; 4];
        let mut k = 0;
        for c in self.sizes() {
            sizes[k] = c;
            k += 1;
        }
        crate::cost::balance_score(&sizes[..k])
    }

    /// For a binary partitioning, the size of the smaller subset (Lemma 3.1's
    /// `x`); `None` otherwise.
    pub fn binary_smaller(&self) -> Option<usize> {
        let mut nonzero = self.sizes();
        match (nonzero.next(), nonzero.next(), nonzero.next()) {
            (Some(a), Some(b), None) => Some(a.min(b)),
            _ => None,
        }
    }
}

/// How a successor context obtained its outcome kernel (reported by
/// [`GenerationContext::advance_with_report`](crate::GenerationContext::advance_with_report)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelReuse {
    /// Queries, domain blocks and projection unchanged: the previous round's
    /// kernel was cloned verbatim (conjunct bitsets, dense table and all).
    Reused,
    /// Queries unchanged and the class geometry (attribute columns, per
    /// attribute block counts) survived, but some blocks' contents changed:
    /// only the affected per-`(attribute, block)` conjunct bitsets were
    /// recomputed and only the dense-table entries of classes touching a
    /// changed block were patched in place.
    Repaired {
        /// Number of `(attribute, block)` conjunct-bitset slots recomputed.
        blocks_patched: usize,
    },
    /// The candidate set or the class geometry changed: built from scratch.
    Rebuilt,
}

/// The bit-packed class-level reasoning kernel. See the module docs.
#[derive(Debug, Clone)]
pub(crate) struct OutcomeKernel {
    query_count: usize,
    query_words: usize,
    conj_words: usize,
    /// One bit per (query, conjunct); `query_masks[q]` selects query `q`'s
    /// conjunct bits. When `single_conjunct` is true the conjunct bitmap *is*
    /// the query bitmap (bit `q` ↔ query `q`'s only conjunct).
    single_conjunct: bool,
    conj_total: usize,
    query_masks: Vec<Vec<u64>>,
    /// Per attribute: `blocks × conj_words` words; the slice for block `b`
    /// has bit `j` set when block `b` satisfies every term of conjunct `j`
    /// on this attribute.
    attr_conj_ok: Vec<Vec<u64>>,
    /// Mixed-radix strides for interning (`strides[last] == 1`).
    strides: Vec<usize>,
    block_counts: Vec<usize>,
    /// Total number of interned classes (product of block counts), when it
    /// fits in `usize`.
    class_count: Option<usize>,
    /// Dense per-class match table (`class_id × query_words`), when the class
    /// space is small enough to materialize.
    table: Option<Vec<u64>>,
    /// Per attribute position: does the attribute's join column appear in the
    /// candidates' projection?
    projection_touch: Vec<bool>,
}

impl OutcomeKernel {
    /// Builds the kernel for one context.
    pub fn build(
        space: &TupleClassSpace,
        queries: &[SpjQuery],
        join: &JoinedRelation,
        projection_columns: &BTreeSet<usize>,
    ) -> Result<OutcomeKernel> {
        let attrs = space.attributes();
        let query_count = queries.len();
        let query_words = words_for(query_count.max(1));

        // Assign one bit per (query, conjunct).
        let (conj_total, conj_ranges) = conjunct_layout(queries);
        let single_conjunct = conj_ranges.iter().all(|&(_, n)| n == 1);
        let conj_words = words_for(conj_total.max(1));
        let query_masks: Vec<Vec<u64>> = conj_ranges
            .iter()
            .map(|&(start, n)| {
                let mut mask = vec![0u64; conj_words];
                for j in start..start + n {
                    mask[j / 64] |= 1u64 << (j % 64);
                }
                mask
            })
            .collect();

        let terms_by_pos = terms_by_position(queries, &conj_ranges, join, attrs)?;

        // Per (attribute, block): which conjuncts have all their terms on the
        // attribute satisfied by the block. Term truth is constant within a
        // block by construction of the domain partition, so evaluating the
        // representative is exact.
        let attr_conj_ok: Vec<Vec<u64>> = attrs
            .iter()
            .enumerate()
            .map(|(pos, attr)| attr_conjunct_ok(attr, &terms_by_pos[pos], conj_total, conj_words))
            .collect();

        // Mixed-radix strides, last attribute fastest.
        let block_counts: Vec<usize> = attrs.iter().map(|a| a.blocks.len()).collect();
        let mut strides = vec![1usize; attrs.len()];
        let mut class_count: Option<usize> = Some(1);
        for i in (0..attrs.len()).rev() {
            strides[i] = class_count.unwrap_or_default();
            class_count = class_count.and_then(|c| c.checked_mul(block_counts[i].max(1)));
        }

        let projection_touch: Vec<bool> = attrs
            .iter()
            .map(|a| projection_columns.contains(&a.column))
            .collect();

        let mut kernel = OutcomeKernel {
            query_count,
            query_words,
            conj_words,
            single_conjunct,
            conj_total,
            query_masks,
            attr_conj_ok,
            strides,
            block_counts,
            class_count,
            table: None,
            projection_touch,
        };

        // Materialize the dense per-class match table when the class space is
        // small: every later `class_matches` becomes a single bit probe.
        if let Some(total) = kernel.class_count {
            if total <= MAX_TABLE_CLASSES {
                let mut table = vec![0u64; total * kernel.query_words];
                let mut scratch = kernel.scratch();
                let mut class = vec![0usize; kernel.block_counts.len()];
                for id in 0..total {
                    let bits = kernel.compute_match_words(&class, &mut scratch);
                    table[id * kernel.query_words..(id + 1) * kernel.query_words]
                        .copy_from_slice(bits);
                    // Odometer increment, last attribute fastest (= stride
                    // order, so `id` tracks `class_id(&class)`).
                    for pos in (0..class.len()).rev() {
                        class[pos] += 1;
                        if class[pos] < kernel.block_counts[pos] {
                            break;
                        }
                        class[pos] = 0;
                    }
                }
                kernel.table = Some(table);
            }
        }
        Ok(kernel)
    }

    /// Derives the kernel for a successor context from the previous round's.
    ///
    /// Three tiers, cheapest first: when the candidate set, attribute columns
    /// and per-attribute block counts *and contents* are all unchanged the
    /// previous kernel is cloned verbatim ([`KernelReuse::Reused`]); when only
    /// some blocks' contents changed under the same geometry, the affected
    /// per-`(attribute, block)` conjunct bitsets are recomputed and the
    /// dense-table rows of classes touching a changed block are patched in
    /// place ([`KernelReuse::Repaired`]); any structural change falls back to
    /// [`OutcomeKernel::build`] ([`KernelReuse::Rebuilt`]). Every tier
    /// produces a kernel bit-identical to a fresh build.
    pub fn advance_from(
        previous: &OutcomeKernel,
        prev_space: &TupleClassSpace,
        space: &TupleClassSpace,
        queries_unchanged: bool,
        queries: &[SpjQuery],
        join: &JoinedRelation,
        projection_columns: &BTreeSet<usize>,
    ) -> Result<(OutcomeKernel, KernelReuse)> {
        let prev_attrs = prev_space.attributes();
        let attrs = space.attributes();
        let compatible = queries_unchanged
            && prev_attrs.len() == attrs.len()
            && prev_attrs
                .iter()
                .zip(attrs)
                .all(|(p, n)| p.column == n.column && p.blocks.len() == n.blocks.len());
        if !compatible {
            return Ok((
                OutcomeKernel::build(space, queries, join, projection_columns)?,
                KernelReuse::Rebuilt,
            ));
        }

        let mut kernel = previous.clone();
        kernel.projection_touch = attrs
            .iter()
            .map(|a| projection_columns.contains(&a.column))
            .collect();

        let changed_attrs: Vec<usize> = prev_attrs
            .iter()
            .zip(attrs)
            .enumerate()
            .filter(|(_, (p, n))| p.blocks != n.blocks)
            .map(|(pos, _)| pos)
            .collect();
        if changed_attrs.is_empty() {
            return Ok((kernel, KernelReuse::Reused));
        }

        // Recompute the changed attributes' conjunct bitsets exactly as
        // `build` does and record which (attribute, block) slots actually
        // changed bits — block-content changes that leave every term's truth
        // value intact need no table patching at all.
        let (conj_total, conj_ranges) = conjunct_layout(queries);
        debug_assert_eq!(conj_total, kernel.conj_total);
        let terms_by_pos = terms_by_position(queries, &conj_ranges, join, attrs)?;
        let mut dirty: Vec<Option<Vec<bool>>> = vec![None; attrs.len()];
        let mut blocks_patched = 0usize;
        for &pos in &changed_attrs {
            let fresh = attr_conjunct_ok(
                &attrs[pos],
                &terms_by_pos[pos],
                conj_total,
                kernel.conj_words,
            );
            let cw = kernel.conj_words;
            let old = &kernel.attr_conj_ok[pos];
            let mut flags = vec![false; attrs[pos].blocks.len()];
            for (b, flag) in flags.iter_mut().enumerate() {
                if old[b * cw..(b + 1) * cw] != fresh[b * cw..(b + 1) * cw] {
                    *flag = true;
                    blocks_patched += 1;
                }
            }
            if flags.iter().any(|&f| f) {
                dirty[pos] = Some(flags);
            }
            kernel.attr_conj_ok[pos] = fresh;
        }
        if blocks_patched == 0 {
            return Ok((kernel, KernelReuse::Repaired { blocks_patched: 0 }));
        }

        // Patch only the dense-table rows of classes that touch a dirty
        // block. The table is taken out for the duration so that
        // `compute_match_words` runs the factorized path against the already
        // repaired conjunct bitsets.
        if let Some(mut table) = kernel.table.take() {
            let total = kernel
                .class_count
                .expect("dense table implies a finite class count");
            let mut scratch = kernel.scratch();
            let mut class = vec![0usize; kernel.block_counts.len()];
            for id in 0..total {
                let touched = class
                    .iter()
                    .enumerate()
                    .any(|(pos, &b)| dirty[pos].as_ref().is_some_and(|f| f[b]));
                if touched {
                    let bits = kernel.compute_match_words(&class, &mut scratch);
                    table[id * kernel.query_words..(id + 1) * kernel.query_words]
                        .copy_from_slice(bits);
                }
                for pos in (0..class.len()).rev() {
                    class[pos] += 1;
                    if class[pos] < kernel.block_counts[pos] {
                        break;
                    }
                    class[pos] = 0;
                }
            }
            kernel.table = Some(table);
        }
        Ok((kernel, KernelReuse::Repaired { blocks_patched }))
    }

    /// Whether the dense per-class table is materialized.
    #[cfg(test)]
    pub fn has_table(&self) -> bool {
        self.table.is_some()
    }

    /// Fresh scratch buffers sized for this kernel.
    pub fn scratch(&self) -> MatchScratch {
        MatchScratch {
            conj: vec![0u64; self.conj_words],
            query: vec![0u64; self.query_words],
        }
    }

    /// The interned id of a class (mixed-radix over block indices).
    #[inline]
    pub fn class_id(&self, class: &[usize]) -> usize {
        debug_assert_eq!(class.len(), self.strides.len());
        class.iter().zip(&self.strides).map(|(&b, &s)| b * s).sum()
    }

    /// Whether the modification positions touch a projected column.
    #[inline]
    pub fn projection_touched(&self, changed: &[usize]) -> bool {
        changed.iter().any(|&pos| self.projection_touch[pos])
    }

    /// The candidate-match bitset of a class: bit `q` is set iff a tuple of
    /// the class satisfies query `q`. Returns a borrow of either the dense
    /// table or the scratch buffer; no allocation either way.
    #[inline]
    pub fn match_words<'a>(&'a self, class: &[usize], scratch: &'a mut MatchScratch) -> &'a [u64] {
        if let Some(table) = &self.table {
            let id = self.class_id(class);
            return &table[id * self.query_words..(id + 1) * self.query_words];
        }
        self.compute_match_words(class, scratch)
    }

    /// Factorized match computation: AND the per-attribute conjunct bitsets,
    /// then fold conjunct bits into query bits.
    fn compute_match_words<'a>(&self, class: &[usize], scratch: &'a mut MatchScratch) -> &'a [u64] {
        let sat = &mut scratch.conj;
        // Start from "every conjunct satisfied" with padding cleared; an
        // attribute-less space (no selection predicates) leaves it that way.
        for w in sat.iter_mut() {
            *w = u64::MAX;
        }
        let total = self.conj_total;
        if !total.is_multiple_of(64) {
            sat[total / 64] &= (1u64 << (total % 64)) - 1;
        }
        for w in sat.iter_mut().skip(words_for(total.max(1))) {
            *w = 0;
        }
        for (pos, &b) in class.iter().enumerate() {
            let blocks = &self.attr_conj_ok[pos];
            let slice = &blocks[b * self.conj_words..(b + 1) * self.conj_words];
            for (s, &x) in sat.iter_mut().zip(slice) {
                *s &= x;
            }
        }
        if self.single_conjunct {
            // Conjunct bit j == query bit j.
            scratch.query[..self.query_words].copy_from_slice(&sat[..self.query_words]);
        } else {
            for w in scratch.query.iter_mut() {
                *w = 0;
            }
            for (q, mask) in self.query_masks.iter().enumerate() {
                if sat.iter().zip(mask).any(|(&s, &m)| s & m != 0) {
                    scratch.query[q / 64] |= 1u64 << (q % 64);
                }
            }
        }
        &scratch.query
    }

    /// Whether a tuple of `class` satisfies query `q` — a bit probe on the
    /// dense table, or a per-query conjunct scan without any buffer.
    #[inline]
    pub fn class_matches(&self, class: &[usize], q: usize) -> bool {
        if let Some(table) = &self.table {
            let id = self.class_id(class);
            return table[id * self.query_words + q / 64] & (1u64 << (q % 64)) != 0;
        }
        let mask = &self.query_masks[q];
        for (w, &m) in mask.iter().enumerate() {
            let mut bits = m;
            while bits != 0 {
                let bit = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let satisfied = class.iter().enumerate().all(|(pos, &b)| {
                    self.attr_conj_ok[pos][b * self.conj_words + bit / 64] & (1u64 << (bit % 64))
                        != 0
                });
                if satisfied {
                    return true;
                }
            }
        }
        false
    }

    /// Outcome counts of a single pair from its source/destination match
    /// bitsets (Lemma 5.1, bit-parallel).
    #[inline]
    pub fn pair_stats(
        &self,
        source: &[u64],
        destination: &[u64],
        projection_changed: bool,
    ) -> PairStats {
        let mut tt = 0usize; // matches before and after
        let mut removed = 0usize;
        let mut added = 0usize;
        for (&s, &d) in source.iter().zip(destination) {
            tt += (s & d).count_ones() as usize;
            removed += (s & !d).count_ones() as usize;
            added += (!s & d).count_ones() as usize;
        }
        let ff = self.query_count - tt - removed - added;
        let (unchanged, replaced) = if projection_changed {
            (ff, tt)
        } else {
            (ff + tt, 0)
        };
        PairStats {
            counts: [unchanged, added, removed, replaced],
        }
    }

    /// The 2-bit packed outcome code of one query under one pair:
    /// `0 = Unchanged, 1 = Added, 2 = Removed, 3 = Replaced`.
    #[inline]
    pub fn outcome_code(
        &self,
        source: &[u64],
        destination: &[u64],
        projection_changed: bool,
        q: usize,
    ) -> u8 {
        let w = q / 64;
        let bit = 1u64 << (q % 64);
        let s = source[w] & bit != 0;
        let d = destination[w] & bit != 0;
        match (s, d) {
            (false, false) => 0,
            (false, true) => 1,
            (true, false) => 2,
            (true, true) => {
                if projection_changed {
                    3
                } else {
                    0
                }
            }
        }
    }
}

/// One bit per (query, conjunct): the total conjunct count and, per query,
/// the `(start, len)` range of its conjunct bits.
fn conjunct_layout(queries: &[SpjQuery]) -> (usize, Vec<(usize, usize)>) {
    let mut conj_total = 0usize;
    let mut conj_ranges: Vec<(usize, usize)> = Vec::with_capacity(queries.len());
    for q in queries {
        let n = q.predicate.conjuncts().len();
        conj_ranges.push((conj_total, n));
        conj_total += n;
    }
    (conj_total, conj_ranges)
}

/// Groups every conjunct's terms by the attribute position its column
/// resolves to: `result[pos] = [(conjunct bit, term)]`.
fn terms_by_position<'q>(
    queries: &'q [SpjQuery],
    conj_ranges: &[(usize, usize)],
    join: &JoinedRelation,
    attrs: &[SelectionAttribute],
) -> Result<Vec<Vec<(usize, &'q qfe_query::Term)>>> {
    // Map join columns to attribute positions.
    let col_to_pos: std::collections::BTreeMap<usize, usize> = attrs
        .iter()
        .enumerate()
        .map(|(pos, a)| (a.column, pos))
        .collect();
    let mut terms_by_pos: Vec<Vec<(usize, &qfe_query::Term)>> = vec![Vec::new(); attrs.len()];
    for (q, query) in queries.iter().enumerate() {
        let (start, _) = conj_ranges[q];
        for (c, conjunct) in query.predicate.conjuncts().iter().enumerate() {
            for term in conjunct.terms() {
                let col = join
                    .resolve_column(term.attribute())
                    .map_err(QfeError::from)?;
                let pos = *col_to_pos.get(&col).ok_or_else(|| QfeError::Internal {
                    message: format!(
                        "predicate attribute {} missing from the class space",
                        term.attribute()
                    ),
                })?;
                terms_by_pos[pos].push((start + c, term));
            }
        }
    }
    Ok(terms_by_pos)
}

/// The per-block conjunct bitsets of one attribute: `blocks × conj_words`
/// words, bit `j` of block `b`'s slice set when block `b` satisfies every
/// term of conjunct `j` on this attribute, padding beyond `conj_total`
/// cleared so AND folds stay canonical.
fn attr_conjunct_ok(
    attr: &SelectionAttribute,
    terms: &[(usize, &qfe_query::Term)],
    conj_total: usize,
    conj_words: usize,
) -> Vec<u64> {
    let blocks = attr.blocks.len();
    let mut ok = vec![u64::MAX; blocks * conj_words];
    let used = conj_total.max(1);
    for b in 0..blocks {
        let slice = &mut ok[b * conj_words..(b + 1) * conj_words];
        if !used.is_multiple_of(64) {
            slice[used / 64] &= (1u64 << (used % 64)) - 1;
        }
        for w in slice.iter_mut().skip(used.div_ceil(64)) {
            *w = 0;
        }
    }
    for &(bit, term) in terms {
        for (b, block) in attr.blocks.iter().enumerate() {
            if !term.eval(block.representative()) {
                ok[b * conj_words + bit / 64] &= !(1u64 << (bit % 64));
            }
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::{BoundQuery, ComparisonOp, Conjunct, DnfPredicate, SpjQuery, Term};
    use qfe_relation::{
        foreign_key_join, tuple, ColumnDef, DataType, Database, Table, TableSchema,
    };

    fn setup(queries: Vec<SpjQuery>) -> (JoinedRelation, TupleClassSpace, Vec<SpjQuery>) {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        let join = foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let space = TupleClassSpace::build(&join, &queries).unwrap();
        (join, space, queries)
    }

    fn q(p: DnfPredicate) -> SpjQuery {
        SpjQuery::new(vec!["Employee"], vec!["name"], p)
    }

    #[test]
    fn kernel_matches_agree_with_bound_query_evaluation() {
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            // A two-conjunct DNF exercises the mask-fold path.
            q(DnfPredicate::new(vec![
                Conjunct::new(vec![Term::eq("dept", "IT")]),
                Conjunct::new(vec![
                    Term::eq("gender", "F"),
                    Term::compare("salary", ComparisonOp::Le, 3500i64),
                ]),
            ])),
        ];
        let (join, space, queries) = setup(queries);
        let bound: Vec<BoundQuery> = queries
            .iter()
            .map(|qq| BoundQuery::bind(qq, &join).unwrap())
            .collect();
        let kernel =
            OutcomeKernel::build(&space, &queries, &join, &std::collections::BTreeSet::new())
                .unwrap();
        assert!(kernel.has_table());
        let mut scratch = kernel.scratch();
        for class in space.source_classes(&join).keys() {
            let words = kernel.match_words(class, &mut scratch).to_vec();
            for (qi, b) in bound.iter().enumerate() {
                let expected = space.class_matches(class, b);
                assert_eq!(kernel.class_matches(class, qi), expected, "q{qi} {class:?}");
                assert_eq!(words[qi / 64] & (1 << (qi % 64)) != 0, expected);
            }
        }
    }

    #[test]
    fn factorized_path_agrees_with_table_path() {
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
        ];
        let (join, space, queries) = setup(queries);
        let with_table =
            OutcomeKernel::build(&space, &queries, &join, &std::collections::BTreeSet::new())
                .unwrap();
        let mut without_table = with_table.clone();
        without_table.table = None;
        let mut s1 = with_table.scratch();
        let mut s2 = without_table.scratch();
        // Exhaustively enumerate the (tiny) class space.
        let counts: Vec<usize> = space.attributes().iter().map(|a| a.blocks.len()).collect();
        let mut class = vec![0usize; counts.len()];
        loop {
            assert_eq!(
                with_table.match_words(&class, &mut s1),
                without_table.match_words(&class, &mut s2),
                "{class:?}"
            );
            for qi in 0..queries.len() {
                assert_eq!(
                    with_table.class_matches(&class, qi),
                    without_table.class_matches(&class, qi)
                );
            }
            let mut pos = class.len();
            loop {
                if pos == 0 {
                    return;
                }
                pos -= 1;
                class[pos] += 1;
                if class[pos] < counts[pos] {
                    break;
                }
                class[pos] = 0;
            }
        }
    }

    #[test]
    fn advance_from_reuses_repairs_and_rebuilds() {
        let queries = vec![
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
        ];
        let (join, space, queries) = setup(queries);
        let proj = std::collections::BTreeSet::new();
        let kernel = OutcomeKernel::build(&space, &queries, &join, &proj).unwrap();

        // Identical geometry and block contents: verbatim reuse.
        let (reused, how) =
            OutcomeKernel::advance_from(&kernel, &space, &space, true, &queries, &join, &proj)
                .unwrap();
        assert_eq!(how, KernelReuse::Reused);
        assert_eq!(reused.attr_conj_ok, kernel.attr_conj_ok);
        assert_eq!(reused.table, kernel.table);

        // Changed candidate set: full rebuild.
        let fewer = vec![queries[0].clone()];
        let space_fewer = TupleClassSpace::build(&join, &fewer).unwrap();
        let (_, how) =
            OutcomeKernel::advance_from(&kernel, &space, &space_fewer, false, &fewer, &join, &proj)
                .unwrap();
        assert_eq!(how, KernelReuse::Rebuilt);

        // Same geometry, changed block contents: an edit that renames a
        // department shifts the dept attribute's value sets without changing
        // the truth-vector group count, so the kernel repairs in place and
        // stays bit-identical to a fresh build.
        let employee2 = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Support", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db2 = Database::new();
        db2.add_table(employee2).unwrap();
        let join2 = foreign_key_join(&db2, &["Employee".to_string()]).unwrap();
        let space2 = TupleClassSpace::build(&join2, &queries).unwrap();
        assert_ne!(
            space.attributes()[0].blocks.len() + space.attributes()[1].blocks.len(),
            0
        );
        let (repaired, how) =
            OutcomeKernel::advance_from(&kernel, &space, &space2, true, &queries, &join2, &proj)
                .unwrap();
        assert!(
            matches!(how, KernelReuse::Repaired { .. }),
            "expected the repair tier, got {how:?}"
        );
        let fresh = OutcomeKernel::build(&space2, &queries, &join2, &proj).unwrap();
        assert_eq!(repaired.attr_conj_ok, fresh.attr_conj_ok);
        assert_eq!(repaired.table, fresh.table);
        assert_eq!(repaired.projection_touch, fresh.projection_touch);
    }

    #[test]
    fn pair_stats_count_the_four_outcomes() {
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
        ];
        let (join, space, queries) = setup(queries);
        let kernel =
            OutcomeKernel::build(&space, &queries, &join, &std::collections::BTreeSet::new())
                .unwrap();
        // source matches {0,1,2}; destination matches {0,2}: one Removed.
        let s = vec![0b111u64];
        let d = vec![0b101u64];
        let stats = kernel.pair_stats(&s, &d, false);
        assert_eq!(stats.counts, [2, 0, 1, 0]);
        assert_eq!(stats.group_count(), 2);
        assert_eq!(stats.binary_smaller(), Some(1));
        assert!(stats.balance().is_finite());
        // With a projection change the two true-true queries become Replaced.
        let stats = kernel.pair_stats(&s, &d, true);
        assert_eq!(stats.counts, [0, 0, 1, 2]);
        assert_eq!(kernel.outcome_code(&s, &d, true, 0), 3);
        assert_eq!(kernel.outcome_code(&s, &d, true, 1), 2);
        // No split: infinite balance.
        let same = kernel.pair_stats(&s, &s, false);
        assert_eq!(same.group_count(), 1);
        assert!(same.balance().is_infinite());
        assert_eq!(same.binary_smaller(), None);
    }
}
