//! Domain partitioning `P_QC(A_i)` (Section 5.1 of the paper).
//!
//! For each attribute `A_i` appearing in the selection predicates of the
//! candidate queries, the attribute's domain is partitioned into a minimum
//! collection of disjoint blocks such that, within each block, every
//! predicate term on `A_i` is either satisfied by all values or by none.
//! Tuple classes (one block per attribute) are then the unit at which the
//! database generator reasons about modifications.

use std::collections::BTreeMap;

use qfe_query::Term;
use qfe_relation::{DataType, Value};

/// One block of an attribute's domain partition.
#[derive(Debug, Clone, PartialEq)]
pub enum DomainBlock {
    /// A numeric interval with optional bounds (`None` = unbounded).
    Interval {
        /// Lower bound (value, inclusive?) or `None` for −∞.
        lower: Option<(Value, bool)>,
        /// Upper bound (value, inclusive?) or `None` for +∞.
        upper: Option<(Value, bool)>,
        /// A concrete value inside the block, preferring values that occur in
        /// the attribute's active domain.
        representative: Value,
    },
    /// A set of categorical values with identical truth values for every
    /// predicate term on the attribute.
    ValueSet {
        /// The member values.
        values: Vec<Value>,
        /// A concrete member used when realizing modifications.
        representative: Value,
    },
}

impl DomainBlock {
    /// A concrete value belonging to the block.
    pub fn representative(&self) -> &Value {
        match self {
            DomainBlock::Interval { representative, .. }
            | DomainBlock::ValueSet { representative, .. } => representative,
        }
    }

    /// Whether `v` belongs to this block.
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            DomainBlock::Interval { lower, upper, .. } => {
                if v.is_null() {
                    return false;
                }
                if let Some((lo, inclusive)) = lower {
                    if v < lo || (v == lo && !inclusive) {
                        return false;
                    }
                }
                if let Some((hi, inclusive)) = upper {
                    if v > hi || (v == hi && !inclusive) {
                        return false;
                    }
                }
                true
            }
            DomainBlock::ValueSet { values, .. } => values.contains(v),
        }
    }
}

impl std::fmt::Display for DomainBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainBlock::Interval { lower, upper, .. } => {
                match lower {
                    Some((v, true)) => write!(f, "[{v}, ")?,
                    Some((v, false)) => write!(f, "({v}, ")?,
                    None => write!(f, "(-inf, ")?,
                }
                match upper {
                    Some((v, true)) => write!(f, "{v}]"),
                    Some((v, false)) => write!(f, "{v})"),
                    None => write!(f, "+inf)"),
                }
            }
            DomainBlock::ValueSet { values, .. } => {
                write!(f, "{{")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Partitions a *numeric* attribute's domain given the terms on it and the
/// attribute's active domain (used to pick representatives).
///
/// The construction creates elementary regions from the sorted predicate
/// constants — `(-∞,c1), [c1,c1], (c1,c2), …, (cm,+∞)` — and merges adjacent
/// regions whose truth vector over the terms is identical, yielding the
/// minimum partition required by the paper's definition.
pub fn partition_numeric_domain(terms: &[&Term], active_domain: &[Value]) -> Vec<DomainBlock> {
    partition_numeric_domain_for(terms, active_domain, DataType::Float)
}

/// [`partition_numeric_domain`] made aware of the column's declared type.
///
/// For an integer column the real domain is the integers, not the reals:
/// elementary regions containing no integer (such as the open interval
/// `(80, 81)`) are dropped — they can never be realized by a database
/// modification — and every block representative is an integer, so realized
/// edits always conform to the column type.
pub fn partition_numeric_domain_for(
    terms: &[&Term],
    active_domain: &[Value],
    value_type: DataType,
) -> Vec<DomainBlock> {
    // Collect constants mentioned by the terms.
    let mut constants: Vec<Value> = terms
        .iter()
        .flat_map(|t| t.constants().into_iter().cloned())
        .filter(|v| !v.is_null())
        .collect();
    constants.sort();
    constants.dedup();

    if constants.is_empty() {
        let representative = pick_numeric_representative(None, None, active_domain);
        return vec![DomainBlock::Interval {
            lower: None,
            upper: None,
            representative,
        }];
    }

    // Elementary regions: open intervals between constants plus the point
    // regions at the constants themselves.
    #[derive(Clone)]
    struct Region {
        lower: Option<(Value, bool)>,
        upper: Option<(Value, bool)>,
        probe: Value,
    }
    let mut regions: Vec<Region> = Vec::with_capacity(2 * constants.len() + 1);
    let below = probe_below(&constants[0]);
    regions.push(Region {
        lower: None,
        upper: Some((constants[0].clone(), false)),
        probe: below,
    });
    for (i, c) in constants.iter().enumerate() {
        regions.push(Region {
            lower: Some((c.clone(), true)),
            upper: Some((c.clone(), true)),
            probe: c.clone(),
        });
        if let Some(next) = constants.get(i + 1) {
            regions.push(Region {
                lower: Some((c.clone(), false)),
                upper: Some((next.clone(), false)),
                probe: probe_between(c, next),
            });
        }
    }
    regions.push(Region {
        lower: Some((constants[constants.len() - 1].clone(), false)),
        upper: None,
        probe: probe_above(&constants[constants.len() - 1]),
    });

    // An integer column can only hold integers: drop the regions that
    // contain none (they are unrealizable), before merging so that the
    // surviving neighbours still coalesce on equal truth vectors.
    if value_type == DataType::Int {
        regions.retain(|r| int_interval_nonempty(r.lower.as_ref(), r.upper.as_ref()));
    }

    // Truth vector of each region, then merge adjacent regions with equal
    // vectors.
    type Bound = Option<(Value, bool)>;
    let truth = |probe: &Value| -> Vec<bool> { terms.iter().map(|t| t.eval(probe)).collect() };
    let mut blocks: Vec<(Bound, Bound, Vec<bool>)> = Vec::new();
    for r in regions {
        let tv = truth(&r.probe);
        match blocks.last_mut() {
            Some((_, upper, last_tv)) if *last_tv == tv => {
                *upper = r.upper.clone();
            }
            _ => blocks.push((r.lower.clone(), r.upper.clone(), tv)),
        }
    }

    blocks
        .into_iter()
        .map(|(lower, upper, _)| {
            let mut representative =
                pick_numeric_representative(lower.as_ref(), upper.as_ref(), active_domain);
            if value_type == DataType::Int && !matches!(representative, Value::Int(_)) {
                representative = Value::Int(int_representative(lower.as_ref(), upper.as_ref()));
            }
            DomainBlock::Interval {
                lower,
                upper,
                representative,
            }
        })
        .collect()
}

/// The smallest integer satisfying an interval lower bound.
fn min_int_in(lower: Option<&(Value, bool)>) -> i64 {
    match lower {
        None => i64::MIN,
        Some((v, inclusive)) => {
            let f = v.as_f64().unwrap_or(f64::NEG_INFINITY);
            let c = f.ceil();
            let mut i = c as i64;
            if !inclusive && c == f {
                i = i.saturating_add(1);
            }
            i
        }
    }
}

/// The largest integer satisfying an interval upper bound.
fn max_int_in(upper: Option<&(Value, bool)>) -> i64 {
    match upper {
        None => i64::MAX,
        Some((v, inclusive)) => {
            let f = v.as_f64().unwrap_or(f64::INFINITY);
            let fl = f.floor();
            let mut i = fl as i64;
            if !inclusive && fl == f {
                i = i.saturating_sub(1);
            }
            i
        }
    }
}

/// Whether the interval contains at least one integer.
fn int_interval_nonempty(lower: Option<&(Value, bool)>, upper: Option<&(Value, bool)>) -> bool {
    min_int_in(lower) <= max_int_in(upper)
}

/// An integer inside a (known integer-nonempty) interval, preferring values
/// near the bounds so representatives stay close to the constants the user's
/// predicates mention.
fn int_representative(lower: Option<&(Value, bool)>, upper: Option<&(Value, bool)>) -> i64 {
    match (lower, upper) {
        (Some(_), _) => min_int_in(lower),
        (None, Some(_)) => max_int_in(upper),
        (None, None) => 0,
    }
}

/// Partitions a *categorical* attribute's domain given the terms on it and
/// the attribute's active domain. Values (active-domain values plus constants
/// mentioned by the terms, plus one synthetic "fresh" value when it realizes
/// a truth vector not otherwise present) are grouped by their truth vector
/// over the terms.
pub fn partition_categorical_domain(terms: &[&Term], active_domain: &[Value]) -> Vec<DomainBlock> {
    let mut universe: Vec<Value> = active_domain
        .iter()
        .filter(|v| !v.is_null())
        .cloned()
        .collect();
    for t in terms {
        for c in t.constants() {
            if !c.is_null() && !universe.contains(c) {
                universe.push(c.clone());
            }
        }
    }
    universe.sort();
    universe.dedup();

    // A synthetic fresh value (not in the universe) lets modifications move a
    // tuple to "none of the mentioned values" even when every known value
    // satisfies some term.
    let fresh = synthesize_fresh_value(&universe);
    let fresh_truth: Vec<bool> = terms.iter().map(|t| t.eval(&fresh)).collect();

    let mut groups: BTreeMap<Vec<bool>, Vec<Value>> = BTreeMap::new();
    for v in &universe {
        let tv: Vec<bool> = terms.iter().map(|t| t.eval(v)).collect();
        groups.entry(tv).or_default().push(v.clone());
    }
    groups.entry(fresh_truth).or_insert_with(|| vec![fresh]);

    groups
        .into_values()
        .map(|values| {
            // Prefer a representative from the active domain.
            let representative = values
                .iter()
                .find(|v| active_domain.contains(v))
                .unwrap_or(&values[0])
                .clone();
            DomainBlock::ValueSet {
                values,
                representative,
            }
        })
        .collect()
}

/// Picks a concrete value inside a numeric interval, preferring active-domain
/// values.
fn pick_numeric_representative(
    lower: Option<&(Value, bool)>,
    upper: Option<&(Value, bool)>,
    active_domain: &[Value],
) -> Value {
    let in_range = |v: &Value| -> bool {
        if v.is_null() {
            return false;
        }
        if let Some((lo, inc)) = lower {
            if v < lo || (v == lo && !inc) {
                return false;
            }
        }
        if let Some((hi, inc)) = upper {
            if v > hi || (v == hi && !inc) {
                return false;
            }
        }
        true
    };
    if let Some(v) = active_domain.iter().find(|v| in_range(v)) {
        return v.clone();
    }
    match (lower, upper) {
        (Some((lo, lo_inc)), Some((hi, hi_inc))) => {
            if lo == hi {
                return lo.clone();
            }
            let a = lo.as_f64().unwrap_or(0.0);
            let b = hi.as_f64().unwrap_or(0.0);
            let mid = (a + b) / 2.0;
            // Prefer integer representatives when both bounds are integers and
            // an integer strictly between them exists.
            if let (Value::Int(ai), Value::Int(bi)) = (lo, hi) {
                if bi - ai >= 2 {
                    return Value::Int(ai + (bi - ai) / 2);
                }
                if *lo_inc {
                    return lo.clone();
                }
                if *hi_inc {
                    return hi.clone();
                }
            }
            Value::Float(mid)
        }
        (Some((lo, inc)), None) => {
            if *inc {
                lo.clone()
            } else {
                match lo {
                    Value::Int(i) => Value::Int(i + 1),
                    other => Value::Float(other.as_f64().unwrap_or(0.0) + 1.0),
                }
            }
        }
        (None, Some((hi, inc))) => {
            if *inc {
                hi.clone()
            } else {
                match hi {
                    Value::Int(i) => Value::Int(i - 1),
                    other => Value::Float(other.as_f64().unwrap_or(0.0) - 1.0),
                }
            }
        }
        (None, None) => Value::Int(0),
    }
}

fn probe_below(v: &Value) -> Value {
    match v {
        Value::Int(i) => Value::Int(i - 1),
        other => Value::Float(other.as_f64().unwrap_or(0.0) - 1.0),
    }
}

fn probe_above(v: &Value) -> Value {
    match v {
        Value::Int(i) => Value::Int(i + 1),
        other => Value::Float(other.as_f64().unwrap_or(0.0) + 1.0),
    }
}

fn probe_between(a: &Value, b: &Value) -> Value {
    let x = a.as_f64().unwrap_or(0.0);
    let y = b.as_f64().unwrap_or(0.0);
    Value::Float((x + y) / 2.0)
}

fn synthesize_fresh_value(universe: &[Value]) -> Value {
    let mut candidate = "qfe_fresh".to_string();
    while universe
        .iter()
        .any(|v| v.as_str() == Some(candidate.as_str()))
    {
        candidate.push('_');
    }
    Value::Text(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::ComparisonOp;

    /// Example 5.1 of the paper: Q1 = σ(A≤50 ∧ B>60), Q2 = σ(A∈(40,80] ∧ B≤20).
    /// P_QC(A) = {[-∞,40], (40,50], (50,80], (80,∞]}.
    #[test]
    fn example_5_1_attribute_a() {
        let t1 = Term::compare("A", ComparisonOp::Le, 50i64);
        let t2 = Term::compare("A", ComparisonOp::Gt, 40i64);
        let t3 = Term::compare("A", ComparisonOp::Le, 80i64);
        let terms = vec![&t1, &t2, &t3];
        let blocks = partition_numeric_domain(&terms, &[]);
        assert_eq!(blocks.len(), 4, "{blocks:?}");
        // Check the block boundaries by probing values.
        let find = |v: i64| {
            blocks
                .iter()
                .position(|b| b.contains(&Value::Int(v)))
                .unwrap()
        };
        assert_eq!(find(40), find(0));
        assert_eq!(find(41), find(50));
        assert_ne!(find(40), find(41));
        assert_eq!(find(51), find(80));
        assert_ne!(find(50), find(51));
        assert_eq!(find(81), find(1000));
        assert_ne!(find(80), find(81));
    }

    /// Example 5.1, attribute B: P_QC(B) = {[-∞,20], (20,60], (60,∞]}.
    #[test]
    fn example_5_1_attribute_b() {
        let t1 = Term::compare("B", ComparisonOp::Gt, 60i64);
        let t2 = Term::compare("B", ComparisonOp::Le, 20i64);
        let terms = vec![&t1, &t2];
        let blocks = partition_numeric_domain(&terms, &[]);
        assert_eq!(blocks.len(), 3, "{blocks:?}");
    }

    /// An attribute with no predicate terms has a single unbounded block
    /// (Example 5.1's attribute C).
    #[test]
    fn attribute_without_terms_is_one_block() {
        let blocks = partition_numeric_domain(&[], &[Value::Int(5)]);
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].contains(&Value::Int(-1_000_000)));
        assert!(blocks[0].contains(&Value::Float(1e12)));
        assert_eq!(blocks[0].representative(), &Value::Int(5));
    }

    /// Example 5.2: categorical domain {a..g}, Q1 = σ A∈{b,c,e}, Q2 = σ A∈{a,b,d,e}
    /// partitions into {a,d}, {b,e}, {c}, {f,g}.
    #[test]
    fn example_5_2_categorical_partition() {
        let dom: Vec<Value> = ["a", "b", "c", "d", "e", "f", "g"]
            .iter()
            .map(|s| Value::Text(s.to_string()))
            .collect();
        let t1 = Term::is_in("A", vec!["b".into(), "c".into(), "e".into()]);
        let t2 = Term::is_in("A", vec!["a".into(), "b".into(), "d".into(), "e".into()]);
        let blocks = partition_categorical_domain(&[&t1, &t2], &dom);
        assert_eq!(blocks.len(), 4, "{blocks:?}");
        let block_of = |s: &str| {
            blocks
                .iter()
                .position(|b| b.contains(&Value::Text(s.to_string())))
                .unwrap()
        };
        assert_eq!(block_of("a"), block_of("d"));
        assert_eq!(block_of("b"), block_of("e"));
        assert_eq!(block_of("f"), block_of("g"));
        assert_ne!(block_of("a"), block_of("b"));
        assert_ne!(block_of("b"), block_of("c"));
        assert_ne!(block_of("c"), block_of("f"));
    }

    #[test]
    fn categorical_partition_adds_fresh_block_when_needed() {
        // Every active-domain value satisfies the single equality term's
        // complement except "IT"; but if the domain is exactly {"IT"} the
        // "does not satisfy" truth vector needs a synthetic fresh value.
        let t1 = Term::eq("dept", "IT");
        let dom = vec![Value::Text("IT".into())];
        let blocks = partition_categorical_domain(&[&t1], &dom);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().any(|b| b.contains(&Value::Text("IT".into()))));
        assert!(blocks.iter().any(
            |b| matches!(b, DomainBlock::ValueSet { values, .. } if values
                .iter()
                .all(|v| v.as_str().is_some_and(|s| s.starts_with("qfe_fresh"))))
        ));
    }

    #[test]
    fn representatives_prefer_active_domain_values() {
        let t1 = Term::compare("salary", ComparisonOp::Gt, 4000i64);
        let dom = vec![
            Value::Int(3000),
            Value::Int(3700),
            Value::Int(4200),
            Value::Int(5000),
        ];
        let blocks = partition_numeric_domain(&[&t1], &dom);
        assert_eq!(blocks.len(), 2);
        for b in &blocks {
            let rep = b.representative();
            assert!(b.contains(rep));
            assert!(
                dom.contains(rep),
                "representative {rep} should come from the active domain"
            );
        }
    }

    #[test]
    fn interval_membership_respects_bounds() {
        let b = DomainBlock::Interval {
            lower: Some((Value::Int(40), false)),
            upper: Some((Value::Int(50), true)),
            representative: Value::Int(45),
        };
        assert!(!b.contains(&Value::Int(40)));
        assert!(b.contains(&Value::Int(41)));
        assert!(b.contains(&Value::Int(50)));
        assert!(!b.contains(&Value::Int(51)));
        assert!(!b.contains(&Value::Null));
        assert!(b.to_string().contains("(40, 50]"));
    }

    #[test]
    fn value_set_membership_and_display() {
        let b = DomainBlock::ValueSet {
            values: vec![Value::Text("a".into()), Value::Text("b".into())],
            representative: Value::Text("a".into()),
        };
        assert!(b.contains(&Value::Text("b".into())));
        assert!(!b.contains(&Value::Text("z".into())));
        assert_eq!(b.to_string(), "{a, b}");
    }

    #[test]
    fn blocks_are_disjoint_and_cover_probes() {
        // Disjointness/coverage sanity over a grid of probe values.
        let t1 = Term::compare("A", ComparisonOp::Ge, -2i64);
        let t2 = Term::compare("A", ComparisonOp::Lt, 7i64);
        let t3 = Term::eq("A", 3i64);
        let blocks = partition_numeric_domain(&[&t1, &t2, &t3], &[]);
        for probe in -10..15 {
            let v = Value::Int(probe);
            let hits = blocks.iter().filter(|b| b.contains(&v)).count();
            assert_eq!(hits, 1, "value {probe} must fall in exactly one block");
        }
        // Truth values of each term are constant within each block.
        for b in &blocks {
            let rep_truth: Vec<bool> = [&t1, &t2, &t3]
                .iter()
                .map(|t| t.eval(b.representative()))
                .collect();
            for probe in -10..15 {
                let v = Value::Int(probe);
                if b.contains(&v) {
                    let tv: Vec<bool> = [&t1, &t2, &t3].iter().map(|t| t.eval(&v)).collect();
                    assert_eq!(tv, rep_truth);
                }
            }
        }
    }

    #[test]
    fn float_constants_partition() {
        let t1 = Term::compare("logFC", ComparisonOp::Lt, 0.5f64);
        let t2 = Term::compare("logFC", ComparisonOp::Gt, -0.5f64);
        let blocks = partition_numeric_domain(&[&t1, &t2], &[Value::Float(0.0), Value::Float(2.0)]);
        // (-inf,-0.5), [-0.5,-0.5], (-0.5,0.5), [0.5,0.5], (0.5,inf) merged by
        // truth vectors -> {<-0.5 incl -0.5? } check membership distinctness:
        let idx_of = |x: f64| {
            blocks
                .iter()
                .position(|b| b.contains(&Value::Float(x)))
                .unwrap()
        };
        assert_eq!(idx_of(0.0), idx_of(0.2));
        assert_ne!(idx_of(0.0), idx_of(0.6));
        assert_ne!(idx_of(-0.6), idx_of(0.0));
    }
}
