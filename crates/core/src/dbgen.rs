//! Algorithm 2: the Database Generator module.
//!
//! Combines the skyline enumeration (Algorithm 3), the subset selection
//! (Algorithm 4) and the realization of tuple-class pairs into a modified
//! database `D'` that partitions the remaining candidate queries, minimizing
//! the user-effort cost model.

use std::time::{Duration, Instant};

use qfe_query::{partition_queries, QueryPartition, QueryResult, SpjQuery};
use qfe_relation::{Database, EditOp};

use crate::context::GenerationContext;
use crate::cost::CostParams;
use crate::error::Result;
use crate::pick::pick_stc_dtc_subset;
use crate::realize::{apply_edits, edits_to_ops};
use crate::skyline::{
    skyline_stc_dtc_pairs, skyline_stc_dtc_pairs_memoized, SkylineMemo, SkylineOutcome,
};

/// The Database Generator (Algorithm 2).
#[derive(Debug, Clone, Default)]
pub struct DatabaseGenerator {
    params: CostParams,
}

/// A generated modified database `D'` with everything the feedback module and
/// the experiment harness need to know about how it was produced.
#[derive(Debug, Clone)]
pub struct GeneratedDatabase {
    /// The modified database `D'`.
    pub database: Database,
    /// The edits transforming `D` into `D'` (all attribute modifications).
    pub edits: Vec<EditOp>,
    /// The exact partition of the candidate queries induced by `D'`
    /// (verified by full re-evaluation).
    pub partition: QueryPartition,
    /// `minEdit(D, D')`.
    pub db_edit_cost: usize,
    /// Total result modification cost `Σ minEdit(R, R_i)`.
    pub result_cost: usize,
    /// Number of relations modified.
    pub modified_relations: usize,
    /// Number of base tuples modified.
    pub modified_tuples: usize,
    /// Number of skyline pairs enumerated by Algorithm 3.
    pub skyline_pair_count: usize,
    /// Lemma 3.1's `x` observed during skyline enumeration.
    pub best_binary_x: Option<usize>,
    /// Time spent in Algorithm 3.
    pub skyline_time: Duration,
    /// Time spent in Algorithm 4.
    pub pick_time: Duration,
    /// Time spent applying the modification and re-partitioning.
    pub modify_time: Duration,
}

impl GeneratedDatabase {
    /// Total generation time (Algorithm 3 + Algorithm 4 + modification).
    pub fn total_time(&self) -> Duration {
        self.skyline_time + self.pick_time + self.modify_time
    }
}

impl DatabaseGenerator {
    /// Creates a generator with the given cost-model parameters.
    pub fn new(params: CostParams) -> Self {
        DatabaseGenerator { params }
    }

    /// The generator's parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Runs Algorithm 2 for one iteration: builds the per-iteration context,
    /// enumerates skyline pairs, picks the best subset and realizes it.
    pub fn generate(
        &self,
        db: &Database,
        original_result: &QueryResult,
        queries: &[SpjQuery],
    ) -> Result<GeneratedDatabase> {
        let ctx = GenerationContext::new(db, original_result, queries)?;
        self.generate_with_context(&ctx)
    }

    /// Runs Algorithm 2 for the round *after* `previous`: the context is
    /// derived incrementally via [`GenerationContext::advance`] (shared join,
    /// join index and domain caches; remapped source classes) instead of
    /// being recomputed from the database. `surviving` are the candidate
    /// indices kept by the user's answer; `edits` any cell edits applied to
    /// `D` since `previous` was built (empty in the standard loop).
    ///
    /// Returns the advanced context alongside the generation result so the
    /// caller can keep it for the next round.
    pub fn generate_incremental(
        &self,
        previous: &GenerationContext,
        surviving: &[usize],
        edits: &[crate::realize::CellEdit],
    ) -> Result<(std::sync::Arc<GenerationContext>, GeneratedDatabase)> {
        let ctx = std::sync::Arc::new(previous.advance(surviving, edits)?);
        let generated = self.generate_with_context(&ctx)?;
        Ok((ctx, generated))
    }

    /// [`Self::generate_incremental`] with a cross-round [`SkylineMemo`]:
    /// the successor context is derived differentially and the skyline
    /// enumeration serves unchanged `(cost level, source class)` cells from
    /// the memo. The result is identical to [`Self::generate_incremental`]
    /// whenever the skyline enumeration completes within its budget.
    pub fn generate_incremental_memoized(
        &self,
        previous: &GenerationContext,
        surviving: &[usize],
        edits: &[crate::realize::CellEdit],
        memo: &mut SkylineMemo,
    ) -> Result<(std::sync::Arc<GenerationContext>, GeneratedDatabase)> {
        let ctx = std::sync::Arc::new(previous.advance(surviving, edits)?);
        let generated = self.generate_with_context_memoized(&ctx, memo)?;
        Ok((ctx, generated))
    }

    /// Runs Algorithm 2 against a pre-built context (used by the experiment
    /// harness to time the individual steps on a fixed context).
    pub fn generate_with_context(&self, ctx: &GenerationContext) -> Result<GeneratedDatabase> {
        let skyline = skyline_stc_dtc_pairs(ctx, self.params.skyline_time_budget);
        self.finish_with_skyline(ctx, skyline)
    }

    /// [`Self::generate_with_context`] with a memoized skyline enumeration:
    /// per-`(cost level, source class)` results are reused across rounds when
    /// the candidate set and class geometry did not change.
    pub fn generate_with_context_memoized(
        &self,
        ctx: &GenerationContext,
        memo: &mut SkylineMemo,
    ) -> Result<GeneratedDatabase> {
        let skyline = skyline_stc_dtc_pairs_memoized(ctx, self.params.skyline_time_budget, memo);
        self.finish_with_skyline(ctx, skyline)
    }

    /// Steps 2 and 3 of Algorithm 2, shared by the memoized and plain paths.
    fn finish_with_skyline(
        &self,
        ctx: &GenerationContext,
        skyline: SkylineOutcome,
    ) -> Result<GeneratedDatabase> {
        // Step 2: Algorithm 4.
        let pick_start = Instant::now();
        let picked = pick_stc_dtc_subset(ctx, &skyline.pairs, &self.params, skyline.best_binary_x)?;
        let pick_time = pick_start.elapsed();

        // Step 3: realize D' and verify.
        let modify_start = Instant::now();
        let database = apply_edits(ctx.database(), &picked.realized.edits)?;
        let edits = edits_to_ops(ctx.database(), &picked.realized.edits)?;
        let partition = partition_queries(ctx.queries(), &database)?;
        let modify_time = modify_start.elapsed();

        Ok(GeneratedDatabase {
            database,
            edits,
            partition,
            db_edit_cost: picked.realized.db_edit_cost,
            result_cost: picked.evaluation.total_result_cost(),
            modified_relations: picked.realized.modified_relations,
            modified_tuples: picked.realized.modified_tuples,
            skyline_pair_count: skyline.pairs.len(),
            best_binary_x: skyline.best_binary_x,
            skyline_time: skyline.elapsed,
            pick_time,
            modify_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::{evaluate, ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, Table, TableSchema};

    fn employee_db() -> (Database, Vec<SpjQuery>, QueryResult) {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        let q = |p| SpjQuery::new(vec!["Employee"], vec!["name"], p);
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
        ];
        let result = evaluate(&queries[0], &db).unwrap();
        (db, queries, result)
    }

    #[test]
    fn generated_database_partitions_the_candidates() {
        let (db, queries, result) = employee_db();
        let generated = DatabaseGenerator::default()
            .generate(&db, &result, &queries)
            .unwrap();
        assert!(generated.partition.group_count() >= 2);
        assert_eq!(
            generated.partition.sizes().iter().sum::<usize>(),
            queries.len()
        );
        // The modification is small: at most one attribute per candidate that
        // must be separated, all within the single relation (on Example 1.1
        // the generator either performs one change splitting 2/1 or two
        // changes splitting 1/1/1, whichever the cost model prefers).
        assert!(generated.db_edit_cost <= 2);
        assert_eq!(generated.modified_relations, 1);
        assert!(generated.modified_tuples <= 2);
        assert_eq!(generated.edits.len(), generated.db_edit_cost);
        assert!(generated.skyline_pair_count > 0);
        assert!(generated.total_time() >= generated.pick_time);
        // The modified database still satisfies its integrity constraints.
        assert!(generated.database.check_integrity().is_ok());
        // D' differs from D by exactly the reported edit cost.
        assert_eq!(
            qfe_relation::min_edit_databases(&db, &generated.database),
            generated.db_edit_cost
        );
    }

    #[test]
    fn exact_partition_matches_edit_based_expectation() {
        let (db, queries, result) = employee_db();
        let generated = DatabaseGenerator::default()
            .generate(&db, &result, &queries)
            .unwrap();
        // Every group's queries produce identical results on D'; different
        // groups produce different results.
        for g in &generated.partition.groups {
            let first = evaluate(&queries[g.query_indices[0]], &generated.database).unwrap();
            for &qi in &g.query_indices[1..] {
                let r = evaluate(&queries[qi], &generated.database).unwrap();
                assert!(first.bag_equal(&r));
            }
        }
        let _ = result;
    }

    #[test]
    fn memoized_generation_matches_plain_generation() {
        let (db, queries, result) = employee_db();
        let generator = DatabaseGenerator::default();
        let ctx = GenerationContext::new(&db, &result, &queries).unwrap();
        let plain = generator.generate_with_context(&ctx).unwrap();
        let mut memo = SkylineMemo::new();
        // Two rounds against the same context: the second is served from the
        // memo and must produce the identical database.
        for _ in 0..2 {
            let memoized = generator
                .generate_with_context_memoized(&ctx, &mut memo)
                .unwrap();
            assert_eq!(memoized.database, plain.database);
            assert_eq!(memoized.edits, plain.edits);
            assert_eq!(memoized.db_edit_cost, plain.db_edit_cost);
            assert_eq!(memoized.skyline_pair_count, plain.skyline_pair_count);
        }
        assert!(memo.hits() > 0);
    }

    #[test]
    fn single_candidate_cannot_be_split() {
        let (db, queries, result) = employee_db();
        let err = DatabaseGenerator::default()
            .generate(&db, &result, &queries[..1])
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::QfeError::NoDistinguishingDatabase { .. }
        ));
    }

    #[test]
    fn params_are_propagated() {
        let params = CostParams::default().with_beta(3.0);
        let generator = DatabaseGenerator::new(params.clone());
        assert_eq!(generator.params(), &params);
    }
}
