//! Wire-format (`qfe-wire` JSON) implementations for the core session types.
//!
//! Everything a [`SessionSnapshot`](crate::SessionSnapshot) contains — the
//! example pair, candidate queries, cost parameters, per-iteration statistics
//! and a possibly cached feedback round — serializes through these impls, so
//! a session can be externalized mid-round and resumed in another process.

use qfe_query::QueryResult;
use qfe_relation::{Database, EditOp, Tuple};
use qfe_wire::{FromJson, Json, ToJson, WireError, WireResult};

use qfe_query::SpjQuery;

use crate::cost::{CostModelKind, CostParams, IterationEstimator};
use crate::delta::{DatabaseDelta, ResultDelta};
use crate::engine::{PendingRound, SessionSnapshot};
use crate::feedback::{FeedbackChoice, FeedbackRound};
use crate::stats::{IterationStats, SessionReport};

/// Version tag written into serialized snapshots, checked on load so that a
/// future incompatible format change fails loudly instead of misparsing.
const SNAPSHOT_VERSION: i64 = 1;

/// Version tag for the *split* snapshot form (session state serialized
/// separately from the shared workload payload).
const STATE_VERSION: i64 = 1;

/// The immutable bulk half of a session: the example pair `(D, R)` every
/// snapshot on the same workload shares.
///
/// A [`SessionSnapshot`] serialized whole duplicates `D` and `R` per parked
/// session. [`SessionSnapshot::split`] instead externalizes the pair once as
/// a `WorkloadPayload` — content-addressed by the hash of its JSON text (see
/// [`qfe_wire::content_hash`]) — and the per-session remainder as a small
/// state document referencing it. Thousands of parked sessions on the same
/// workload then share one stored copy.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPayload {
    /// The example database `D`.
    pub database: std::sync::Arc<Database>,
    /// The example result `R`.
    pub result: std::sync::Arc<QueryResult>,
}

impl WorkloadPayload {
    /// The canonical serialized form whose [`qfe_wire::content_hash`] is the
    /// workload's storage address.
    pub fn canonical_text(&self) -> String {
        self.to_json_string()
    }
}

impl ToJson for WorkloadPayload {
    fn to_json(&self) -> Json {
        Json::object([
            ("database", self.database.to_json()),
            ("result", self.result.to_json()),
        ])
    }
}

impl FromJson for WorkloadPayload {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(WorkloadPayload {
            database: std::sync::Arc::new(Database::from_json(json.field("database")?)?),
            result: std::sync::Arc::new(QueryResult::from_json(json.field("result")?)?),
        })
    }
}

impl SessionSnapshot {
    /// Splits the snapshot into its shared workload payload and the
    /// per-session state JSON (everything *except* `D` and `R`). The inverse
    /// is [`SessionSnapshot::from_parts`].
    pub fn split(&self) -> (WorkloadPayload, Json) {
        let workload = WorkloadPayload {
            database: std::sync::Arc::clone(&self.database),
            result: std::sync::Arc::clone(&self.result),
        };
        let state = Json::object([
            ("version", Json::Int(STATE_VERSION)),
            ("candidates", self.candidates.to_json()),
            ("params", self.params.to_json()),
            ("max_iterations", self.max_iterations.to_json()),
            (
                "query_generation_time",
                self.query_generation_time.to_json(),
            ),
            ("remaining", self.remaining.to_json()),
            ("iterations", self.iterations.to_json()),
            ("pending", self.pending.to_json()),
            ("rejected", Json::Bool(self.rejected)),
            ("indistinguishable", Json::Bool(self.indistinguishable)),
        ]);
        (workload, state)
    }

    /// Reassembles a snapshot from a shared workload payload and the state
    /// JSON produced by [`SessionSnapshot::split`].
    pub fn from_parts(workload: WorkloadPayload, state: &Json) -> WireResult<SessionSnapshot> {
        let version = state.field("version")?.as_i64()?;
        if version != STATE_VERSION {
            return Err(WireError::new(format!(
                "unsupported session state version {version} (expected {STATE_VERSION})"
            )));
        }
        Ok(SessionSnapshot {
            database: workload.database,
            result: workload.result,
            candidates: Vec::<SpjQuery>::from_json(state.field("candidates")?)?,
            params: CostParams::from_json(state.field("params")?)?,
            max_iterations: state.field("max_iterations")?.as_usize()?,
            query_generation_time: FromJson::from_json(state.field("query_generation_time")?)?,
            remaining: Vec::from_json(state.field("remaining")?)?,
            iterations: Vec::from_json(state.field("iterations")?)?,
            pending: Option::from_json(state.field("pending")?)?,
            rejected: state.field("rejected")?.as_bool()?,
            indistinguishable: state.field("indistinguishable")?.as_bool()?,
        })
    }
}

impl ToJson for DatabaseDelta {
    fn to_json(&self) -> Json {
        self.edits.to_json()
    }
}

impl FromJson for DatabaseDelta {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(DatabaseDelta {
            edits: Vec::<EditOp>::from_json(json)?,
        })
    }
}

impl ToJson for ResultDelta {
    fn to_json(&self) -> Json {
        Json::object([
            ("removed", self.removed.to_json()),
            ("added", self.added.to_json()),
        ])
    }
}

impl FromJson for ResultDelta {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(ResultDelta {
            removed: Vec::<Tuple>::from_json(json.field("removed")?)?,
            added: Vec::<Tuple>::from_json(json.field("added")?)?,
        })
    }
}

impl ToJson for FeedbackChoice {
    fn to_json(&self) -> Json {
        Json::object([
            ("result", self.result.to_json()),
            ("result_delta", self.result_delta.to_json()),
            ("candidate_count", self.candidate_count.to_json()),
            ("query_indices", self.query_indices.to_json()),
        ])
    }
}

impl FromJson for FeedbackChoice {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(FeedbackChoice {
            result: QueryResult::from_json(json.field("result")?)?,
            result_delta: ResultDelta::from_json(json.field("result_delta")?)?,
            candidate_count: json.field("candidate_count")?.as_usize()?,
            query_indices: Vec::from_json(json.field("query_indices")?)?,
        })
    }
}

impl ToJson for FeedbackRound {
    fn to_json(&self) -> Json {
        Json::object([
            ("iteration", self.iteration.to_json()),
            ("database", self.database.to_json()),
            ("database_delta", self.database_delta.to_json()),
            ("choices", self.choices.to_json()),
        ])
    }
}

impl FromJson for FeedbackRound {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(FeedbackRound {
            iteration: json.field("iteration")?.as_usize()?,
            database: Database::from_json(json.field("database")?)?,
            database_delta: DatabaseDelta::from_json(json.field("database_delta")?)?,
            choices: Vec::from_json(json.field("choices")?)?,
        })
    }
}

impl ToJson for IterationStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("iteration", self.iteration.to_json()),
            ("candidate_count", self.candidate_count.to_json()),
            ("group_count", self.group_count.to_json()),
            ("skyline_pairs", self.skyline_pairs.to_json()),
            ("execution_time", self.execution_time.to_json()),
            ("skyline_time", self.skyline_time.to_json()),
            ("pick_time", self.pick_time.to_json()),
            ("modify_time", self.modify_time.to_json()),
            ("db_cost", self.db_cost.to_json()),
            ("result_cost", self.result_cost.to_json()),
            ("modified_relations", self.modified_relations.to_json()),
            ("modified_tuples", self.modified_tuples.to_json()),
            ("user_time", self.user_time.to_json()),
        ])
    }
}

impl FromJson for IterationStats {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(IterationStats {
            iteration: json.field("iteration")?.as_usize()?,
            candidate_count: json.field("candidate_count")?.as_usize()?,
            group_count: json.field("group_count")?.as_usize()?,
            skyline_pairs: json.field("skyline_pairs")?.as_usize()?,
            execution_time: FromJson::from_json(json.field("execution_time")?)?,
            skyline_time: FromJson::from_json(json.field("skyline_time")?)?,
            pick_time: FromJson::from_json(json.field("pick_time")?)?,
            modify_time: FromJson::from_json(json.field("modify_time")?)?,
            db_cost: json.field("db_cost")?.as_usize()?,
            result_cost: json.field("result_cost")?.as_usize()?,
            modified_relations: json.field("modified_relations")?.as_usize()?,
            modified_tuples: json.field("modified_tuples")?.as_usize()?,
            user_time: FromJson::from_json(json.field("user_time")?)?,
        })
    }
}

impl ToJson for SessionReport {
    fn to_json(&self) -> Json {
        Json::object([
            (
                "query_generation_time",
                self.query_generation_time.to_json(),
            ),
            ("initial_candidates", self.initial_candidates.to_json()),
            ("iterations", self.iterations.to_json()),
        ])
    }
}

impl FromJson for SessionReport {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(SessionReport {
            query_generation_time: FromJson::from_json(json.field("query_generation_time")?)?,
            initial_candidates: json.field("initial_candidates")?.as_usize()?,
            iterations: Vec::from_json(json.field("iterations")?)?,
        })
    }
}

impl ToJson for IterationEstimator {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                IterationEstimator::Simple => "simple",
                IterationEstimator::Refined => "refined",
            }
            .to_string(),
        )
    }
}

impl FromJson for IterationEstimator {
    fn from_json(json: &Json) -> WireResult<Self> {
        match json.as_str()? {
            "simple" => Ok(IterationEstimator::Simple),
            "refined" => Ok(IterationEstimator::Refined),
            other => Err(WireError::new(format!("unknown estimator `{other}`"))),
        }
    }
}

impl ToJson for CostModelKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                CostModelKind::UserEffort => "user_effort",
                CostModelKind::MaxPartitions => "max_partitions",
            }
            .to_string(),
        )
    }
}

impl FromJson for CostModelKind {
    fn from_json(json: &Json) -> WireResult<Self> {
        match json.as_str()? {
            "user_effort" => Ok(CostModelKind::UserEffort),
            "max_partitions" => Ok(CostModelKind::MaxPartitions),
            other => Err(WireError::new(format!("unknown cost model `{other}`"))),
        }
    }
}

impl ToJson for CostParams {
    fn to_json(&self) -> Json {
        Json::object([
            ("beta", Json::Float(self.beta)),
            ("skyline_time_budget", self.skyline_time_budget.to_json()),
            ("estimator", self.estimator.to_json()),
            ("model", self.model.to_json()),
        ])
    }
}

impl FromJson for CostParams {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(CostParams {
            beta: json.field("beta")?.as_f64()?,
            skyline_time_budget: FromJson::from_json(json.field("skyline_time_budget")?)?,
            estimator: IterationEstimator::from_json(json.field("estimator")?)?,
            model: CostModelKind::from_json(json.field("model")?)?,
        })
    }
}

impl ToJson for PendingRound {
    fn to_json(&self) -> Json {
        Json::object([
            ("round", self.round.to_json()),
            ("stats", self.stats.to_json()),
        ])
    }
}

impl FromJson for PendingRound {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(PendingRound {
            round: FeedbackRound::from_json(json.field("round")?)?,
            stats: IterationStats::from_json(json.field("stats")?)?,
        })
    }
}

impl ToJson for SessionSnapshot {
    fn to_json(&self) -> Json {
        Json::object([
            ("version", Json::Int(SNAPSHOT_VERSION)),
            ("database", self.database.to_json()),
            ("result", self.result.to_json()),
            ("candidates", self.candidates.to_json()),
            ("params", self.params.to_json()),
            ("max_iterations", self.max_iterations.to_json()),
            (
                "query_generation_time",
                self.query_generation_time.to_json(),
            ),
            ("remaining", self.remaining.to_json()),
            ("iterations", self.iterations.to_json()),
            ("pending", self.pending.to_json()),
            ("rejected", Json::Bool(self.rejected)),
            ("indistinguishable", Json::Bool(self.indistinguishable)),
        ])
    }
}

impl FromJson for SessionSnapshot {
    fn from_json(json: &Json) -> WireResult<Self> {
        let version = json.field("version")?.as_i64()?;
        if version != SNAPSHOT_VERSION {
            return Err(WireError::new(format!(
                "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
            )));
        }
        Ok(SessionSnapshot {
            database: std::sync::Arc::new(Database::from_json(json.field("database")?)?),
            result: std::sync::Arc::new(QueryResult::from_json(json.field("result")?)?),
            candidates: Vec::<SpjQuery>::from_json(json.field("candidates")?)?,
            params: CostParams::from_json(json.field("params")?)?,
            max_iterations: json.field("max_iterations")?.as_usize()?,
            query_generation_time: FromJson::from_json(json.field("query_generation_time")?)?,
            remaining: Vec::from_json(json.field("remaining")?)?,
            iterations: Vec::from_json(json.field("iterations")?)?,
            pending: Option::from_json(json.field("pending")?)?,
            rejected: json.field("rejected")?.as_bool()?,
            indistinguishable: json.field("indistinguishable")?.as_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn roundtrip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: &T) {
        let text = v.to_json_string();
        let back = T::from_json_str(&text).unwrap();
        assert_eq!(&back, v, "roundtrip through {text}");
    }

    #[test]
    fn cost_params_roundtrip() {
        roundtrip(&CostParams::default());
        roundtrip(
            &CostParams::default()
                .with_beta(2.5)
                .with_skyline_budget(Duration::from_millis(125))
                .with_estimator(IterationEstimator::Simple)
                .with_model(CostModelKind::MaxPartitions),
        );
        assert!(IterationEstimator::from_json_str("\"clever\"").is_err());
        assert!(CostModelKind::from_json_str("\"min_regret\"").is_err());
    }

    #[test]
    fn iteration_stats_roundtrip() {
        let stats = IterationStats {
            iteration: 2,
            candidate_count: 19,
            group_count: 3,
            skyline_pairs: 41,
            execution_time: Duration::from_micros(1234),
            skyline_time: Duration::from_micros(900),
            pick_time: Duration::from_micros(200),
            modify_time: Duration::from_micros(134),
            db_cost: 2,
            result_cost: 7,
            modified_relations: 1,
            modified_tuples: 2,
            user_time: Duration::from_secs(5),
        };
        roundtrip(&stats);
    }

    #[test]
    fn split_snapshots_reassemble_exactly() {
        use crate::driver::QfeSession;
        use qfe_datasets::example_1_1;

        let (db, result, candidates, _) = example_1_1();
        let session = QfeSession::builder(db, result)
            .with_candidates(candidates)
            .build()
            .unwrap();
        let mut engine = session.start();
        let _ = engine.step().unwrap(); // snapshot mid-round: pending survives
        let snapshot = engine.snapshot();

        let (workload, state) = snapshot.split();
        // The workload half is canonical: same pair, same text, same address.
        let text = workload.canonical_text();
        assert_eq!(
            qfe_wire::content_hash(&text),
            qfe_wire::content_hash(&workload.canonical_text())
        );
        // The state half no longer embeds the database tables.
        assert!(state.get("database").is_none());
        assert!(state.get("result").is_none());

        let workload_back = WorkloadPayload::from_json_str(&text).unwrap();
        assert_eq!(workload_back, workload);
        let back = SessionSnapshot::from_parts(workload_back, &state).unwrap();
        assert_eq!(back, snapshot);
        // Whole-snapshot serialization is unaffected by the split.
        assert_eq!(back.serialize(), snapshot.serialize());

        let mut bad = state.clone();
        if let Json::Object(pairs) = &mut bad {
            pairs[0].1 = Json::Int(99);
        }
        let workload = SessionSnapshot::from_parts(snapshot.split().0, &bad);
        assert!(workload.unwrap_err().to_string().contains("version 99"));
    }

    #[test]
    fn deltas_roundtrip() {
        use qfe_relation::{tuple, Value};
        let delta = ResultDelta {
            removed: vec![tuple!["Bob"]],
            added: vec![tuple!["Eve"], tuple!["Mallory"]],
        };
        let text = delta.to_json_string();
        let back = ResultDelta::from_json_str(&text).unwrap();
        assert_eq!(back.removed, delta.removed);
        assert_eq!(back.added, delta.added);

        let db_delta = DatabaseDelta {
            edits: vec![EditOp::ModifyCell {
                table: "Employee".into(),
                row: 1,
                column: "salary".into(),
                old: Value::Int(4200),
                new: Value::Int(3900),
            }],
        };
        let back = DatabaseDelta::from_json_str(&db_delta.to_json_string()).unwrap();
        assert_eq!(back.edits, db_delta.edits);
    }
}
