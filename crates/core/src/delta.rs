//! Presentation of differences: `Δ(D, D')` and `Δ(R, R_i)`.
//!
//! The Result Feedback module does not show the user the entire modified
//! database and candidate results; it shows their *differences* from the
//! original pair `(D, R)` the user already knows (Section 2, Figure 1).

use std::fmt;

use qfe_query::QueryResult;
use qfe_relation::{diff_tables, Database, EditOp, Tuple};

/// The difference between the original database `D` and a modified `D'`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatabaseDelta {
    /// The edits, grouped in table order.
    pub edits: Vec<EditOp>,
}

impl DatabaseDelta {
    /// Computes the delta between two databases (cell modifications, inserts
    /// and deletes per table).
    pub fn between(original: &Database, modified: &Database) -> Self {
        let mut edits = Vec::new();
        for table in original.tables() {
            if let Ok(modified_table) = modified.table(table.name()) {
                edits.extend(diff_tables(table, modified_table));
            }
        }
        DatabaseDelta { edits }
    }

    /// Total edit cost of the delta under the paper's model.
    pub fn cost(&self, original: &Database) -> usize {
        self.edits
            .iter()
            .map(|e| {
                let arity = original.table(e.table()).map(|t| t.arity()).unwrap_or(1);
                e.cost(arity)
            })
            .sum()
    }

    /// Number of edits.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// True when the databases are identical.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }
}

impl fmt::Display for DatabaseDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.edits.is_empty() {
            return writeln!(f, "(no database changes)");
        }
        for e in &self.edits {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

/// The difference between the original result `R` and one candidate result
/// `R_i` on the modified database.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultDelta {
    /// Rows of `R` that are absent from `R_i`.
    pub removed: Vec<Tuple>,
    /// Rows of `R_i` that are absent from `R`.
    pub added: Vec<Tuple>,
}

impl ResultDelta {
    /// Computes the delta between two results (multiset difference).
    pub fn between(original: &QueryResult, candidate: &QueryResult) -> Self {
        let (removed, added) = original.symmetric_difference(candidate);
        ResultDelta { removed, added }
    }

    /// The delta's edit cost: the minimum edit cost between the two results
    /// restricted to the changed rows.
    pub fn cost(&self, arity: usize) -> usize {
        qfe_relation::min_edit_rows(&self.removed, &self.added, arity)
    }

    /// True when the results are identical.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

impl fmt::Display for ResultDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "  (same as the original result)");
        }
        for r in &self.removed {
            writeln!(f, "  - {r}")?;
        }
        for a in &self.added {
            writeln!(f, "  + {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_relation::{tuple, ColumnDef, DataType, Table, TableSchema, Value};

    fn db() -> Database {
        let t = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![tuple![1i64, "Alice", 3700i64], tuple![2i64, "Bob", 4200i64]],
        )
        .unwrap();
        let mut d = Database::new();
        d.add_table(t).unwrap();
        d
    }

    #[test]
    fn database_delta_reports_cell_modifications() {
        let original = db();
        let mut modified = original.clone();
        modified
            .table_mut("Employee")
            .unwrap()
            .update_cell(1, "salary", Value::Int(3900))
            .unwrap();
        let delta = DatabaseDelta::between(&original, &modified);
        assert_eq!(delta.len(), 1);
        assert!(!delta.is_empty());
        assert_eq!(delta.cost(&original), 1);
        let text = delta.to_string();
        assert!(text.contains("salary"));
        assert!(text.contains("4200"));
        assert!(text.contains("3900"));
    }

    #[test]
    fn identical_databases_have_empty_delta() {
        let original = db();
        let delta = DatabaseDelta::between(&original, &original.clone());
        assert!(delta.is_empty());
        assert_eq!(delta.cost(&original), 0);
        assert!(delta.to_string().contains("no database changes"));
    }

    #[test]
    fn result_delta_reports_added_and_removed_rows() {
        let r = QueryResult::new(
            vec!["name".to_string()],
            vec![tuple!["Bob"], tuple!["Darren"]],
        );
        let r2 = QueryResult::new(vec!["name".to_string()], vec![tuple!["Darren"]]);
        let delta = ResultDelta::between(&r, &r2);
        assert_eq!(delta.removed, vec![tuple!["Bob"]]);
        assert!(delta.added.is_empty());
        assert_eq!(delta.cost(1), 1);
        assert!(delta.to_string().contains("- (Bob)"));

        let same = ResultDelta::between(&r, &r);
        assert!(same.is_empty());
        assert!(same.to_string().contains("same as the original"));
    }
}
