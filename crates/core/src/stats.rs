//! Per-iteration statistics and session reports.
//!
//! These are the quantities the paper reports in its evaluation (Tables 1–7):
//! the number of candidate queries and query subsets per round, the number of
//! skyline tuple-class pairs, the execution time of each module, and the
//! database/result modification costs.

use std::fmt;
use std::time::Duration;

/// Statistics of one feedback iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Number of candidate queries at the start of the iteration.
    pub candidate_count: usize,
    /// Number of query subsets the generated database partitions them into.
    pub group_count: usize,
    /// Number of skyline tuple-class pairs enumerated by Algorithm 3.
    pub skyline_pairs: usize,
    /// Total machine time of the iteration (database generation + applying
    /// the modification). The first iteration additionally includes the
    /// candidate-query generation time, mirroring the paper's accounting.
    pub execution_time: Duration,
    /// Time spent in Algorithm 3 (skyline enumeration).
    pub skyline_time: Duration,
    /// Time spent in Algorithm 4 (subset selection).
    pub pick_time: Duration,
    /// Time spent applying the modification and re-partitioning.
    pub modify_time: Duration,
    /// `dbCost`: `minEdit(D, D')` for this round's modified database.
    pub db_cost: usize,
    /// `resultCost`: `Σ_i minEdit(R, R_i)` over the presented results.
    pub result_cost: usize,
    /// Number of relations modified.
    pub modified_relations: usize,
    /// Number of base tuples modified.
    pub modified_tuples: usize,
    /// Simulated or measured user response time for this round.
    pub user_time: Duration,
}

impl IterationStats {
    /// `avgResultCost`: the result modification cost averaged over the number
    /// of presented results.
    pub fn avg_result_cost(&self) -> f64 {
        if self.group_count == 0 {
            0.0
        } else {
            self.result_cost as f64 / self.group_count as f64
        }
    }

    /// The round's total modification cost (database plus results).
    pub fn modification_cost(&self) -> usize {
        self.db_cost + self.result_cost
    }
}

/// The full record of one QFE session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionReport {
    /// Time spent generating the initial candidate queries (Query Generator).
    pub query_generation_time: Duration,
    /// Number of initial candidate queries.
    pub initial_candidates: usize,
    /// Per-iteration statistics, in order.
    pub iterations: Vec<IterationStats>,
}

impl SessionReport {
    /// Number of feedback iterations.
    pub fn iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Total machine execution time across all iterations (including query
    /// generation, which the paper folds into the first iteration).
    pub fn total_execution_time(&self) -> Duration {
        self.iterations.iter().map(|i| i.execution_time).sum()
    }

    /// Total simulated/measured user response time.
    pub fn total_user_time(&self) -> Duration {
        self.iterations.iter().map(|i| i.user_time).sum()
    }

    /// Total modification cost (database and result modifications) across all
    /// iterations — the quantity reported in Tables 2, 3 and 6.
    pub fn total_modification_cost(&self) -> usize {
        self.iterations.iter().map(|i| i.modification_cost()).sum()
    }

    /// Total database modification cost across all iterations.
    pub fn total_db_cost(&self) -> usize {
        self.iterations.iter().map(|i| i.db_cost).sum()
    }

    /// Total result modification cost across all iterations.
    pub fn total_result_cost(&self) -> usize {
        self.iterations.iter().map(|i| i.result_cost).sum()
    }

    /// Average database modification cost per round.
    pub fn avg_db_cost_per_round(&self) -> f64 {
        if self.iterations.is_empty() {
            0.0
        } else {
            self.total_db_cost() as f64 / self.iterations.len() as f64
        }
    }

    /// Average result modification cost per presented result set.
    pub fn avg_result_cost_per_result_set(&self) -> f64 {
        let sets: usize = self.iterations.iter().map(|i| i.group_count).sum();
        if sets == 0 {
            0.0
        } else {
            self.total_result_cost() as f64 / sets as f64
        }
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "QFE session: {} candidate queries, {} iterations, total machine time {:.2?}, total modification cost {}",
            self.initial_candidates,
            self.iterations(),
            self.total_execution_time(),
            self.total_modification_cost()
        )?;
        writeln!(
            f,
            "{:<5} {:>9} {:>9} {:>9} {:>10} {:>8} {:>11} {:>14}",
            "iter",
            "#queries",
            "#subsets",
            "#skyline",
            "time(ms)",
            "dbCost",
            "resultCost",
            "avgResultCost"
        )?;
        for it in &self.iterations {
            writeln!(
                f,
                "{:<5} {:>9} {:>9} {:>9} {:>10.1} {:>8} {:>11} {:>14.1}",
                it.iteration,
                it.candidate_count,
                it.group_count,
                it.skyline_pairs,
                it.execution_time.as_secs_f64() * 1000.0,
                it.db_cost,
                it.result_cost,
                it.avg_result_cost()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(
        iteration: usize,
        db_cost: usize,
        result_cost: usize,
        groups: usize,
    ) -> IterationStats {
        IterationStats {
            iteration,
            candidate_count: 19,
            group_count: groups,
            skyline_pairs: 50,
            execution_time: Duration::from_millis(100),
            skyline_time: Duration::from_millis(60),
            pick_time: Duration::from_millis(20),
            modify_time: Duration::from_millis(20),
            db_cost,
            result_cost,
            modified_relations: 1,
            modified_tuples: db_cost,
            user_time: Duration::from_secs(5),
        }
    }

    #[test]
    fn iteration_derived_quantities() {
        let it = stats(1, 2, 12, 2);
        assert_eq!(it.avg_result_cost(), 6.0);
        assert_eq!(it.modification_cost(), 14);
        let empty_groups = IterationStats {
            group_count: 0,
            ..stats(1, 1, 1, 1)
        };
        assert_eq!(empty_groups.avg_result_cost(), 0.0);
    }

    #[test]
    fn report_aggregates() {
        let report = SessionReport {
            query_generation_time: Duration::from_millis(500),
            initial_candidates: 19,
            iterations: vec![stats(1, 1, 12, 2), stats(2, 2, 11, 2), stats(3, 8, 80, 8)],
        };
        assert_eq!(report.iterations(), 3);
        assert_eq!(report.total_db_cost(), 11);
        assert_eq!(report.total_result_cost(), 103);
        assert_eq!(report.total_modification_cost(), 114);
        assert_eq!(report.total_execution_time(), Duration::from_millis(300));
        assert_eq!(report.total_user_time(), Duration::from_secs(15));
        assert!((report.avg_db_cost_per_round() - 11.0 / 3.0).abs() < 1e-9);
        assert!((report.avg_result_cost_per_result_set() - 103.0 / 12.0).abs() < 1e-9);
        let text = report.to_string();
        assert!(text.contains("3 iterations"));
        assert!(text.contains("dbCost"));
    }

    #[test]
    fn empty_report_is_harmless() {
        let report = SessionReport::default();
        assert_eq!(report.iterations(), 0);
        assert_eq!(report.total_modification_cost(), 0);
        assert_eq!(report.avg_db_cost_per_round(), 0.0);
        assert_eq!(report.avg_result_cost_per_result_set(), 0.0);
    }
}
