//! Algorithm 1: the QFE driver loop.
//!
//! Wires together the Query Generator, the Database Generator and the Result
//! Feedback module: starting from the user's example pair `(D, R)` and the
//! generated candidate set `QC`, each iteration presents a modified database
//! and the candidate results on it, prunes the candidates inconsistent with
//! the user's choice, and repeats until a single query remains.

use std::time::{Duration, Instant};

use qfe_qbo::{QboConfig, QueryGenerator};
use qfe_query::{QueryResult, SpjQuery};
use qfe_relation::Database;

use crate::cost::CostParams;
use crate::engine::{QfeEngine, Step};
use crate::error::{QfeError, Result};
use crate::feedback::FeedbackUser;
use crate::stats::SessionReport;

/// Default cap on feedback iterations (a safety net far above anything the
/// evaluation workloads need; the loop normally terminates when one candidate
/// remains).
pub const DEFAULT_MAX_ITERATIONS: usize = 64;

/// A configured QFE session: the example pair, the candidate queries and the
/// generator parameters.
#[derive(Debug, Clone)]
pub struct QfeSession {
    database: Database,
    result: QueryResult,
    candidates: Vec<SpjQuery>,
    params: CostParams,
    max_iterations: usize,
    query_generation_time: Duration,
}

/// The outcome of a QFE session: the identified query and the session record.
#[derive(Debug, Clone)]
pub struct QfeOutcome {
    /// The target query identified by the feedback loop.
    pub query: SpjQuery,
    /// When the feedback loop could not separate the last survivors — the
    /// database generator certified that no valid modification distinguishes
    /// them — this holds the whole equivalence class (including `query`,
    /// which is its deterministically chosen representative). Empty when the
    /// loop narrowed the candidates to a single query.
    pub indistinguishable: Vec<SpjQuery>,
    /// Per-iteration statistics.
    pub report: SessionReport,
}

impl QfeOutcome {
    /// True when the loop terminated on a single query rather than an
    /// equivalence class of indistinguishable survivors.
    pub fn fully_identified(&self) -> bool {
        self.indistinguishable.is_empty()
    }
}

/// Builder for [`QfeSession`].
#[derive(Debug, Clone)]
pub struct QfeSessionBuilder {
    database: Database,
    result: QueryResult,
    candidates: Option<Vec<SpjQuery>>,
    ensure_candidate: Option<SpjQuery>,
    generator_config: QboConfig,
    params: CostParams,
    max_iterations: usize,
}

impl QfeSession {
    /// Starts building a session from the example database-result pair.
    pub fn builder(database: Database, result: QueryResult) -> QfeSessionBuilder {
        QfeSessionBuilder {
            database,
            result,
            candidates: None,
            ensure_candidate: None,
            generator_config: QboConfig::default(),
            params: CostParams::default(),
            max_iterations: DEFAULT_MAX_ITERATIONS,
        }
    }

    /// The candidate queries the session starts from.
    pub fn candidates(&self) -> &[SpjQuery] {
        &self.candidates
    }

    /// The example database `D`.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The example result `R`.
    pub fn original_result(&self) -> &QueryResult {
        &self.result
    }

    /// The cost-model parameters in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// The iteration safety cap.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    pub(crate) fn query_generation_time(&self) -> Duration {
        self.query_generation_time
    }

    /// Starts the session as a sans-IO state machine: the returned engine
    /// yields each [`FeedbackRound`](crate::FeedbackRound) from
    /// [`QfeEngine::step`] and is advanced by [`QfeEngine::answer`]. Use this
    /// instead of [`QfeSession::run`] whenever the answering side is a real
    /// user, another process, or anything else that must not be blocked on.
    pub fn start(&self) -> QfeEngine {
        QfeEngine::from_session(self)
    }

    /// Runs the feedback loop (Algorithm 1) against the given user.
    ///
    /// This is a thin synchronous loop over [`QfeSession::start`]: step the
    /// engine, ask `user` to choose, feed the answer back. Blocking callers
    /// with automated responders keep using this; interactive front ends
    /// should drive the engine directly.
    pub fn run(&self, user: &dyn FeedbackUser) -> Result<QfeOutcome> {
        let mut engine = self.start();
        loop {
            match engine.step()? {
                Step::Done(outcome) => return Ok(outcome),
                Step::AwaitFeedback(round) => {
                    let chosen = user.choose(&round);
                    let user_time = user.response_time(&round, chosen);
                    match chosen {
                        Some(idx) => engine.answer_timed(idx, user_time)?,
                        // The next step() surfaces TargetNotInCandidates.
                        None => engine.reject_timed(user_time)?,
                    }
                }
            }
        }
    }
}

impl QfeSessionBuilder {
    /// Uses an explicit candidate set instead of running the query generator.
    pub fn with_candidates(mut self, candidates: Vec<SpjQuery>) -> Self {
        self.candidates = Some(candidates);
        self
    }

    /// Ensures the given query is among the candidates (appending it when the
    /// generator's bounded search misses it). The query must reproduce the
    /// example result.
    pub fn ensure_candidate(mut self, query: SpjQuery) -> Self {
        self.ensure_candidate = Some(query);
        self
    }

    /// Configures the candidate-query generator.
    pub fn with_generator_config(mut self, config: QboConfig) -> Self {
        self.generator_config = config;
        self
    }

    /// Configures the cost-model parameters (β, δ, estimator, objective).
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the iteration safety cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Builds the session: runs the Query Generator when no explicit
    /// candidates were supplied.
    pub fn build(self) -> Result<QfeSession> {
        let generation_start = Instant::now();
        let mut candidates = match self.candidates {
            Some(c) => c,
            None => {
                let generator = QueryGenerator::new(self.generator_config.clone());
                match &self.ensure_candidate {
                    Some(target) => {
                        generator.generate_including(&self.database, &self.result, target)?
                    }
                    None => generator.generate(&self.database, &self.result)?,
                }
            }
        };
        // When explicit candidates were supplied, still honour
        // ensure_candidate. Deduplicate structurally — rendered SQL text can
        // differ for the same query (labels, spacing), which would smuggle a
        // duplicate candidate in and cost the user an extra feedback round.
        if let Some(target) = &self.ensure_candidate {
            if !candidates.iter().any(|q| q.same_query(target)) {
                candidates.push(target.clone());
            }
        }
        let query_generation_time = generation_start.elapsed();
        if candidates.is_empty() {
            return Err(QfeError::NoCandidates);
        }
        Ok(QfeSession {
            database: self.database,
            result: self.result,
            candidates,
            params: self.params,
            max_iterations: self.max_iterations,
            query_generation_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::{OracleUser, WorstCaseUser};
    use qfe_query::{evaluate, ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, Table, TableSchema};

    fn employee_db() -> Database {
        let t = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(t).unwrap();
        db
    }

    fn example_candidates() -> Vec<SpjQuery> {
        let q = |label: &str, p| SpjQuery::new(vec!["Employee"], vec!["name"], p).with_label(label);
        vec![
            q("Q1", DnfPredicate::single(Term::eq("gender", "M"))),
            q(
                "Q2",
                DnfPredicate::single(Term::compare("salary", ComparisonOp::Gt, 4000i64)),
            ),
            q("Q3", DnfPredicate::single(Term::eq("dept", "IT"))),
        ]
    }

    fn example_result(db: &Database) -> QueryResult {
        evaluate(&example_candidates()[0], db).unwrap()
    }

    #[test]
    fn example_1_1_oracle_identifies_each_target_within_two_rounds() {
        let db = employee_db();
        let result = example_result(&db);
        for target in example_candidates() {
            let session = QfeSession::builder(db.clone(), result.clone())
                .with_candidates(example_candidates())
                .build()
                .unwrap();
            let outcome = session.run(&OracleUser::new(target.clone())).unwrap();
            assert_eq!(outcome.query.label, target.label, "wrong query identified");
            assert!(
                outcome.report.iterations() <= 2,
                "Example 1.1 needs at most two rounds, took {}",
                outcome.report.iterations()
            );
            // Each round of Example 1.1 modifies at most two database
            // attributes of the single relation.
            for it in &outcome.report.iterations {
                assert!(it.db_cost <= 2);
                assert_eq!(it.modified_relations, 1);
            }
        }
    }

    #[test]
    fn worst_case_user_also_terminates() {
        let db = employee_db();
        let result = example_result(&db);
        let session = QfeSession::builder(db, result)
            .with_candidates(example_candidates())
            .build()
            .unwrap();
        let outcome = session.run(&WorstCaseUser).unwrap();
        assert!(outcome.report.iterations() >= 1);
        assert!(outcome.report.iterations() <= 3);
        assert_eq!(outcome.report.initial_candidates, 3);
        assert!(outcome.report.total_modification_cost() > 0);
    }

    #[test]
    fn generated_candidates_are_used_when_none_supplied() {
        let db = employee_db();
        let result = example_result(&db);
        let target = example_candidates().remove(1);
        let session = QfeSession::builder(db, result)
            .ensure_candidate(target.clone())
            .build()
            .unwrap();
        assert!(session.candidates().len() >= 3);
        assert!(session.params().beta >= 1.0);
        assert!(session.database().has_table("Employee"));
        assert_eq!(session.original_result().len(), 2);
        let outcome = session.run(&OracleUser::new(target.clone())).unwrap();
        // The identified query must be equivalent to the target on the
        // original database — and because the oracle drives feedback on every
        // generated database, equivalent on all of those too.
        assert_eq!(
            evaluate(&outcome.query, session.database())
                .unwrap()
                .fingerprint(),
            evaluate(&target, session.database()).unwrap().fingerprint()
        );
    }

    #[test]
    fn target_outside_candidates_is_reported() {
        let db = employee_db();
        let result = example_result(&db);
        let session = QfeSession::builder(db.clone(), result)
            .with_candidates(example_candidates())
            .build()
            .unwrap();
        // A target query outside QC: name = 'Bob' OR name = 'Darren'.
        let outside = SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::new(vec![
                qfe_query::Conjunct::new(vec![Term::eq("name", "Bob")]),
                qfe_query::Conjunct::new(vec![Term::eq("name", "Darren")]),
            ]),
        );
        let err = session.run(&OracleUser::new(outside));
        // Depending on which modification is generated, the oracle either
        // reports "none of these" (target not in QC) immediately or after a
        // round; either way it must not silently return a wrong query unless
        // that query is genuinely indistinguishable from the target.
        match err {
            Err(QfeError::TargetNotInCandidates) => {}
            Ok(outcome) => {
                // If a query was returned, it must agree with the target on
                // every database QFE showed the user (the oracle approved
                // every round), so in particular on the original database.
                let r1 = evaluate(&outcome.query, &db).unwrap();
                assert_eq!(r1.len(), 2);
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn empty_candidate_set_is_rejected() {
        let db = employee_db();
        let result = example_result(&db);
        let err = QfeSession::builder(db, result)
            .with_candidates(Vec::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, QfeError::NoCandidates));
    }

    #[test]
    fn single_candidate_terminates_immediately() {
        let db = employee_db();
        let result = example_result(&db);
        let only = example_candidates().remove(0);
        let session = QfeSession::builder(db, result)
            .with_candidates(vec![only.clone()])
            .build()
            .unwrap();
        let outcome = session.run(&WorstCaseUser).unwrap();
        assert_eq!(outcome.report.iterations(), 0);
        assert_eq!(outcome.query.label, only.label);
    }

    #[test]
    fn builder_options_are_respected() {
        let db = employee_db();
        let result = example_result(&db);
        let session = QfeSession::builder(db, result)
            .with_candidates(example_candidates())
            .with_params(CostParams::default().with_beta(4.0))
            .with_max_iterations(7)
            .build()
            .unwrap();
        assert_eq!(session.params().beta, 4.0);
        assert_eq!(session.max_iterations, 7);
    }
}
