//! Tuple classes (Section 5.1 of the paper).
//!
//! Given the joined relation `T` and the candidate queries `QC`, each
//! selection-predicate attribute's domain is partitioned into blocks
//! ([`crate::domain`]); a *tuple class* assigns one block to every selection
//! attribute.  Every tuple of `T` belongs to exactly one class, and — by
//! construction of the blocks — all tuples of a class satisfy exactly the
//! same candidate queries.  Database modifications are reasoned about as
//! (source-class, destination-class) pairs before being realized as concrete
//! tuple edits.

use std::collections::{BTreeMap, BTreeSet};

use qfe_query::{BoundQuery, SpjQuery};
use qfe_relation::{JoinedRelation, Tuple, Value};

use crate::domain::{partition_categorical_domain, partition_numeric_domain_for, DomainBlock};
use crate::error::{QfeError, Result};

/// A tuple class: the block index chosen for each selection attribute, in
/// [`TupleClassSpace::attributes`] order.
pub type TupleClass = Vec<usize>;

/// One selection-predicate attribute together with its domain partition.
#[derive(Debug, Clone)]
pub struct SelectionAttribute {
    /// Column index in the joined relation.
    pub column: usize,
    /// Canonical (qualified) column reference.
    pub reference: String,
    /// Base table the column belongs to.
    pub table: String,
    /// Base-table column name.
    pub base_column: String,
    /// The attribute's domain partition `P_QC(A)`.
    pub blocks: Vec<DomainBlock>,
}

/// The space of tuple classes for one joined relation and candidate set.
#[derive(Debug, Clone)]
pub struct TupleClassSpace {
    attributes: Vec<SelectionAttribute>,
}

impl TupleClassSpace {
    /// Builds the tuple-class space: resolves every selection-predicate
    /// attribute of `queries` against `join` and partitions its domain.
    pub fn build(join: &JoinedRelation, queries: &[SpjQuery]) -> Result<Self> {
        let domains = Self::active_domains(join, queries)?;
        Self::build_with_domains(join, queries, &domains)
    }

    /// The active domains of every selection-predicate column of `queries`,
    /// computed from `join`. [`Self::build_with_domains`] accepts the result,
    /// which lets callers cache the (join-scan) domain computation across
    /// incrementally advanced contexts.
    pub fn active_domains(
        join: &JoinedRelation,
        queries: &[SpjQuery],
    ) -> Result<BTreeMap<usize, Vec<Value>>> {
        Self::active_domains_with(join, queries, |col| join.active_domain(col))
    }

    /// [`Self::active_domains`] with the per-column domain computation
    /// supplied by the caller — `domain_of(col)` must return exactly what
    /// `join.active_domain(col)` would. [`GenerationContext`](crate::GenerationContext)
    /// passes the columnar mirror's
    /// [`active_domain`](qfe_relation::ColumnarJoin::active_domain), which
    /// reads sorted dictionaries and typed vectors instead of cloning and
    /// sorting boxed row values.
    pub fn active_domains_with(
        join: &JoinedRelation,
        queries: &[SpjQuery],
        domain_of: impl Fn(usize) -> Vec<Value>,
    ) -> Result<BTreeMap<usize, Vec<Value>>> {
        let mut domains = BTreeMap::new();
        for q in queries {
            for term in q.predicate.all_terms() {
                let col = join
                    .resolve_column(term.attribute())
                    .map_err(QfeError::from)?;
                domains.entry(col).or_insert_with(|| domain_of(col));
            }
        }
        Ok(domains)
    }

    /// [`Self::build`] with the per-column active domains supplied by the
    /// caller (they must match what `join.active_domain` would return).
    pub fn build_with_domains(
        join: &JoinedRelation,
        queries: &[SpjQuery],
        domains: &BTreeMap<usize, Vec<Value>>,
    ) -> Result<Self> {
        // Group predicate terms by resolved column index.
        let mut terms_by_col: BTreeMap<usize, Vec<qfe_query::Term>> = BTreeMap::new();
        for q in queries {
            for term in q.predicate.all_terms() {
                let col = join
                    .resolve_column(term.attribute())
                    .map_err(QfeError::from)?;
                terms_by_col.entry(col).or_default().push(term.clone());
            }
        }
        let mut attributes = Vec::with_capacity(terms_by_col.len());
        for (col, terms) in terms_by_col {
            let meta = join.column_at(col).ok_or_else(|| QfeError::Internal {
                message: format!("column {col} out of range"),
            })?;
            let active_domain = domains
                .get(&col)
                .cloned()
                .unwrap_or_else(|| join.active_domain(col));
            let term_refs: Vec<&qfe_query::Term> = terms.iter().collect();
            let blocks = if meta.data_type.is_numeric() {
                partition_numeric_domain_for(&term_refs, &active_domain, meta.data_type)
            } else {
                partition_categorical_domain(&term_refs, &active_domain)
            };
            attributes.push(SelectionAttribute {
                column: col,
                reference: meta.qualified_name(),
                table: meta.table.clone(),
                base_column: meta.column.clone(),
                blocks,
            });
        }
        Ok(TupleClassSpace { attributes })
    }

    /// The selection attributes, in canonical order.
    pub fn attributes(&self) -> &[SelectionAttribute] {
        &self.attributes
    }

    /// Number of selection attributes (the `n` of Algorithm 3).
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }

    /// The maximum number of domain blocks over all attributes (the `k` of
    /// the paper's complexity analysis).
    pub fn max_blocks(&self) -> usize {
        self.attributes
            .iter()
            .map(|a| a.blocks.len())
            .max()
            .unwrap_or(0)
    }

    /// Classifies a joined tuple, returning the block index per attribute.
    /// Returns `None` when some selection attribute's value does not belong
    /// to any block (e.g. NULL).
    pub fn classify(&self, tuple: &Tuple) -> Option<TupleClass> {
        let mut class = Vec::with_capacity(self.attributes.len());
        for attr in &self.attributes {
            let value = tuple.get(attr.column)?;
            let block = attr.blocks.iter().position(|b| b.contains(value))?;
            class.push(block);
        }
        Some(class)
    }

    /// Groups the join's rows by tuple class (the source-tuple classes, STC).
    pub fn source_classes(&self, join: &JoinedRelation) -> BTreeMap<TupleClass, Vec<usize>> {
        let mut classes: BTreeMap<TupleClass, Vec<usize>> = BTreeMap::new();
        for (i, row) in join.rows().iter().enumerate() {
            if let Some(class) = self.classify(&row.tuple) {
                classes.entry(class).or_default().push(i);
            }
        }
        classes
    }

    /// Representative `(column, value)` assignments of a class, one per
    /// selection attribute.
    pub fn representative_values(&self, class: &TupleClass) -> Vec<(usize, Value)> {
        self.attributes
            .iter()
            .zip(class.iter())
            .map(|(attr, &b)| (attr.column, attr.blocks[b].representative().clone()))
            .collect()
    }

    /// Whether a tuple of the given class matches a (bound) candidate query.
    ///
    /// The query's predicate attributes are all selection attributes of the
    /// space, so evaluating the predicate over the class's representative
    /// values is exact (every value of a block has the same truth value for
    /// every term).
    pub fn class_matches(&self, class: &TupleClass, query: &BoundQuery) -> bool {
        let rep: BTreeMap<usize, Value> = self.representative_values(class).into_iter().collect();
        // Build a pseudo-tuple covering only the needed columns: the widest
        // column index determines the length.
        let width = query
            .attribute_indices()
            .iter()
            .map(|(_, c)| *c + 1)
            .chain(rep.keys().map(|c| c + 1))
            .max()
            .unwrap_or(0);
        let mut values = vec![Value::Null; width];
        for (col, v) in &rep {
            values[*col] = v.clone();
        }
        query.matches_row(&Tuple::new(values))
    }

    /// The attribute positions (indices into [`Self::attributes`]) on which
    /// two classes differ.
    pub fn changed_attributes(&self, a: &TupleClass, b: &TupleClass) -> Vec<usize> {
        a.iter()
            .zip(b.iter())
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, _)| i)
            .collect()
    }

    /// Enumerates destination classes derived from `source` by changing
    /// exactly `modify_count` attributes, restricted to attribute positions
    /// marked modifiable. Each destination is returned together with the
    /// changed positions.
    ///
    /// This is the collecting wrapper around
    /// [`Self::for_each_destination_class`]; hot paths should prefer the
    /// visitor, which enumerates without allocating per destination.
    pub fn destination_classes(
        &self,
        source: &TupleClass,
        modify_count: usize,
        modifiable: &[bool],
    ) -> Vec<(TupleClass, Vec<usize>)> {
        let mut out = Vec::new();
        let _ =
            self.for_each_destination_class(source, modify_count, modifiable, |class, changed| {
                out.push((class.to_vec(), changed.to_vec()));
                std::ops::ControlFlow::Continue(())
            });
        out
    }

    /// Visits every destination class derived from `source` by changing
    /// exactly `modify_count` modifiable attribute positions, in the same
    /// order as [`Self::destination_classes`] (changed-position combinations
    /// lexicographically; within a combination, later positions vary
    /// fastest, block indices ascending and skipping the source block).
    ///
    /// The visitor receives a *scratch* class and the changed positions; it
    /// must clone them if it keeps them. Returning
    /// [`ControlFlow::Break`](std::ops::ControlFlow::Break) stops the
    /// enumeration early (e.g. on a time budget); the final return value
    /// propagates whether the enumeration ran to completion.
    pub fn for_each_destination_class<F>(
        &self,
        source: &TupleClass,
        modify_count: usize,
        modifiable: &[bool],
        visit: F,
    ) -> std::ops::ControlFlow<()>
    where
        F: FnMut(&TupleClass, &[usize]) -> std::ops::ControlFlow<()>,
    {
        self.for_each_destination_class_in_combos(
            source,
            modify_count,
            modifiable,
            0..usize::MAX,
            visit,
        )
    }

    /// The number of changed-position combinations
    /// [`Self::for_each_destination_class`] walks for one source at one cost
    /// level: `C(modifiable positions, modify_count)`. The unit of the
    /// skyline's sub-source work sharding.
    pub fn destination_combo_count(&self, modify_count: usize, modifiable: &[bool]) -> usize {
        let n = (0..self.attributes.len())
            .filter(|&i| modifiable.get(i).copied().unwrap_or(true))
            .count();
        if modify_count == 0 || modify_count > n {
            return 0;
        }
        // C(n, k), saturating (attribute counts are tiny in practice).
        let mut c: usize = 1;
        for i in 1..=modify_count {
            c = c.saturating_mul(n - modify_count + i) / i;
        }
        c
    }

    /// [`Self::for_each_destination_class`] restricted to the changed-position
    /// combinations with (lexicographic) index in `combos` — the enumeration
    /// order is exactly the corresponding contiguous slice of the full
    /// enumeration, so walking `0..a`, `a..b`, `b..` in turn visits every
    /// destination once, in the full order. This is how the parallel skyline
    /// shards a single skewed source class across workers without giving up
    /// its deterministic merge.
    pub fn for_each_destination_class_in_combos<F>(
        &self,
        source: &TupleClass,
        modify_count: usize,
        modifiable: &[bool],
        combos: std::ops::Range<usize>,
        mut visit: F,
    ) -> std::ops::ControlFlow<()>
    where
        F: FnMut(&TupleClass, &[usize]) -> std::ops::ControlFlow<()>,
    {
        use std::ops::ControlFlow;

        let positions: Vec<usize> = (0..self.attributes.len())
            .filter(|&i| modifiable.get(i).copied().unwrap_or(true))
            .collect();
        if modify_count == 0 || modify_count > positions.len() || combos.is_empty() {
            return ControlFlow::Continue(());
        }
        // One scratch class mutated in place; one scratch combination buffer.
        let mut scratch: TupleClass = source.clone();
        let mut chosen: Vec<usize> = vec![0; modify_count];
        let mut alt: Vec<usize> = vec![0; modify_count];
        let mut combo: Vec<usize> = (0..modify_count).collect();
        let mut combo_idx: usize = 0;
        'combos: loop {
            if combo_idx >= combos.end {
                break 'combos;
            }
            let in_range = combo_idx >= combos.start;
            combo_idx += 1;
            if !in_range {
                // Skip to the next combination without enumerating blocks.
                if !advance_combination(&mut combo, positions.len()) {
                    break 'combos;
                }
                continue 'combos;
            }
            for (slot, &ci) in combo.iter().enumerate() {
                chosen[slot] = positions[ci];
            }
            // Initialize the block odometer: every chosen position starts at
            // its first non-source block.
            let mut viable = true;
            for (slot, &pos) in chosen.iter().enumerate() {
                let first = usize::from(source[pos] == 0);
                if first >= self.attributes[pos].blocks.len() {
                    viable = false;
                    break;
                }
                alt[slot] = first;
                scratch[pos] = first;
            }
            if viable {
                loop {
                    if visit(&scratch, &chosen).is_break() {
                        for &pos in chosen.iter() {
                            scratch[pos] = source[pos];
                        }
                        return ControlFlow::Break(());
                    }
                    // Advance the odometer, last chosen position fastest,
                    // skipping the source block.
                    let mut slot = modify_count;
                    loop {
                        if slot == 0 {
                            break;
                        }
                        slot -= 1;
                        let pos = chosen[slot];
                        let mut next = alt[slot] + 1;
                        if next == source[pos] {
                            next += 1;
                        }
                        if next < self.attributes[pos].blocks.len() {
                            alt[slot] = next;
                            scratch[pos] = next;
                            break;
                        }
                        // Wrap this position and carry.
                        let first = usize::from(source[pos] == 0);
                        alt[slot] = first;
                        scratch[pos] = first;
                        if slot == 0 {
                            // Odometer exhausted for this combination.
                            slot = usize::MAX;
                            break;
                        }
                    }
                    if slot == usize::MAX {
                        break;
                    }
                }
            }
            // Restore the scratch class before moving to the next
            // combination of changed positions.
            for &pos in chosen.iter() {
                scratch[pos] = source[pos];
            }
            if !advance_combination(&mut combo, positions.len()) {
                break 'combos;
            }
        }
        ControlFlow::Continue(())
    }

    /// The set of distinct classes among the join's rows plus the given extra
    /// classes — useful for reporting.
    pub fn all_classes(&self, join: &JoinedRelation, extra: &[TupleClass]) -> BTreeSet<TupleClass> {
        let mut set: BTreeSet<TupleClass> = self.source_classes(join).into_keys().collect();
        set.extend(extra.iter().cloned());
        set
    }
}

/// Advances `combo` to the next k-combination of `0..positions` in
/// lexicographic order; returns `false` when the combinations are exhausted.
fn advance_combination(combo: &mut [usize], positions: usize) -> bool {
    let k = combo.len();
    let mut i = k;
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        if combo[i] < positions - (k - i) {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::{ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{
        foreign_key_join, tuple, ColumnDef, DataType, Database, Table, TableSchema,
    };

    fn employee_setup() -> (JoinedRelation, Vec<SpjQuery>) {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        let join = foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let q = |p| SpjQuery::new(vec!["Employee"], vec!["name"], p);
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
        ];
        (join, queries)
    }

    #[test]
    fn builds_one_partition_per_selection_attribute() {
        let (join, queries) = employee_setup();
        let space = TupleClassSpace::build(&join, &queries).unwrap();
        assert_eq!(space.attribute_count(), 3); // gender, dept, salary
        let refs: Vec<&str> = space
            .attributes()
            .iter()
            .map(|a| a.reference.as_str())
            .collect();
        assert!(refs.contains(&"Employee.gender"));
        assert!(refs.contains(&"Employee.dept"));
        assert!(refs.contains(&"Employee.salary"));
        assert!(space.max_blocks() >= 2);
        // gender partitions into {M} and {F}; salary into (-inf,4000] and (4000,inf).
        let gender = space
            .attributes()
            .iter()
            .find(|a| a.base_column == "gender")
            .unwrap();
        assert_eq!(gender.blocks.len(), 2);
        let salary = space
            .attributes()
            .iter()
            .find(|a| a.base_column == "salary")
            .unwrap();
        assert_eq!(salary.blocks.len(), 2);
    }

    #[test]
    fn classification_groups_equivalent_tuples() {
        let (join, queries) = employee_setup();
        let space = TupleClassSpace::build(&join, &queries).unwrap();
        let classes = space.source_classes(&join);
        // Bob (M, IT, 4200) and Darren (M, IT, 5000) are both >4000/M/IT: same class.
        let bob = space.classify(&join.rows()[1].tuple).unwrap();
        let darren = space.classify(&join.rows()[3].tuple).unwrap();
        assert_eq!(bob, darren);
        // Alice (F, Sales, 3700) differs from Celina (F, Service, 3000) on dept block.
        let alice = space.classify(&join.rows()[0].tuple).unwrap();
        let celina = space.classify(&join.rows()[2].tuple).unwrap();
        assert_ne!(alice, bob);
        // dept blocks: IT vs {Sales}/{Service}/... — Sales and Service satisfy
        // the same (single) term 'dept = IT' (both false), so they share a block.
        assert_eq!(alice, celina);
        assert_eq!(classes.len(), 2);
        assert_eq!(classes.values().map(Vec::len).sum::<usize>(), 4);
    }

    #[test]
    fn class_matching_agrees_with_query_evaluation() {
        let (join, queries) = employee_setup();
        let space = TupleClassSpace::build(&join, &queries).unwrap();
        let bound: Vec<BoundQuery> = queries
            .iter()
            .map(|q| BoundQuery::bind(q, &join).unwrap())
            .collect();
        for row in join.rows() {
            let class = space.classify(&row.tuple).unwrap();
            for b in &bound {
                assert_eq!(
                    space.class_matches(&class, b),
                    b.matches_row(&row.tuple),
                    "class-level matching must agree with direct evaluation"
                );
            }
        }
    }

    #[test]
    fn representative_values_belong_to_blocks() {
        let (join, queries) = employee_setup();
        let space = TupleClassSpace::build(&join, &queries).unwrap();
        for class in space.source_classes(&join).keys() {
            for (attr, &block_idx) in space.attributes().iter().zip(class.iter()) {
                let (_, rep) = space.representative_values(class)[space
                    .attributes()
                    .iter()
                    .position(|a| a.column == attr.column)
                    .unwrap()]
                .clone();
                assert!(attr.blocks[block_idx].contains(&rep));
            }
        }
    }

    #[test]
    fn destination_classes_change_exactly_the_requested_attributes() {
        let (join, queries) = employee_setup();
        let space = TupleClassSpace::build(&join, &queries).unwrap();
        let source = space.classify(&join.rows()[1].tuple).unwrap(); // Bob
        let modifiable = vec![true; space.attribute_count()];
        let single = space.destination_classes(&source, 1, &modifiable);
        assert!(!single.is_empty());
        for (d, changed) in &single {
            assert_eq!(space.changed_attributes(&source, d).len(), 1);
            assert_eq!(changed.len(), 1);
        }
        let double = space.destination_classes(&source, 2, &modifiable);
        for (d, changed) in &double {
            assert_eq!(space.changed_attributes(&source, d).len(), 2);
            assert_eq!(changed.len(), 2);
        }
        // Changing more attributes than exist is impossible.
        assert!(space
            .destination_classes(&source, space.attribute_count() + 1, &modifiable)
            .is_empty());
        assert!(space
            .destination_classes(&source, 0, &modifiable)
            .is_empty());
    }

    #[test]
    fn destination_classes_respect_modifiable_mask() {
        let (join, queries) = employee_setup();
        let space = TupleClassSpace::build(&join, &queries).unwrap();
        let source = space.classify(&join.rows()[1].tuple).unwrap();
        // Only the first attribute is modifiable.
        let mut modifiable = vec![false; space.attribute_count()];
        modifiable[0] = true;
        let singles = space.destination_classes(&source, 1, &modifiable);
        for (_, changed) in &singles {
            assert_eq!(changed, &vec![0]);
        }
        let doubles = space.destination_classes(&source, 2, &modifiable);
        assert!(doubles.is_empty());
    }

    #[test]
    fn lemma_5_1_single_modification_partitions_into_at_most_four() {
        // For any (s, d) pair, the per-query outcome takes at most 4 values:
        // (s matches, d matches) ∈ {FF, FT, TF, TT}.
        let (join, queries) = employee_setup();
        let space = TupleClassSpace::build(&join, &queries).unwrap();
        let bound: Vec<BoundQuery> = queries
            .iter()
            .map(|q| BoundQuery::bind(q, &join).unwrap())
            .collect();
        let source = space.classify(&join.rows()[1].tuple).unwrap();
        let modifiable = vec![true; space.attribute_count()];
        for (dest, _) in space.destination_classes(&source, 1, &modifiable) {
            let mut outcomes = BTreeSet::new();
            for b in &bound {
                outcomes.insert((
                    space.class_matches(&source, b),
                    space.class_matches(&dest, b),
                ));
            }
            assert!(outcomes.len() <= 4);
        }
    }

    #[test]
    fn combo_range_enumeration_is_a_contiguous_slice_of_the_full_order() {
        let (join, queries) = employee_setup();
        let space = TupleClassSpace::build(&join, &queries).unwrap();
        let source = space.classify(&join.rows()[1].tuple).unwrap();
        let modifiable = vec![true; space.attribute_count()];
        assert_eq!(
            space.destination_combo_count(1, &modifiable),
            space.attribute_count()
        );
        assert_eq!(
            space.destination_combo_count(space.attribute_count() + 1, &modifiable),
            0
        );
        assert_eq!(space.destination_combo_count(0, &modifiable), 0);
        for k in 1..=space.attribute_count() {
            let full = space.destination_classes(&source, k, &modifiable);
            let combos = space.destination_combo_count(k, &modifiable);
            assert!(combos >= 1);
            // Walking the combination range in chunks re-concatenates to the
            // full enumeration, in the full order.
            let mut pieces = Vec::new();
            let cuts = [0, combos / 3, 2 * combos / 3, combos];
            for w in cuts.windows(2) {
                let _ = space.for_each_destination_class_in_combos(
                    &source,
                    k,
                    &modifiable,
                    w[0]..w[1],
                    |c, ch| {
                        pieces.push((c.clone(), ch.to_vec()));
                        std::ops::ControlFlow::Continue(())
                    },
                );
            }
            assert_eq!(pieces, full, "modify_count {k}");
        }
    }

    #[test]
    fn all_classes_includes_extras() {
        let (join, queries) = employee_setup();
        let space = TupleClassSpace::build(&join, &queries).unwrap();
        let extra: TupleClass = vec![0; space.attribute_count()];
        let all = space.all_classes(&join, std::slice::from_ref(&extra));
        assert!(all.contains(&extra));
        assert!(all.len() >= 2);
    }
}
