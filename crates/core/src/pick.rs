//! Algorithm 4: `Pick-STC-DTC-Subset`.
//!
//! Given the skyline pairs produced by Algorithm 3, selects a subset of
//! (STC, DTC) pairs that minimizes the user-effort cost (Equation 5).  The
//! search starts from single-pair sets and extends them one pair at a time,
//! keeping only extensions that improve the class-level balance score —
//! the pruning heuristic that keeps the search space small in practice
//! (Section 5.4). Ties on cost are broken by the lowest balance score.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use crate::context::{ClassPair, GenerationContext};
use crate::cost::{objective, CostInputs, CostParams};
use crate::error::{QfeError, Result};
use crate::realize::{
    evaluate_modification, realize_pairs, ModificationEvaluation, RealizedModification,
};

/// Safety cap on the number of candidate sets kept per extension level.
/// The paper relies purely on the balance-pruning heuristic; the cap only
/// guards against pathological inputs and is far above what the heuristic
/// retains on the evaluation workloads.
const MAX_SETS_PER_LEVEL: usize = 256;

/// Safety cap on the total number of cost evaluations per invocation.
const MAX_COST_EVALUATIONS: usize = 4096;

/// The subset of pairs chosen by Algorithm 4 together with its realization.
#[derive(Debug, Clone)]
pub struct PickOutcome {
    /// The chosen (STC, DTC) pairs `S_opt`.
    pub chosen: Vec<ClassPair>,
    /// Concrete cell edits realizing `S_opt`.
    pub realized: RealizedModification,
    /// The induced partition/result-cost evaluation of the realization.
    pub evaluation: ModificationEvaluation,
    /// The objective value (Equation 5, or the alternative model's objective).
    pub cost: f64,
    /// Number of candidate sets whose cost was evaluated.
    pub cost_evaluations: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

struct EvaluatedSet {
    indices: Vec<usize>,
    pairs: Vec<ClassPair>,
    realized: RealizedModification,
    evaluation: ModificationEvaluation,
    cost: f64,
    abstract_balance: f64,
}

/// Runs Algorithm 4 over the skyline pairs.
///
/// `best_binary_x` is Lemma 3.1's bound computed during the skyline
/// enumeration; it feeds the refined iteration estimate of the cost model.
pub fn pick_stc_dtc_subset(
    ctx: &GenerationContext,
    skyline: &[ClassPair],
    params: &CostParams,
    best_binary_x: Option<usize>,
) -> Result<PickOutcome> {
    let start = Instant::now();
    if skyline.is_empty() {
        return Err(QfeError::NoDistinguishingDatabase {
            remaining: ctx.queries().iter().map(|q| q.display_name()).collect(),
        });
    }

    let cost_evaluations = std::cell::Cell::new(0usize);

    // Evaluates one candidate set (realize, partition incrementally, cost).
    let evaluate_set = |indices: &[usize]| -> Option<EvaluatedSet> {
        if cost_evaluations.get() >= MAX_COST_EVALUATIONS {
            return None;
        }
        cost_evaluations.set(cost_evaluations.get() + 1);
        let pairs: Vec<ClassPair> = indices.iter().map(|&i| skyline[i].clone()).collect();
        let realized = realize_pairs(ctx, &pairs)?;
        let evaluation = evaluate_modification(ctx, &realized.edits);
        // A realization that fails to split the candidates is useless.
        if evaluation.group_count() <= 1 {
            return None;
        }
        let inputs = CostInputs {
            db_edit_cost: realized.db_edit_cost,
            modified_relations: realized.modified_relations,
            modified_tuples: realized.modified_tuples,
            result_edit_costs: evaluation.result_edit_costs(),
            partition_sizes: evaluation.partition_sizes(),
            best_binary_x,
        };
        let cost = objective(params, &inputs);
        let abstract_balance = ctx.balance_of(skyline, indices);
        Some(EvaluatedSet {
            indices: indices.to_vec(),
            pairs,
            realized,
            evaluation,
            cost,
            abstract_balance,
        })
    };

    // Steps 1–8: single-pair sets.
    let mut best: Vec<EvaluatedSet> = Vec::new();
    let mut min_cost = f64::INFINITY;
    let mut current_level: Vec<(Vec<usize>, f64)> = Vec::new(); // (indices, abstract balance)
    for i in 0..skyline.len() {
        let abstract_balance = ctx.balance_of(skyline, &[i]);
        current_level.push((vec![i], abstract_balance));
        if let Some(eval) = evaluate_set(&[i]) {
            if eval.cost < min_cost {
                min_cost = eval.cost;
                best = vec![eval];
            } else if eval.cost == min_cost {
                best.push(eval);
            }
        }
    }

    // Steps 9–21: extend sets while the balance score improves.
    loop {
        let mut next_level: Vec<(Vec<usize>, f64)> = Vec::new();
        let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
        for (indices, balance) in &current_level {
            for p in 0..skyline.len() {
                if indices.contains(&p) {
                    continue;
                }
                let mut extended = indices.clone();
                extended.push(p);
                extended.sort_unstable();
                if !seen.insert(extended.clone()) {
                    continue;
                }
                // Class-level pruning runs on the bitset kernel without
                // materializing the candidate pair set.
                let extended_balance = ctx.balance_of(skyline, &extended);
                if extended_balance < *balance {
                    if let Some(eval) = evaluate_set(&extended) {
                        if eval.cost < min_cost {
                            min_cost = eval.cost;
                            best = vec![eval];
                        } else if eval.cost == min_cost {
                            best.push(eval);
                        }
                    }
                    next_level.push((extended, extended_balance));
                    if next_level.len() >= MAX_SETS_PER_LEVEL {
                        break;
                    }
                }
            }
            if next_level.len() >= MAX_SETS_PER_LEVEL {
                break;
            }
        }
        if next_level.is_empty() || cost_evaluations.get() >= MAX_COST_EVALUATIONS {
            break;
        }
        current_level = next_level;
    }

    // Step 22: among the minimum-cost sets, pick the one with the lowest
    // balance score.
    let chosen = best
        .into_iter()
        .min_by(|a, b| {
            a.abstract_balance
                .partial_cmp(&b.abstract_balance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.indices.len().cmp(&b.indices.len()))
                .then_with(|| a.indices.cmp(&b.indices))
        })
        .ok_or_else(|| QfeError::NoDistinguishingDatabase {
            remaining: ctx.queries().iter().map(|q| q.display_name()).collect(),
        })?;

    Ok(PickOutcome {
        chosen: chosen.pairs,
        realized: chosen.realized,
        evaluation: chosen.evaluation,
        cost: chosen.cost,
        cost_evaluations: cost_evaluations.get(),
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::skyline_stc_dtc_pairs;
    use qfe_query::{evaluate, ComparisonOp, DnfPredicate, SpjQuery, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, Database, Table, TableSchema};

    fn employee_context() -> GenerationContext {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        let q = |p| SpjQuery::new(vec!["Employee"], vec!["name"], p);
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
        ];
        let result = evaluate(&queries[0], &db).unwrap();
        GenerationContext::new(&db, &result, &queries).unwrap()
    }

    #[test]
    fn picks_a_discriminating_low_cost_modification() {
        let ctx = employee_context();
        let skyline = skyline_stc_dtc_pairs(&ctx, Duration::from_secs(5));
        let outcome = pick_stc_dtc_subset(
            &ctx,
            &skyline.pairs,
            &CostParams::default(),
            skyline.best_binary_x,
        )
        .unwrap();
        assert!(!outcome.chosen.is_empty());
        assert!(outcome.evaluation.group_count() >= 2);
        assert!(outcome.cost.is_finite());
        assert!(outcome.cost_evaluations >= skyline.pairs.len().min(MAX_COST_EVALUATIONS));
        // On Example 1.1 at most two single-attribute changes are needed
        // (either a 2/1 split with one change or a full 1/1/1 split with two).
        assert!(outcome.realized.db_edit_cost <= 2);
        assert_eq!(outcome.realized.modified_relations, 1);
    }

    #[test]
    fn empty_skyline_is_an_error() {
        let ctx = employee_context();
        let err = pick_stc_dtc_subset(&ctx, &[], &CostParams::default(), None).unwrap_err();
        assert!(matches!(err, QfeError::NoDistinguishingDatabase { .. }));
    }

    #[test]
    fn alternative_cost_model_can_prefer_more_partitions() {
        use crate::cost::CostModelKind;
        let ctx = employee_context();
        let skyline = skyline_stc_dtc_pairs(&ctx, Duration::from_secs(5));
        let effort = pick_stc_dtc_subset(
            &ctx,
            &skyline.pairs,
            &CostParams::default(),
            skyline.best_binary_x,
        )
        .unwrap();
        let maxpart = pick_stc_dtc_subset(
            &ctx,
            &skyline.pairs,
            &CostParams::default().with_model(CostModelKind::MaxPartitions),
            skyline.best_binary_x,
        )
        .unwrap();
        assert!(maxpart.evaluation.group_count() >= effort.evaluation.group_count());
    }

    #[test]
    fn larger_skyline_never_hurts_cost() {
        let ctx = employee_context();
        let skyline = skyline_stc_dtc_pairs(&ctx, Duration::from_secs(5));
        let params = CostParams::default();
        let full =
            pick_stc_dtc_subset(&ctx, &skyline.pairs, &params, skyline.best_binary_x).unwrap();
        let half: Vec<ClassPair> = skyline.pairs[..skyline.pairs.len().max(1) / 2 + 1].to_vec();
        let partial = pick_stc_dtc_subset(&ctx, &half, &params, skyline.best_binary_x).unwrap();
        assert!(full.cost <= partial.cost + 1e-9);
    }
}
