//! Shared per-iteration state of the database generator.
//!
//! At each feedback iteration the database generator works with the original
//! pair `(D, R)`, the surviving candidate queries `QC'`, their shared
//! foreign-key join, the join index (for side-effect accounting), and the
//! tuple-class space derived from `QC'`.  [`GenerationContext`] bundles that
//! state and provides the cheap, class-level reasoning (query/class matching,
//! outcome signatures, balance scores) that Algorithms 3 and 4 are built on.
//!
//! Two properties matter for scale:
//!
//! * **Bit-packed reasoning.** Class/candidate matching and outcome
//!   signatures run on the [`OutcomeKernel`]'s interned class ids and
//!   per-class match bitsets — branch-light word operations with no interior
//!   mutability, which makes the context `Sync` and lets the skyline search
//!   fan out across threads.
//! * **Incremental advancement.** Between feedback rounds the candidate set
//!   only shrinks and `D` changes only by explicitly applied cell edits;
//!   [`GenerationContext::advance`] derives the next round's context from the
//!   previous one — reusing the join, the join index and the cached active
//!   domains — instead of recomputing everything from the database.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use qfe_query::{BoundQuery, QueryResult, SpjQuery};
use qfe_relation::{
    foreign_key_join, CellDelta, ColumnarJoin, Database, JoinIndex, JoinedRelation, Tuple, Value,
};

use crate::cost::balance_score;
use crate::error::{QfeError, Result};
use crate::kernel::{KernelReuse, MatchScratch, OutcomeKernel, PairStats};
use crate::tuple_class::{TupleClass, TupleClassSpace};

/// Process-wide count of [`GenerationContext::advance`] calls that fell back
/// to a full rebuild because a cell edit touched a key column.
static FULL_REBUILDS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of `advance` full-rebuild fallbacks (edits touching
/// primary- or foreign-key columns). A steadily climbing counter in a
/// workload that should stay on the delta path signals a regression; set the
/// `QFE_LOG_REBUILD` environment variable to also log each occurrence.
pub fn advance_full_rebuilds() -> u64 {
    FULL_REBUILDS.load(Ordering::Relaxed)
}

/// Advances sampled by the `QFE_PARANOIA` self-check mode.
static PARANOIA_CHECKS: AtomicU64 = AtomicU64::new(0);
/// Self-checks where the delta-maintained context diverged from a fresh
/// rebuild (each one degraded gracefully to the rebuild).
static PARANOIA_MISMATCHES: AtomicU64 = AtomicU64::new(0);
/// Rolling advance counter for the every-Nth sampling mode.
static PARANOIA_TICK: AtomicU64 = AtomicU64::new(0);

/// How many `advance` calls the `QFE_PARANOIA` mode has spot-validated
/// against a fresh rebuild this process.
pub fn paranoia_checks() -> u64 {
    PARANOIA_CHECKS.load(Ordering::Relaxed)
}

/// How many `QFE_PARANOIA` self-checks caught a divergence (and fell back
/// to the fresh rebuild). Any nonzero value is a delta-maintenance bug that
/// the paranoia mode has *contained* but that should be reported.
pub fn paranoia_mismatches() -> u64 {
    PARANOIA_MISMATCHES.load(Ordering::Relaxed)
}

/// Sampling interval of the `QFE_PARANOIA` self-check mode, parsed once:
/// unset/`0`/`off` → disabled, `1`/`always`/`on` → every advance, a number
/// `N` → every Nth advance.
fn paranoia_interval() -> Option<u64> {
    static MODE: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| {
        let value = std::env::var("QFE_PARANOIA").ok()?;
        match value.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "false" => None,
            "1" | "always" | "on" | "true" => Some(1),
            other => other.parse::<u64>().ok().filter(|&n| n > 0),
        }
    })
}

/// Which maintenance tier [`GenerationContext::advance`] took for the
/// relational state (database, join, columnar mirror).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvancePath {
    /// No cell edits: the database, join, columnar mirror and join index are
    /// all `Arc`-shared with the predecessor context.
    SharedNoEdit,
    /// Cell edits were patched in place at join-row granularity; only state
    /// derived from the edited columns was recomputed.
    DeltaPatched,
    /// An edit touched a primary- or foreign-key column (the join structure
    /// changed): the successor was rebuilt from the edited database.
    FullRebuild,
}

/// What [`GenerationContext::advance_with_report`] did, for benchmarks,
/// regression logging and delta-driven cache maintenance.
#[derive(Debug, Clone)]
pub struct AdvanceReport {
    /// The relational maintenance tier taken.
    pub path: AdvancePath,
    /// How the successor's outcome kernel was obtained.
    pub kernel: KernelReuse,
    /// One delta per patched columnar cell (join-row granularity). Feed these
    /// to [`qfe_query::TermBitmapCache::apply_delta`] to repair cached term
    /// bitmaps instead of recomputing them.
    pub cell_deltas: Vec<CellDelta>,
    /// Join-column indices whose values changed (sorted, deduplicated).
    pub edited_columns: Vec<usize>,
    /// True when the `QFE_PARANOIA` mode spot-validated this advance
    /// against a fresh rebuild.
    pub paranoia_checked: bool,
    /// Why the self-check rejected the delta-maintained context, when it
    /// did. The returned context is then the fresh rebuild (and
    /// [`AdvanceReport::path`] reads [`AdvancePath::FullRebuild`]).
    pub paranoia_mismatch: Option<String>,
}

/// A candidate single-tuple modification at the tuple-class level: a
/// (source-tuple-class, destination-tuple-class) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassPair {
    /// The source tuple class (some tuple of `D` belongs to it).
    pub source: TupleClass,
    /// The destination tuple class the tuple is modified into.
    pub destination: TupleClass,
    /// Positions (into the selection-attribute list) changed by the pair.
    pub changed_attributes: Vec<usize>,
}

impl ClassPair {
    /// The pair's minimum edit cost: one attribute modification per changed
    /// attribute.
    pub fn edit_cost(&self) -> usize {
        self.changed_attributes.len()
    }
}

/// The abstract effect of a single-tuple modification on one query's result
/// (the four cases of Lemma 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// The query's result is unchanged.
    Unchanged,
    /// The modified tuple newly satisfies the query: one row added.
    Added,
    /// The tuple no longer satisfies the query: one row removed.
    Removed,
    /// The tuple satisfies the query before and after, but its projected
    /// value changed: one row replaced.
    Replaced,
}

/// Per-iteration state shared by the skyline search (Algorithm 3), the subset
/// selection (Algorithm 4) and the realization of modifications.
///
/// The context is immutable after construction and `Sync`: the parallel
/// skyline enumeration shares one context across worker threads.
#[derive(Debug)]
pub struct GenerationContext {
    db: Arc<Database>,
    original_result: Arc<QueryResult>,
    queries: Vec<SpjQuery>,
    join_tables: Vec<String>,
    join: Arc<JoinedRelation>,
    /// Columnar mirror of [`Self::join`]: typed vectors, sorted string
    /// dictionaries and null bitmaps. Built once per join; `advance` keeps it
    /// fresh via [`ColumnarJoin::patch_cell`] (or shares it untouched when no
    /// edits were applied). The context reads its active domains off it (the
    /// sorted dictionaries *are* the domains) and exposes it via
    /// [`Self::columnar`] for vectorized candidate evaluation
    /// (`BoundQuery::selection_bitmap` + `TermBitmapCache`, which keys its
    /// validity on the mirror's generation counter).
    columnar: Arc<ColumnarJoin>,
    join_index: Arc<JoinIndex>,
    bound: Vec<BoundQuery>,
    space: TupleClassSpace,
    source_classes: BTreeMap<TupleClass, Vec<usize>>,
    modifiable: Vec<bool>,
    projection_columns: BTreeSet<usize>,
    /// Cached active domains of the selection-predicate columns (what
    /// `join.active_domain` returned at build time) — reused by
    /// [`Self::advance`] so successor contexts skip the join scans.
    column_domains: BTreeMap<usize, Vec<Value>>,
    kernel: OutcomeKernel,
    /// Per attribute, per block: whether the block's representative conforms
    /// to the base column's declared type (i.e. the block is realizable as a
    /// concrete cell edit).
    block_realizable: Vec<Vec<bool>>,
}

fn assert_sync_send<T: Sync + Send>() {}
#[allow(dead_code)]
fn generation_context_is_sync() {
    assert_sync_send::<GenerationContext>();
}

impl GenerationContext {
    /// Builds the context for one iteration.
    ///
    /// All candidate queries must share the same join schema (the Section 5
    /// assumption); [`QfeError::MixedJoinSchemas`] is returned otherwise.
    pub fn new(db: &Database, original_result: &QueryResult, queries: &[SpjQuery]) -> Result<Self> {
        Self::new_shared(
            Arc::new(db.clone()),
            Arc::new(original_result.clone()),
            queries.to_vec(),
        )
    }

    /// [`Self::new`] without copying `D` and `R`: the context shares the
    /// caller's `Arc`s, so a session engine, its manager snapshots and every
    /// per-round context reference one copy of the example pair.
    pub fn new_shared(
        db: Arc<Database>,
        original_result: Arc<QueryResult>,
        queries: Vec<SpjQuery>,
    ) -> Result<Self> {
        if queries.is_empty() {
            return Err(QfeError::NoCandidates);
        }
        let join_tables = queries[0].join_signature();
        if queries.iter().any(|q| q.join_signature() != join_tables) {
            return Err(QfeError::MixedJoinSchemas);
        }
        let join = Arc::new(foreign_key_join(&db, &join_tables)?);
        let columnar = Arc::new(ColumnarJoin::from_join(&join));
        let join_index = Arc::new(JoinIndex::build(&join));
        let column_domains = TupleClassSpace::active_domains_with(&join, &queries, |col| {
            columnar.active_domain(col)
        })?;
        let space = TupleClassSpace::build_with_domains(&join, &queries, &column_domains)?;
        Ok(Self::assemble(
            db,
            original_result,
            queries,
            join_tables,
            join,
            columnar,
            join_index,
            column_domains,
            space,
            None,
            None,
        )?
        .0)
    }

    /// Shared tail of [`Self::new_shared`] and [`Self::advance`]: everything
    /// derived from the join, the domains and the candidate set. When
    /// `source_classes` is `None` every join row is classified from scratch;
    /// `advance` passes the incrementally remapped table instead. When
    /// `previous` carries the predecessor context (and whether the candidate
    /// list is unchanged), the outcome kernel is derived differentially via
    /// [`OutcomeKernel::advance_from`]; the returned [`KernelReuse`] says
    /// which tier applied.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        db: Arc<Database>,
        original_result: Arc<QueryResult>,
        queries: Vec<SpjQuery>,
        join_tables: Vec<String>,
        join: Arc<JoinedRelation>,
        columnar: Arc<ColumnarJoin>,
        join_index: Arc<JoinIndex>,
        column_domains: BTreeMap<usize, Vec<Value>>,
        space: TupleClassSpace,
        source_classes: Option<BTreeMap<TupleClass, Vec<usize>>>,
        previous: Option<(&GenerationContext, bool)>,
    ) -> Result<(Self, KernelReuse)> {
        let bound: Vec<BoundQuery> = queries
            .iter()
            .map(|q| BoundQuery::bind(q, &join))
            .collect::<std::result::Result<_, _>>()?;
        let source_classes = match source_classes {
            Some(classes) => classes,
            None => space.source_classes(&join),
        };

        // Projection columns (shared by all candidates: R determines ℓ).
        let projection_columns: BTreeSet<usize> =
            bound[0].projection_indices().iter().copied().collect();

        let modifiable = modifiable_attributes(&db, &space);
        let (kernel, kernel_reuse) = match previous {
            Some((prev, queries_unchanged)) => OutcomeKernel::advance_from(
                &prev.kernel,
                &prev.space,
                &space,
                queries_unchanged,
                &queries,
                &join,
                &projection_columns,
            )?,
            None => (
                OutcomeKernel::build(&space, &queries, &join, &projection_columns)?,
                KernelReuse::Rebuilt,
            ),
        };
        let block_realizable = block_realizability(&db, &space);

        let context = GenerationContext {
            db,
            original_result,
            queries,
            join_tables,
            join,
            columnar,
            join_index,
            bound,
            space,
            source_classes,
            modifiable,
            projection_columns,
            column_domains,
            kernel,
            block_realizable,
        };
        Ok((context, kernel_reuse))
    }

    /// Derives the context of the *next* feedback round from this one.
    ///
    /// `surviving` holds the indices (into [`Self::queries`], strictly
    /// ascending) of the candidates kept by the user's answer; `edits` are
    /// the cell edits applied to `D` since this context was built (empty in
    /// the standard loop, where `D` never changes). Instead of recomputing
    /// the join and rescanning the database, the successor context reuses:
    ///
    /// * the join and join index (`Arc`-shared when `edits` is empty; rows
    ///   patched in place otherwise — edits never touch key columns, so the
    ///   join *structure* is invariant),
    /// * the cached per-column active domains (recomputed only for edited
    ///   columns),
    /// * the source-class table, remapped through the old-block → new-block
    ///   refinement induced by the shrunken term set.
    ///
    /// The result is equivalent to `GenerationContext::new` on the edited
    /// database and surviving candidates. Edits touching primary- or
    /// foreign-key columns (which would change the join structure) fall back
    /// to a full rebuild.
    pub fn advance(
        &self,
        surviving: &[usize],
        edits: &[crate::realize::CellEdit],
    ) -> Result<GenerationContext> {
        Ok(self.advance_with_report(surviving, edits)?.0)
    }

    /// [`Self::advance`] plus an [`AdvanceReport`] describing exactly how the
    /// successor was derived: which relational tier applied, how the outcome
    /// kernel was obtained, and the per-cell deltas that callers holding a
    /// [`qfe_query::TermBitmapCache`] can use to repair cached term bitmaps
    /// instead of recomputing them.
    pub fn advance_with_report(
        &self,
        surviving: &[usize],
        edits: &[crate::realize::CellEdit],
    ) -> Result<(GenerationContext, AdvanceReport)> {
        if surviving.is_empty() {
            return Err(QfeError::NoCandidates);
        }
        if surviving.windows(2).any(|w| w[0] >= w[1])
            || *surviving.last().expect("non-empty") >= self.queries.len()
        {
            return Err(QfeError::Internal {
                message: "advance: surviving indices must be strictly ascending and in range"
                    .into(),
            });
        }
        let queries: Vec<SpjQuery> = surviving.iter().map(|&i| self.queries[i].clone()).collect();
        // Strictly ascending indices within range keep the whole candidate
        // list exactly when the lengths match.
        let queries_unchanged = surviving.len() == self.queries.len();

        // Edits to key columns change the join structure: rebuild fully.
        // `apply_edits` clones the database but `Arc`-shares every table the
        // edits do not touch, so even the fallback copies only edited tables.
        if edits
            .iter()
            .any(|e| is_key_column(&self.db, &e.table, &e.column))
        {
            FULL_REBUILDS.fetch_add(1, Ordering::Relaxed);
            if std::env::var_os("QFE_LOG_REBUILD").is_some() {
                eprintln!(
                    "qfe: advance fell back to a full rebuild (key-column edit; total {})",
                    advance_full_rebuilds()
                );
            }
            let db = crate::realize::apply_edits(&self.db, edits)?;
            let context =
                Self::new_shared(Arc::new(db), Arc::clone(&self.original_result), queries)?;
            let report = AdvanceReport {
                path: AdvancePath::FullRebuild,
                kernel: KernelReuse::Rebuilt,
                cell_deltas: Vec::new(),
                edited_columns: Vec::new(),
                paranoia_checked: false,
                paranoia_mismatch: None,
            };
            return Ok((context, report));
        }

        // Database, join and columnar mirror: shared when unchanged, patched
        // in place otherwise. Each patched cell yields a `CellDelta` stamped
        // with the column's old and new edit epochs; term-bitmap caches use
        // them to flip single bits instead of recomputing whole bitmaps.
        let mut cell_deltas: Vec<CellDelta> = Vec::new();
        let (db, join, columnar, affected_rows) = if edits.is_empty() {
            (
                Arc::clone(&self.db),
                Arc::clone(&self.join),
                Arc::clone(&self.columnar),
                BTreeSet::new(),
            )
        } else {
            let db = Arc::new(crate::realize::apply_edits(&self.db, edits)?);
            let mut join = (*self.join).clone();
            let mut columnar = (*self.columnar).clone();
            let mut affected: BTreeSet<usize> = BTreeSet::new();
            for edit in edits {
                for &jrow in self.join_index.joined_rows_of(&edit.table, edit.row) {
                    affected.insert(jrow);
                    for (col_idx, col) in self.join.columns().iter().enumerate() {
                        if col.table == edit.table
                            && col.column == edit.column
                            && self.join.rows()[jrow].provenance.get(&edit.table) == Some(&edit.row)
                        {
                            join.patch_cell(jrow, col_idx, edit.new_value.clone());
                            cell_deltas.push(columnar.patch_cell(jrow, col_idx, &edit.new_value));
                        }
                    }
                }
            }
            (db, Arc::new(join), Arc::new(columnar), affected)
        };
        let join_index = Arc::clone(&self.join_index);

        // Active domains: reuse the cache except for edited columns.
        let edited_join_columns: BTreeSet<usize> = join
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                edits
                    .iter()
                    .any(|e| e.table == c.table && e.column == c.column)
            })
            .map(|(i, _)| i)
            .collect();
        let mut needed_columns: BTreeSet<usize> = BTreeSet::new();
        for q in &queries {
            for term in q.predicate.all_terms() {
                needed_columns.insert(
                    join.resolve_column(term.attribute())
                        .map_err(QfeError::from)?,
                );
            }
        }
        let column_domains: BTreeMap<usize, Vec<Value>> = needed_columns
            .into_iter()
            .map(|col| {
                // The (columnar) domain scan runs only for columns whose
                // values actually changed or that the cache never saw.
                let domain = if edited_join_columns.contains(&col) {
                    columnar.active_domain(col)
                } else {
                    match self.column_domains.get(&col) {
                        Some(cached) => cached.clone(),
                        None => columnar.active_domain(col),
                    }
                };
                (col, domain)
            })
            .collect();

        let space = TupleClassSpace::build_with_domains(&join, &queries, &column_domains)?;

        // Incremental re-partitioning: remap the previous round's source
        // classes through the old-block → new-block refinement (fewer
        // candidates ⇒ fewer terms ⇒ coarser blocks) instead of classifying
        // every join row again. Edited rows are classified directly; a failed
        // embedding (should not happen) falls back to full classification.
        let source_classes = self.remap_source_classes(&space, &join, &affected_rows);
        debug_assert!(
            source_classes.is_none()
                || source_classes.as_ref() == Some(&space.source_classes(&join)),
            "refinement remap disagrees with direct classification"
        );

        let (context, kernel_reuse) = Self::assemble(
            db,
            Arc::clone(&self.original_result),
            queries,
            self.join_tables.clone(),
            join,
            columnar,
            join_index,
            column_domains,
            space,
            source_classes,
            Some((self, queries_unchanged)),
        )?;
        let report = AdvanceReport {
            path: if edits.is_empty() {
                AdvancePath::SharedNoEdit
            } else {
                AdvancePath::DeltaPatched
            },
            kernel: kernel_reuse,
            cell_deltas,
            edited_columns: edited_join_columns.iter().copied().collect(),
            paranoia_checked: false,
            paranoia_mismatch: None,
        };
        self.paranoia_check(context, report)
    }

    /// The `QFE_PARANOIA` self-check: spot-validate a delta-maintained
    /// successor against a fresh rebuild from the same database and
    /// candidates. On divergence the advance **degrades gracefully** — the
    /// fresh rebuild is returned (correctness preserved), the mismatch is
    /// counted and logged, and the report says what happened. Disabled (the
    /// common case) this is one relaxed atomic load.
    fn paranoia_check(
        &self,
        context: GenerationContext,
        mut report: AdvanceReport,
    ) -> Result<(GenerationContext, AdvanceReport)> {
        let Some(every) = paranoia_interval() else {
            return Ok((context, report));
        };
        if !PARANOIA_TICK
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
        {
            return Ok((context, report));
        }
        PARANOIA_CHECKS.fetch_add(1, Ordering::Relaxed);
        report.paranoia_checked = true;
        let fresh = Self::new_shared(
            Arc::clone(&context.db),
            Arc::clone(&context.original_result),
            context.queries.clone(),
        )?;
        match context.divergence_from(&fresh) {
            None => Ok((context, report)),
            Some(reason) => {
                PARANOIA_MISMATCHES.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "qfe: QFE_PARANOIA caught a delta-repair divergence ({reason}); \
                     degrading to the fresh rebuild (total mismatches {})",
                    paranoia_mismatches()
                );
                report.paranoia_mismatch = Some(reason);
                // The delta-maintained context is discarded, so its deltas
                // must not be used to repair downstream caches either.
                report.path = AdvancePath::FullRebuild;
                report.kernel = KernelReuse::Rebuilt;
                report.cell_deltas.clear();
                Ok((fresh, report))
            }
        }
    }

    /// Compares every artifact this context derives from the database —
    /// join rows, domain partitions, source classes, projection columns —
    /// against `other`, returning a description of the first divergence, or
    /// `None` when the two are equivalent. This is the equivalence the
    /// differential round-maintenance tests assert; the `QFE_PARANOIA` mode
    /// runs it in production as a self-check.
    pub fn divergence_from(&self, other: &GenerationContext) -> Option<String> {
        if self.queries.len() != other.queries.len() {
            return Some(format!(
                "candidate count {} vs {}",
                self.queries.len(),
                other.queries.len()
            ));
        }
        if self.join.len() != other.join.len() {
            return Some(format!(
                "join row count {} vs {}",
                self.join.len(),
                other.join.len()
            ));
        }
        for (row, (a, b)) in self.join.rows().iter().zip(other.join.rows()).enumerate() {
            if a.tuple != b.tuple {
                return Some(format!("join row {row} tuples differ"));
            }
        }
        let (ours, theirs) = (self.space.attributes(), other.space.attributes());
        if ours.len() != theirs.len() {
            return Some(format!(
                "class-space attribute count {} vs {}",
                ours.len(),
                theirs.len()
            ));
        }
        for (a, b) in ours.iter().zip(theirs) {
            if a.column != b.column {
                return Some(format!(
                    "class-space attribute column {} vs {}",
                    a.column, b.column
                ));
            }
            if a.blocks != b.blocks {
                return Some(format!("domain partition differs on {}", a.reference));
            }
        }
        if self.source_classes != other.source_classes {
            return Some("source classes differ".to_string());
        }
        if self.projection_columns != other.projection_columns {
            return Some("projection columns differ".to_string());
        }
        None
    }

    /// Remaps this context's source classes into the successor class space
    /// via the old-block → new-block refinement. Returns `None` when some old
    /// block does not embed into a single new block (then direct
    /// classification is the only option). Rows in `affected` (edited) are
    /// classified directly.
    fn remap_source_classes(
        &self,
        new_space: &TupleClassSpace,
        new_join: &JoinedRelation,
        affected: &BTreeSet<usize>,
    ) -> Option<BTreeMap<TupleClass, Vec<usize>>> {
        let new_attrs = new_space.attributes();
        // For each new attribute position: (old position, old-block → new-block map).
        let mut maps: Vec<(usize, Vec<usize>)> = Vec::with_capacity(new_attrs.len());
        for na in new_attrs {
            let old_pos = self
                .space
                .attributes()
                .iter()
                .position(|oa| oa.column == na.column)?;
            let old_blocks = &self.space.attributes()[old_pos].blocks;
            let mut map = Vec::with_capacity(old_blocks.len());
            for ob in old_blocks {
                let target = na
                    .blocks
                    .iter()
                    .position(|nb| nb.contains(ob.representative()))?;
                map.push(target);
            }
            maps.push((old_pos, map));
        }
        let mut remapped: BTreeMap<TupleClass, Vec<usize>> = BTreeMap::new();
        for (old_class, rows) in &self.source_classes {
            let new_class: TupleClass = maps
                .iter()
                .map(|(old_pos, map)| map[old_class[*old_pos]])
                .collect();
            let members = remapped.entry(new_class).or_default();
            members.extend(rows.iter().filter(|r| !affected.contains(r)));
        }
        // Edited rows: classify directly against the new space.
        for &jrow in affected {
            if let Some(class) = new_space.classify(&new_join.rows()[jrow].tuple) {
                remapped.entry(class).or_default().push(jrow);
            }
        }
        for members in remapped.values_mut() {
            members.sort_unstable();
        }
        remapped.retain(|_, members| !members.is_empty());
        Some(remapped)
    }

    /// The original database `D`.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The original database `D`, shared.
    pub fn database_arc(&self) -> &Arc<Database> {
        &self.db
    }

    /// The original example result `R`.
    pub fn original_result(&self) -> &QueryResult {
        &self.original_result
    }

    /// The surviving candidate queries.
    pub fn queries(&self) -> &[SpjQuery] {
        &self.queries
    }

    /// The shared join schema (sorted table names).
    pub fn join_tables(&self) -> &[String] {
        &self.join_tables
    }

    /// The foreign-key join of the candidate queries' tables over `D`.
    pub fn join(&self) -> &JoinedRelation {
        &self.join
    }

    /// The columnar mirror of [`Self::join`] (typed vectors, sorted string
    /// dictionaries, null bitmaps). The context computes its active domains
    /// from it, and embedders evaluate candidates against it vectorized
    /// ([`qfe_query::BoundQuery::selection_bitmap`] with a
    /// `TermBitmapCache`). Kept fresh by [`Self::advance`]: shared untouched
    /// across rounds without edits, patched cell-by-cell otherwise.
    pub fn columnar(&self) -> &ColumnarJoin {
        &self.columnar
    }

    /// The join index of [`Self::join`].
    pub fn join_index(&self) -> &JoinIndex {
        &self.join_index
    }

    /// The candidate queries bound against [`Self::join`].
    pub fn bound_queries(&self) -> &[BoundQuery] {
        &self.bound
    }

    /// The tuple-class space for the candidate set.
    pub fn class_space(&self) -> &TupleClassSpace {
        &self.space
    }

    /// The source-tuple classes and their member join rows.
    pub fn source_classes(&self) -> &BTreeMap<TupleClass, Vec<usize>> {
        &self.source_classes
    }

    /// Which selection attributes may be modified (non-key attributes).
    pub fn modifiable_attributes(&self) -> &[bool] {
        &self.modifiable
    }

    /// Join-column indices projected by the candidate queries.
    pub fn projection_columns(&self) -> &BTreeSet<usize> {
        &self.projection_columns
    }

    /// Whether the representative of `block` at attribute position `pos`
    /// conforms to the base column's declared type (precomputed; used by the
    /// realization to skip unrealizable destinations).
    pub fn block_realizable(&self, pos: usize, block: usize) -> bool {
        self.block_realizable[pos][block]
    }

    /// Number of candidate queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Fresh per-thread scratch buffers for [`Self::class_match_words`].
    pub(crate) fn match_scratch(&self) -> MatchScratch {
        self.kernel.scratch()
    }

    /// The candidate-match bitset of a class (bit `q` ⇔ class satisfies
    /// query `q`). Borrow is tied to `scratch`; no allocation.
    pub(crate) fn class_match_words<'a>(
        &'a self,
        class: &TupleClass,
        scratch: &'a mut MatchScratch,
    ) -> &'a [u64] {
        self.kernel.match_words(class, scratch)
    }

    /// Outcome counts of a single pair given precomputed match bitsets.
    pub(crate) fn pair_stats(
        &self,
        source_bits: &[u64],
        destination_bits: &[u64],
        projection_changed: bool,
    ) -> PairStats {
        self.kernel
            .pair_stats(source_bits, destination_bits, projection_changed)
    }

    /// Whether changing the given attribute positions touches a projected
    /// column (precomputed per-attribute projection-touch mask).
    pub(crate) fn projection_touched(&self, changed: &[usize]) -> bool {
        self.kernel.projection_touched(changed)
    }

    /// Whether a tuple of `class` satisfies candidate query `query_idx`.
    ///
    /// A bit probe on the kernel's interned-class match table (or a
    /// branch-light conjunct scan when the class space is too large to
    /// tabulate) — no locks, no allocation.
    pub fn class_matches(&self, class: &TupleClass, query_idx: usize) -> bool {
        self.kernel.class_matches(class, query_idx)
    }

    /// The abstract outcome of modifying one tuple from `pair.source` to
    /// `pair.destination` for query `query_idx` (Lemma 5.1).
    pub fn outcome(&self, pair: &ClassPair, query_idx: usize) -> Outcome {
        let s = self.class_matches(&pair.source, query_idx);
        let d = self.class_matches(&pair.destination, query_idx);
        let projection_changed = self.projection_touched(&pair.changed_attributes);
        match (s, d) {
            (false, false) => Outcome::Unchanged,
            (false, true) => Outcome::Added,
            (true, false) => Outcome::Removed,
            (true, true) => {
                if projection_changed {
                    Outcome::Replaced
                } else {
                    Outcome::Unchanged
                }
            }
        }
    }

    /// The sizes of the query subsets induced (at the class level) by a set
    /// of pairs: queries are grouped by their vector of per-pair outcomes.
    pub fn partition_sizes(&self, pairs: &[ClassPair]) -> Vec<usize> {
        self.partition_sizes_indexed(pairs, None)
    }

    /// [`Self::partition_sizes`] over `pool[indices]` without materializing
    /// the subset (Algorithm 4's extension loop calls this per candidate
    /// extension).
    pub fn partition_sizes_of(&self, pool: &[ClassPair], indices: &[usize]) -> Vec<usize> {
        self.partition_sizes_indexed(pool, Some(indices))
    }

    fn partition_sizes_indexed(&self, pool: &[ClassPair], indices: Option<&[usize]>) -> Vec<usize> {
        let count = indices.map_or(pool.len(), <[usize]>::len);
        let nq = self.queries.len();
        if count == 0 {
            return vec![nq];
        }
        let pair_at = |i: usize| -> &ClassPair {
            match indices {
                Some(idx) => &pool[idx[i]],
                None => &pool[i],
            }
        };
        if count == 1 {
            // Hot path (skyline): pure popcounts, canonical outcome order.
            let pair = pair_at(0);
            let mut s_scratch = self.match_scratch();
            let mut d_scratch = self.match_scratch();
            let s = self
                .kernel
                .match_words(&pair.source, &mut s_scratch)
                .to_vec();
            let d = self.kernel.match_words(&pair.destination, &mut d_scratch);
            let stats =
                self.kernel
                    .pair_stats(&s, d, self.projection_touched(&pair.changed_attributes));
            return stats.sizes().collect();
        }
        if count <= 32 {
            // Pack each query's outcome vector into a u64 (2 bits per pair),
            // then count equal signatures.
            let mut keys = vec![0u64; nq];
            let mut s_scratch = self.match_scratch();
            let mut d_scratch = self.match_scratch();
            for i in 0..count {
                let pair = pair_at(i);
                let proj = self.projection_touched(&pair.changed_attributes);
                let s = self
                    .kernel
                    .match_words(&pair.source, &mut s_scratch)
                    .to_vec();
                let d = self.kernel.match_words(&pair.destination, &mut d_scratch);
                for (q, key) in keys.iter_mut().enumerate() {
                    *key |= u64::from(self.kernel.outcome_code(&s, d, proj, q)) << (2 * i);
                }
            }
            keys.sort_unstable();
            let mut sizes = Vec::new();
            let mut run = 1usize;
            for w in keys.windows(2) {
                if w[0] == w[1] {
                    run += 1;
                } else {
                    sizes.push(run);
                    run = 1;
                }
            }
            sizes.push(run);
            return sizes;
        }
        // Cold path for very large pair sets: explicit signatures.
        let mut groups: BTreeMap<Vec<Outcome>, usize> = BTreeMap::new();
        for q in 0..nq {
            let signature: Vec<Outcome> = (0..count).map(|i| self.outcome(pair_at(i), q)).collect();
            *groups.entry(signature).or_insert(0) += 1;
        }
        groups.into_values().collect()
    }

    /// The balance score of the class-level partitioning induced by `pairs`.
    pub fn balance(&self, pairs: &[ClassPair]) -> f64 {
        balance_score(&self.partition_sizes(pairs))
    }

    /// [`Self::balance`] over `pool[indices]` without cloning the pairs.
    pub fn balance_of(&self, pool: &[ClassPair], indices: &[usize]) -> f64 {
        balance_score(&self.partition_sizes_of(pool, indices))
    }

    /// All single-attribute-change destination pairs for one source class.
    pub fn destination_pairs(&self, source: &TupleClass, modify_count: usize) -> Vec<ClassPair> {
        let mut out = Vec::new();
        let _ = self.space.for_each_destination_class(
            source,
            modify_count,
            &self.modifiable,
            |dest, changed| {
                out.push(ClassPair {
                    source: source.clone(),
                    destination: dest.clone(),
                    changed_attributes: changed.to_vec(),
                });
                std::ops::ControlFlow::Continue(())
            },
        );
        out
    }

    /// Applies a set of cell edits *virtually* to the joined relation: for
    /// every joined row containing an edited base tuple, returns
    /// `(join row index, original tuple, patched tuple)`.
    pub fn patched_join_rows(
        &self,
        edits: &[crate::realize::CellEdit],
    ) -> Vec<(usize, Tuple, Tuple)> {
        let mut patched: BTreeMap<usize, Tuple> = BTreeMap::new();
        for edit in edits {
            for &jrow in self.join_index.joined_rows_of(&edit.table, edit.row) {
                let entry = patched
                    .entry(jrow)
                    .or_insert_with(|| self.join.rows()[jrow].tuple.clone());
                // Patch every join column that originates from the edited
                // base cell.
                for (col_idx, col) in self.join.columns().iter().enumerate() {
                    if col.table == edit.table
                        && col.column == edit.column
                        && self.join.rows()[jrow].provenance.get(&edit.table) == Some(&edit.row)
                    {
                        entry.set(col_idx, edit.new_value.clone());
                    }
                }
            }
        }
        patched
            .into_iter()
            .map(|(jrow, tuple)| (jrow, self.join.rows()[jrow].tuple.clone(), tuple))
            .collect()
    }
}

/// Which selection attributes may be modified: an attribute is locked when
/// its base column participates in a primary key or a foreign key — modifying
/// key columns would change the join structure or violate integrity
/// constraints (Section 6.3).
fn modifiable_attributes(db: &Database, space: &TupleClassSpace) -> Vec<bool> {
    space
        .attributes()
        .iter()
        .map(|attr| !is_key_column(db, &attr.table, &attr.base_column))
        .collect()
}

/// Whether `table.column` participates in a primary key or foreign key.
fn is_key_column(db: &Database, table: &str, column: &str) -> bool {
    let in_fk = db.foreign_keys().iter().any(|fk| {
        (fk.child_table == table && fk.child_columns.iter().any(|c| c == column))
            || (fk.parent_table == table && fk.parent_columns.iter().any(|c| c == column))
    });
    let in_pk = db
        .table(table)
        .ok()
        .map(|t| {
            t.schema()
                .primary_key()
                .iter()
                .any(|&i| t.schema().columns()[i].name == column)
        })
        .unwrap_or(false);
    in_fk || in_pk
}

/// Precomputes, per (attribute position, block), whether the block's
/// representative can be stored in the base column's declared type.
fn block_realizability(db: &Database, space: &TupleClassSpace) -> Vec<Vec<bool>> {
    space
        .attributes()
        .iter()
        .map(|attr| {
            let data_type = db
                .table(&attr.table)
                .ok()
                .and_then(|t| t.schema().column(&attr.base_column))
                .map(|c| c.data_type);
            attr.blocks
                .iter()
                .map(|b| match data_type {
                    Some(dt) => b.representative().conforms_to(dt),
                    None => false,
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::{ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, Table, TableSchema};

    fn employee_context() -> GenerationContext {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        let q = |p| SpjQuery::new(vec!["Employee"], vec!["name"], p);
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
        ];
        let result = qfe_query::evaluate(&queries[0], &db).unwrap();
        GenerationContext::new(&db, &result, &queries).unwrap()
    }

    #[test]
    fn construction_exposes_shared_state() {
        let ctx = employee_context();
        assert_eq!(ctx.queries().len(), 3);
        assert_eq!(ctx.query_count(), 3);
        assert_eq!(ctx.join_tables(), &["Employee".to_string()]);
        assert_eq!(ctx.join().len(), 4);
        assert_eq!(ctx.bound_queries().len(), 3);
        assert_eq!(ctx.class_space().attribute_count(), 3);
        assert_eq!(ctx.source_classes().len(), 2);
        assert_eq!(ctx.database().table_count(), 1);
        assert_eq!(ctx.original_result().len(), 2);
        assert_eq!(ctx.projection_columns().len(), 1);
        assert!(!ctx.join_index().is_empty());
    }

    #[test]
    fn context_is_sync_and_send() {
        fn takes_sync<T: Sync + Send>(_: &T) {}
        let ctx = employee_context();
        takes_sync(&ctx);
    }

    #[test]
    fn key_attributes_are_locked() {
        let ctx = employee_context();
        // None of gender/dept/salary is a key: all modifiable.
        assert!(ctx.modifiable_attributes().iter().all(|&m| m));
    }

    #[test]
    fn mixed_join_schemas_rejected() {
        let ctx = employee_context();
        let mut queries = ctx.queries().to_vec();
        queries.push(SpjQuery::new(
            vec!["Other"],
            vec!["name"],
            DnfPredicate::always_true(),
        ));
        let err =
            GenerationContext::new(ctx.database(), ctx.original_result(), &queries).unwrap_err();
        assert!(matches!(err, QfeError::MixedJoinSchemas));
        let err = GenerationContext::new(ctx.database(), ctx.original_result(), &[]).unwrap_err();
        assert!(matches!(err, QfeError::NoCandidates));
    }

    #[test]
    fn class_matching_is_consistent() {
        let ctx = employee_context();
        // Bob/Darren's class matches every candidate; Alice/Celina's matches none.
        let bob_class = ctx
            .class_space()
            .classify(&ctx.join().rows()[1].tuple)
            .unwrap();
        let alice_class = ctx
            .class_space()
            .classify(&ctx.join().rows()[0].tuple)
            .unwrap();
        for q in 0..3 {
            assert!(ctx.class_matches(&bob_class, q));
            assert!(!ctx.class_matches(&alice_class, q));
            // Repeated probes are stable.
            assert!(ctx.class_matches(&bob_class, q));
        }
    }

    #[test]
    fn outcomes_follow_lemma_5_1() {
        let ctx = employee_context();
        let bob_class = ctx
            .class_space()
            .classify(&ctx.join().rows()[1].tuple)
            .unwrap();
        // Destination pairs changing a single attribute from Bob's class.
        let pairs = ctx.destination_pairs(&bob_class, 1);
        assert!(!pairs.is_empty());
        for pair in &pairs {
            assert_eq!(pair.edit_cost(), 1);
            for q in 0..3 {
                let o = ctx.outcome(pair, q);
                // The projection (name) is never a selection attribute here,
                // so Replaced is impossible.
                assert_ne!(o, Outcome::Replaced);
            }
        }
        // A pair that moves Bob out of the "salary > 4000" block must Remove
        // him from Q2's result while leaving Q1 and Q3 unchanged.
        let salary_pos = ctx
            .class_space()
            .attributes()
            .iter()
            .position(|a| a.base_column == "salary")
            .unwrap();
        let salary_pair = pairs
            .iter()
            .find(|p| p.changed_attributes == vec![salary_pos])
            .unwrap();
        assert_eq!(ctx.outcome(salary_pair, 0), Outcome::Unchanged);
        assert_eq!(ctx.outcome(salary_pair, 1), Outcome::Removed);
        assert_eq!(ctx.outcome(salary_pair, 2), Outcome::Unchanged);
    }

    #[test]
    fn partition_sizes_and_balance_for_single_pair() {
        let ctx = employee_context();
        let bob_class = ctx
            .class_space()
            .classify(&ctx.join().rows()[1].tuple)
            .unwrap();
        let salary_pos = ctx
            .class_space()
            .attributes()
            .iter()
            .position(|a| a.base_column == "salary")
            .unwrap();
        let pair = ctx
            .destination_pairs(&bob_class, 1)
            .into_iter()
            .find(|p| p.changed_attributes == vec![salary_pos])
            .unwrap();
        // The salary change separates Q2 from {Q1, Q3}: sizes {1, 2}.
        let mut sizes = ctx.partition_sizes(std::slice::from_ref(&pair));
        sizes.sort();
        assert_eq!(sizes, vec![1, 2]);
        assert!(ctx.balance(std::slice::from_ref(&pair)).is_finite());
        // No pairs: single group, infinite balance.
        assert!(ctx.balance(&[]).is_infinite());
    }

    #[test]
    fn multi_pair_partitions_agree_with_outcome_signatures() {
        let ctx = employee_context();
        let bob_class = ctx
            .class_space()
            .classify(&ctx.join().rows()[1].tuple)
            .unwrap();
        let pairs = ctx.destination_pairs(&bob_class, 1);
        assert!(pairs.len() >= 2);
        // Reference implementation: group queries by explicit signatures.
        let mut groups: BTreeMap<Vec<Outcome>, usize> = BTreeMap::new();
        for q in 0..ctx.query_count() {
            let sig: Vec<Outcome> = pairs.iter().map(|p| ctx.outcome(p, q)).collect();
            *groups.entry(sig).or_insert(0) += 1;
        }
        let mut expected: Vec<usize> = groups.into_values().collect();
        expected.sort_unstable();
        let mut got = ctx.partition_sizes(&pairs);
        got.sort_unstable();
        assert_eq!(got, expected);
        // Indexed variant agrees with the materialized subset.
        let indices: Vec<usize> = (0..pairs.len()).collect();
        assert_eq!(ctx.balance(&pairs), ctx.balance_of(&pairs, &indices));
        let subset = [0usize, pairs.len() - 1];
        let materialized = vec![pairs[0].clone(), pairs[pairs.len() - 1].clone()];
        assert_eq!(ctx.balance(&materialized), ctx.balance_of(&pairs, &subset));
    }

    #[test]
    fn advance_without_edits_matches_fresh_context() {
        let ctx = employee_context();
        // Keep candidates {0, 2}.
        let advanced = ctx.advance(&[0, 2], &[]).unwrap();
        let fresh = GenerationContext::new(
            ctx.database(),
            ctx.original_result(),
            &[ctx.queries()[0].clone(), ctx.queries()[2].clone()],
        )
        .unwrap();
        assert_eq!(advanced.queries().len(), 2);
        assert_eq!(advanced.source_classes(), fresh.source_classes());
        assert_eq!(
            advanced.class_space().attribute_count(),
            fresh.class_space().attribute_count()
        );
        for (a, f) in advanced
            .class_space()
            .attributes()
            .iter()
            .zip(fresh.class_space().attributes())
        {
            assert_eq!(a.column, f.column);
            assert_eq!(a.blocks, f.blocks);
        }
        assert_eq!(
            advanced.modifiable_attributes(),
            fresh.modifiable_attributes()
        );
        assert_eq!(advanced.projection_columns(), fresh.projection_columns());
        // The join, the columnar mirror and the database are shared, not
        // recomputed.
        assert!(Arc::ptr_eq(&advanced.join, &ctx.join));
        assert!(Arc::ptr_eq(&advanced.columnar, &ctx.columnar));
        assert!(Arc::ptr_eq(&advanced.db, &ctx.db));
        // Class-level reasoning agrees on every source class and query.
        for class in fresh.source_classes().keys() {
            for q in 0..2 {
                assert_eq!(
                    advanced.class_matches(class, q),
                    fresh.class_matches(class, q)
                );
            }
        }
    }

    #[test]
    fn advance_with_edits_matches_fresh_context_on_patched_db() {
        let ctx = employee_context();
        let edits = vec![crate::realize::CellEdit {
            table: "Employee".to_string(),
            row: 1,
            column: "salary".to_string(),
            new_value: Value::Int(3900),
        }];
        let advanced = ctx.advance(&[0, 1, 2], &edits).unwrap();
        let patched = crate::realize::apply_edits(ctx.database(), &edits).unwrap();
        let fresh = GenerationContext::new(&patched, ctx.original_result(), ctx.queries()).unwrap();
        assert_eq!(advanced.source_classes(), fresh.source_classes());
        assert_eq!(advanced.join().len(), fresh.join().len());
        for (a, f) in advanced.join().rows().iter().zip(fresh.join().rows()) {
            assert_eq!(a.tuple, f.tuple);
        }
        // The patched columnar mirror tracks the patched join cell-for-cell
        // (and its generation advanced, invalidating term-bitmap caches).
        assert!(advanced.columnar().generation() > ctx.columnar().generation());
        for (r, jr) in advanced.join().rows().iter().enumerate() {
            for c in 0..advanced.join().arity() {
                assert_eq!(
                    advanced.columnar().value_at(r, c),
                    jr.tuple.get(c).cloned().unwrap_or(Value::Null),
                    "cell ({r},{c})"
                );
            }
        }
        for (a, f) in advanced
            .class_space()
            .attributes()
            .iter()
            .zip(fresh.class_space().attributes())
        {
            assert_eq!(a.blocks, f.blocks, "attribute {} diverged", a.reference);
        }
    }

    #[test]
    fn advance_report_names_the_tier_taken() {
        let ctx = employee_context();

        // All candidates survive, no edits: everything shared, kernel reused.
        let (_, report) = ctx.advance_with_report(&[0, 1, 2], &[]).unwrap();
        assert_eq!(report.path, AdvancePath::SharedNoEdit);
        assert_eq!(report.kernel, KernelReuse::Reused);
        assert!(report.cell_deltas.is_empty());
        assert!(report.edited_columns.is_empty());

        // Pruned candidates: the class geometry changes, kernel rebuilt.
        let (_, report) = ctx.advance_with_report(&[0, 2], &[]).unwrap();
        assert_eq!(report.path, AdvancePath::SharedNoEdit);
        assert_eq!(report.kernel, KernelReuse::Rebuilt);

        // A non-key cell edit: delta path, one delta for the one joined row.
        let edits = vec![crate::realize::CellEdit {
            table: "Employee".to_string(),
            row: 1,
            column: "salary".to_string(),
            new_value: Value::Int(3900),
        }];
        let (advanced, report) = ctx.advance_with_report(&[0, 1, 2], &edits).unwrap();
        assert_eq!(report.path, AdvancePath::DeltaPatched);
        assert_eq!(report.cell_deltas.len(), 1);
        let salary_col = ctx.join().resolve_column("salary").unwrap();
        assert_eq!(report.cell_deltas[0].column, salary_col);
        assert_eq!(report.cell_deltas[0].row, 1);
        assert_eq!(report.cell_deltas[0].old, Value::Int(4200));
        assert_eq!(report.cell_deltas[0].new, Value::Int(3900));
        assert_eq!(report.edited_columns, vec![salary_col]);
        // The deltas carry the epochs the advanced mirror now exposes.
        assert_eq!(
            advanced.columnar().column_epoch(salary_col),
            report.cell_deltas[0].epoch
        );

        // A key-column edit forces the audited full-rebuild fallback.
        let before = advance_full_rebuilds();
        let key_edit = vec![crate::realize::CellEdit {
            table: "Employee".to_string(),
            row: 1,
            column: "Eid".to_string(),
            new_value: Value::Int(99),
        }];
        let (_, report) = ctx.advance_with_report(&[0, 1, 2], &key_edit).unwrap();
        assert_eq!(report.path, AdvancePath::FullRebuild);
        assert_eq!(report.kernel, KernelReuse::Rebuilt);
        assert_eq!(advance_full_rebuilds(), before + 1);
    }

    #[test]
    fn advance_validates_surviving_indices() {
        let ctx = employee_context();
        assert!(matches!(ctx.advance(&[], &[]), Err(QfeError::NoCandidates)));
        assert!(ctx.advance(&[1, 0], &[]).is_err());
        assert!(ctx.advance(&[0, 0], &[]).is_err());
        assert!(ctx.advance(&[7], &[]).is_err());
    }

    #[test]
    fn patched_join_rows_applies_edits_virtually() {
        let ctx = employee_context();
        let edits = vec![crate::realize::CellEdit {
            table: "Employee".to_string(),
            row: 1,
            column: "salary".to_string(),
            new_value: qfe_relation::Value::Int(3900),
        }];
        let patched = ctx.patched_join_rows(&edits);
        assert_eq!(patched.len(), 1);
        let (jrow, old, new) = &patched[0];
        assert_eq!(*jrow, 1);
        let salary_col = ctx.join().resolve_column("salary").unwrap();
        assert_eq!(old.get(salary_col), Some(&qfe_relation::Value::Int(4200)));
        assert_eq!(new.get(salary_col), Some(&qfe_relation::Value::Int(3900)));
    }
}
