//! Shared per-iteration state of the database generator.
//!
//! At each feedback iteration the database generator works with the original
//! pair `(D, R)`, the surviving candidate queries `QC'`, their shared
//! foreign-key join, the join index (for side-effect accounting), and the
//! tuple-class space derived from `QC'`.  [`GenerationContext`] bundles that
//! state and provides the cheap, class-level reasoning (query/class matching,
//! outcome signatures, balance scores) that Algorithms 3 and 4 are built on.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use qfe_query::{BoundQuery, QueryResult, SpjQuery};
use qfe_relation::{foreign_key_join, Database, JoinIndex, JoinedRelation, Tuple};

use crate::cost::balance_score;
use crate::error::{QfeError, Result};
use crate::tuple_class::{TupleClass, TupleClassSpace};

/// A candidate single-tuple modification at the tuple-class level: a
/// (source-tuple-class, destination-tuple-class) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassPair {
    /// The source tuple class (some tuple of `D` belongs to it).
    pub source: TupleClass,
    /// The destination tuple class the tuple is modified into.
    pub destination: TupleClass,
    /// Positions (into the selection-attribute list) changed by the pair.
    pub changed_attributes: Vec<usize>,
}

impl ClassPair {
    /// The pair's minimum edit cost: one attribute modification per changed
    /// attribute.
    pub fn edit_cost(&self) -> usize {
        self.changed_attributes.len()
    }
}

/// The abstract effect of a single-tuple modification on one query's result
/// (the four cases of Lemma 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// The query's result is unchanged.
    Unchanged,
    /// The modified tuple newly satisfies the query: one row added.
    Added,
    /// The tuple no longer satisfies the query: one row removed.
    Removed,
    /// The tuple satisfies the query before and after, but its projected
    /// value changed: one row replaced.
    Replaced,
}

/// Per-iteration state shared by the skyline search (Algorithm 3), the subset
/// selection (Algorithm 4) and the realization of modifications.
#[derive(Debug)]
pub struct GenerationContext {
    db: Database,
    original_result: QueryResult,
    queries: Vec<SpjQuery>,
    join_tables: Vec<String>,
    join: JoinedRelation,
    join_index: JoinIndex,
    bound: Vec<BoundQuery>,
    space: TupleClassSpace,
    source_classes: BTreeMap<TupleClass, Vec<usize>>,
    modifiable: Vec<bool>,
    projection_columns: BTreeSet<usize>,
    match_cache: RefCell<HashMap<TupleClass, Vec<bool>>>,
}

impl GenerationContext {
    /// Builds the context for one iteration.
    ///
    /// All candidate queries must share the same join schema (the Section 5
    /// assumption); [`QfeError::MixedJoinSchemas`] is returned otherwise.
    pub fn new(db: &Database, original_result: &QueryResult, queries: &[SpjQuery]) -> Result<Self> {
        if queries.is_empty() {
            return Err(QfeError::NoCandidates);
        }
        let join_tables = queries[0].join_signature();
        if queries.iter().any(|q| q.join_signature() != join_tables) {
            return Err(QfeError::MixedJoinSchemas);
        }
        let join = foreign_key_join(db, &join_tables)?;
        let join_index = JoinIndex::build(&join);
        let bound: Vec<BoundQuery> = queries
            .iter()
            .map(|q| BoundQuery::bind(q, &join))
            .collect::<std::result::Result<_, _>>()?;
        let space = TupleClassSpace::build(&join, queries)?;
        let source_classes = space.source_classes(&join);

        // Projection columns (shared by all candidates: R determines ℓ).
        let projection_columns: BTreeSet<usize> =
            bound[0].projection_indices().iter().copied().collect();

        // An attribute is modifiable unless its base column participates in a
        // primary key or a foreign key: modifying key columns would change the
        // join structure or violate integrity constraints (Section 6.3).
        let modifiable: Vec<bool> = space
            .attributes()
            .iter()
            .map(|attr| {
                let in_fk = db.foreign_keys().iter().any(|fk| {
                    (fk.child_table == attr.table && fk.child_columns.contains(&attr.base_column))
                        || (fk.parent_table == attr.table
                            && fk.parent_columns.contains(&attr.base_column))
                });
                let in_pk = db
                    .table(&attr.table)
                    .ok()
                    .map(|t| {
                        t.schema()
                            .primary_key()
                            .iter()
                            .any(|&i| t.schema().columns()[i].name == attr.base_column)
                    })
                    .unwrap_or(false);
                !(in_fk || in_pk)
            })
            .collect();

        Ok(GenerationContext {
            db: db.clone(),
            original_result: original_result.clone(),
            queries: queries.to_vec(),
            join_tables,
            join,
            join_index,
            bound,
            space,
            source_classes,
            modifiable,
            projection_columns,
            match_cache: RefCell::new(HashMap::new()),
        })
    }

    /// The original database `D`.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The original example result `R`.
    pub fn original_result(&self) -> &QueryResult {
        &self.original_result
    }

    /// The surviving candidate queries.
    pub fn queries(&self) -> &[SpjQuery] {
        &self.queries
    }

    /// The shared join schema (sorted table names).
    pub fn join_tables(&self) -> &[String] {
        &self.join_tables
    }

    /// The foreign-key join of the candidate queries' tables over `D`.
    pub fn join(&self) -> &JoinedRelation {
        &self.join
    }

    /// The join index of [`Self::join`].
    pub fn join_index(&self) -> &JoinIndex {
        &self.join_index
    }

    /// The candidate queries bound against [`Self::join`].
    pub fn bound_queries(&self) -> &[BoundQuery] {
        &self.bound
    }

    /// The tuple-class space for the candidate set.
    pub fn class_space(&self) -> &TupleClassSpace {
        &self.space
    }

    /// The source-tuple classes and their member join rows.
    pub fn source_classes(&self) -> &BTreeMap<TupleClass, Vec<usize>> {
        &self.source_classes
    }

    /// Which selection attributes may be modified (non-key attributes).
    pub fn modifiable_attributes(&self) -> &[bool] {
        &self.modifiable
    }

    /// Join-column indices projected by the candidate queries.
    pub fn projection_columns(&self) -> &BTreeSet<usize> {
        &self.projection_columns
    }

    /// Whether a tuple of `class` satisfies candidate query `query_idx`
    /// (memoized).
    pub fn class_matches(&self, class: &TupleClass, query_idx: usize) -> bool {
        {
            let cache = self.match_cache.borrow();
            if let Some(row) = cache.get(class) {
                return row[query_idx];
            }
        }
        let row: Vec<bool> = self
            .bound
            .iter()
            .map(|b| self.space.class_matches(class, b))
            .collect();
        let result = row[query_idx];
        self.match_cache.borrow_mut().insert(class.clone(), row);
        result
    }

    /// The abstract outcome of modifying one tuple from `pair.source` to
    /// `pair.destination` for query `query_idx` (Lemma 5.1).
    pub fn outcome(&self, pair: &ClassPair, query_idx: usize) -> Outcome {
        let s = self.class_matches(&pair.source, query_idx);
        let d = self.class_matches(&pair.destination, query_idx);
        // Did the modification touch a projected column?
        let projection_changed = pair.changed_attributes.iter().any(|&pos| {
            let col = self.space.attributes()[pos].column;
            self.projection_columns.contains(&col)
        });
        match (s, d) {
            (false, false) => Outcome::Unchanged,
            (false, true) => Outcome::Added,
            (true, false) => Outcome::Removed,
            (true, true) => {
                if projection_changed {
                    Outcome::Replaced
                } else {
                    Outcome::Unchanged
                }
            }
        }
    }

    /// The sizes of the query subsets induced (at the class level) by a set
    /// of pairs: queries are grouped by their vector of per-pair outcomes.
    pub fn partition_sizes(&self, pairs: &[ClassPair]) -> Vec<usize> {
        let mut groups: BTreeMap<Vec<Outcome>, usize> = BTreeMap::new();
        for q in 0..self.queries.len() {
            let signature: Vec<Outcome> = pairs.iter().map(|p| self.outcome(p, q)).collect();
            *groups.entry(signature).or_insert(0) += 1;
        }
        groups.into_values().collect()
    }

    /// The balance score of the class-level partitioning induced by `pairs`.
    pub fn balance(&self, pairs: &[ClassPair]) -> f64 {
        balance_score(&self.partition_sizes(pairs))
    }

    /// All single-attribute-change destination pairs for one source class.
    pub fn destination_pairs(&self, source: &TupleClass, modify_count: usize) -> Vec<ClassPair> {
        self.space
            .destination_classes(source, modify_count, &self.modifiable)
            .into_iter()
            .map(|(destination, changed_attributes)| ClassPair {
                source: source.clone(),
                destination,
                changed_attributes,
            })
            .collect()
    }

    /// Applies a set of cell edits *virtually* to the joined relation: for
    /// every joined row containing an edited base tuple, returns
    /// `(join row index, original tuple, patched tuple)`.
    pub fn patched_join_rows(
        &self,
        edits: &[crate::realize::CellEdit],
    ) -> Vec<(usize, Tuple, Tuple)> {
        let mut patched: BTreeMap<usize, Tuple> = BTreeMap::new();
        for edit in edits {
            for &jrow in self.join_index.joined_rows_of(&edit.table, edit.row) {
                let entry = patched
                    .entry(jrow)
                    .or_insert_with(|| self.join.rows()[jrow].tuple.clone());
                // Patch every join column that originates from the edited
                // base cell.
                for (col_idx, col) in self.join.columns().iter().enumerate() {
                    if col.table == edit.table
                        && col.column == edit.column
                        && self.join.rows()[jrow].provenance.get(&edit.table) == Some(&edit.row)
                    {
                        entry.set(col_idx, edit.new_value.clone());
                    }
                }
            }
        }
        patched
            .into_iter()
            .map(|(jrow, tuple)| (jrow, self.join.rows()[jrow].tuple.clone(), tuple))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::{ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, Table, TableSchema};

    fn employee_context() -> GenerationContext {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        let q = |p| SpjQuery::new(vec!["Employee"], vec!["name"], p);
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
        ];
        let result = qfe_query::evaluate(&queries[0], &db).unwrap();
        GenerationContext::new(&db, &result, &queries).unwrap()
    }

    #[test]
    fn construction_exposes_shared_state() {
        let ctx = employee_context();
        assert_eq!(ctx.queries().len(), 3);
        assert_eq!(ctx.join_tables(), &["Employee".to_string()]);
        assert_eq!(ctx.join().len(), 4);
        assert_eq!(ctx.bound_queries().len(), 3);
        assert_eq!(ctx.class_space().attribute_count(), 3);
        assert_eq!(ctx.source_classes().len(), 2);
        assert_eq!(ctx.database().table_count(), 1);
        assert_eq!(ctx.original_result().len(), 2);
        assert_eq!(ctx.projection_columns().len(), 1);
        assert!(!ctx.join_index().is_empty());
    }

    #[test]
    fn key_attributes_are_locked() {
        let ctx = employee_context();
        // None of gender/dept/salary is a key: all modifiable.
        assert!(ctx.modifiable_attributes().iter().all(|&m| m));
    }

    #[test]
    fn mixed_join_schemas_rejected() {
        let ctx = employee_context();
        let mut queries = ctx.queries().to_vec();
        queries.push(SpjQuery::new(
            vec!["Other"],
            vec!["name"],
            DnfPredicate::always_true(),
        ));
        let err =
            GenerationContext::new(ctx.database(), ctx.original_result(), &queries).unwrap_err();
        assert!(matches!(err, QfeError::MixedJoinSchemas));
        let err = GenerationContext::new(ctx.database(), ctx.original_result(), &[]).unwrap_err();
        assert!(matches!(err, QfeError::NoCandidates));
    }

    #[test]
    fn class_matching_is_consistent_and_cached() {
        let ctx = employee_context();
        // Bob/Darren's class matches every candidate; Alice/Celina's matches none.
        let bob_class = ctx
            .class_space()
            .classify(&ctx.join().rows()[1].tuple)
            .unwrap();
        let alice_class = ctx
            .class_space()
            .classify(&ctx.join().rows()[0].tuple)
            .unwrap();
        for q in 0..3 {
            assert!(ctx.class_matches(&bob_class, q));
            assert!(!ctx.class_matches(&alice_class, q));
            // Second call exercises the cache path.
            assert!(ctx.class_matches(&bob_class, q));
        }
    }

    #[test]
    fn outcomes_follow_lemma_5_1() {
        let ctx = employee_context();
        let bob_class = ctx
            .class_space()
            .classify(&ctx.join().rows()[1].tuple)
            .unwrap();
        // Destination pairs changing a single attribute from Bob's class.
        let pairs = ctx.destination_pairs(&bob_class, 1);
        assert!(!pairs.is_empty());
        for pair in &pairs {
            assert_eq!(pair.edit_cost(), 1);
            for q in 0..3 {
                let o = ctx.outcome(pair, q);
                // The projection (name) is never a selection attribute here,
                // so Replaced is impossible.
                assert_ne!(o, Outcome::Replaced);
            }
        }
        // A pair that moves Bob out of the "salary > 4000" block must Remove
        // him from Q2's result while leaving Q1 and Q3 unchanged.
        let salary_pos = ctx
            .class_space()
            .attributes()
            .iter()
            .position(|a| a.base_column == "salary")
            .unwrap();
        let salary_pair = pairs
            .iter()
            .find(|p| p.changed_attributes == vec![salary_pos])
            .unwrap();
        assert_eq!(ctx.outcome(salary_pair, 0), Outcome::Unchanged);
        assert_eq!(ctx.outcome(salary_pair, 1), Outcome::Removed);
        assert_eq!(ctx.outcome(salary_pair, 2), Outcome::Unchanged);
    }

    #[test]
    fn partition_sizes_and_balance_for_single_pair() {
        let ctx = employee_context();
        let bob_class = ctx
            .class_space()
            .classify(&ctx.join().rows()[1].tuple)
            .unwrap();
        let salary_pos = ctx
            .class_space()
            .attributes()
            .iter()
            .position(|a| a.base_column == "salary")
            .unwrap();
        let pair = ctx
            .destination_pairs(&bob_class, 1)
            .into_iter()
            .find(|p| p.changed_attributes == vec![salary_pos])
            .unwrap();
        // The salary change separates Q2 from {Q1, Q3}: sizes {1, 2}.
        let mut sizes = ctx.partition_sizes(std::slice::from_ref(&pair));
        sizes.sort();
        assert_eq!(sizes, vec![1, 2]);
        assert!(ctx.balance(std::slice::from_ref(&pair)).is_finite());
        // No pairs: single group, infinite balance.
        assert!(ctx.balance(&[]).is_infinite());
    }

    #[test]
    fn patched_join_rows_applies_edits_virtually() {
        let ctx = employee_context();
        let edits = vec![crate::realize::CellEdit {
            table: "Employee".to_string(),
            row: 1,
            column: "salary".to_string(),
            new_value: qfe_relation::Value::Int(3900),
        }];
        let patched = ctx.patched_join_rows(&edits);
        assert_eq!(patched.len(), 1);
        let (jrow, old, new) = &patched[0];
        assert_eq!(*jrow, 1);
        let salary_col = ctx.join().resolve_column("salary").unwrap();
        assert_eq!(old.get(salary_col), Some(&qfe_relation::Value::Int(4200)));
        assert_eq!(new.get(salary_col), Some(&qfe_relation::Value::Int(3900)));
    }
}
