//! # qfe-core — Query From Examples
//!
//! The core of the reproduction of *"Query From Examples: An Iterative,
//! Data-Driven Approach to Query Construction"* (Li, Chan, Maier — PVLDB
//! 8(13), 2015).
//!
//! QFE helps a non-SQL user construct a select-project-join query from a
//! single example database-result pair `(D, R)`:
//!
//! 1. a candidate set `QC` of queries with `Q(D) = R` is generated
//!    (`qfe-qbo`);
//! 2. at each feedback round the **Database Generator** ([`DatabaseGenerator`],
//!    Algorithm 2) computes a minimally modified database `D'` that splits the
//!    surviving candidates into subsets with distinct results, minimizing the
//!    **user-effort cost model** ([`CostParams`], Section 3) via a search over
//!    **tuple classes** ([`TupleClassSpace`], Section 5): skyline (STC, DTC)
//!    pairs ([`skyline_stc_dtc_pairs`], Algorithm 3) followed by a
//!    balance-pruned subset search ([`pick_stc_dtc_subset`], Algorithm 4);
//! 3. the **Result Feedback** module ([`FeedbackUser`]) shows the user
//!    `Δ(D, D')` and the candidate results `Δ(R, R_i)`; the chosen result
//!    prunes the false positives, and the loop ([`QfeSession`], Algorithm 1)
//!    repeats until one query remains.
//!
//! Algorithm 1 is exposed two ways. [`QfeSession::run`] is the blocking
//! callback loop for automated responders; [`QfeSession::start`] yields a
//! sans-IO [`QfeEngine`] whose [`step`](QfeEngine::step) /
//! [`answer`](QfeEngine::answer) API suspends cleanly while a real user
//! thinks, serializes to a [`SessionSnapshot`] for cross-process resume, and
//! scales to many concurrent users behind a [`SessionManager`].
//!
//! ## The generation kernel: bitsets, threads, incremental contexts
//!
//! The per-round hot path (Algorithms 3–4) runs on a dense bit-packed kernel
//! prepared once per [`GenerationContext`]:
//!
//! * **Interned tuple classes.** Every class gets a mixed-radix id over its
//!   per-attribute block indices; candidate matching is a per-class bitset
//!   (one bit per surviving query) — precomputed as a dense table when the
//!   class space is small, or reconstructed by AND-ing per-`(attribute,
//!   block)` conjunct bitsets otherwise. Outcome signatures (Lemma 5.1) pack
//!   into 2 bits per pair and partition sizes come from popcounts. There is
//!   no interior mutability: `GenerationContext` is `Sync`.
//! * **Parallel skyline.** [`skyline_stc_dtc_pairs`] shards Algorithm 3 over
//!   `(cost level, source class)` tasks with `std::thread::scope` under a
//!   shared atomic deadline, then merges per-source results deterministically
//!   — whenever the enumeration completes within the δ budget, the parallel
//!   outcome is byte-identical to the sequential one at every thread count
//!   (timed-out runs are best-effort, as sequentially). Skewed class spaces
//!   — few sources, huge per-source fan-out — are *sub-source sharded*:
//!   when the (level, source) grid cannot keep every worker four tasks deep,
//!   each cell splits into contiguous changed-attribute combination ranges
//!   whose shard results merge back in enumeration order, preserving the
//!   deterministic outcome. Threading knobs: the worker count defaults to
//!   `std::thread::available_parallelism` (capped by the task grid), can be
//!   pinned with [`skyline_stc_dtc_pairs_with_threads`], and is overridable
//!   process-wide with the `QFE_SKYLINE_THREADS` environment variable. The δ
//!   budget is checked against a precomputed deadline at an adaptive interval
//!   (tightening past 80% of the budget) so overshoot stays bounded.
//! * **Columnar join mirror.** Every [`GenerationContext`] carries a
//!   [`qfe_relation::ColumnarJoin`] — typed `i64`/`f64`/bool vectors,
//!   dictionary-coded strings with per-column *sorted* dictionaries, and null
//!   bitmaps — built once per join. The context reads its active domains off
//!   it (the sorted dictionaries *are* the domains, no row-value cloning)
//!   and exposes it via [`GenerationContext::columnar`] so embedders can
//!   evaluate candidates vectorized: each atomic term compiles to a
//!   selection bitmap ([`qfe_query::BoundQuery::selection_bitmap`]) via a
//!   tight typed loop (dictionary range tests for string comparisons),
//!   memoized per (column, op, literal) in a `qfe_query::TermBitmapCache`
//!   shared by every candidate bound to the join. `qfe-qbo`'s batched
//!   candidate verification (`BatchVerifier`/`verify_batch`) runs on the
//!   same machinery over its own per-join mirrors. The mirror is rebuilt
//!   only when the join itself is rebuilt; see the next bullet for when it
//!   is merely patched.
//! * **Incremental per-round contexts.** Between rounds the candidate set
//!   only shrinks and `D` changes only by explicit cell edits;
//!   [`GenerationContext::advance`] reuses the join, the columnar mirror,
//!   the join index and cached active domains, and remaps source classes
//!   through the old→new block refinement instead of reclassifying every
//!   row. Without edits the mirror is `Arc`-shared untouched; with edits it
//!   is patched cell-by-cell ([`qfe_relation::ColumnarJoin::patch_cell`]).
//!   [`QfeEngine`] advances its cached round context automatically, and the
//!   engine, its snapshots and every per-round context share one `Arc`'d
//!   copy of `(D, R)`.
//! * **Differential round maintenance.** The cost of
//!   [`GenerationContext::advance`] is proportional to the *edit*, not to
//!   `|D|`, end to end. Each patched cell yields a
//!   [`qfe_relation::CellDelta`] stamped with per-column edit epochs
//!   ([`qfe_relation::ColumnarJoin::column_epoch`]); a
//!   `qfe_query::TermBitmapCache` consumes it via `apply_delta`, flipping
//!   the one changed bit in each cached bitmap whose term touches the
//!   patched column while every other column's entries stay live (structural
//!   changes — dictionary remaps, type demotions — fall back to wholesale
//!   invalidation). The outcome kernel is derived differentially too
//!   ([`KernelReuse`]): cloned verbatim when queries and domain blocks
//!   survive, repaired per changed `(attribute, block)` slot when only block
//!   contents moved, rebuilt otherwise. The skyline keeps a cross-round
//!   [`SkylineMemo`] of per-`(cost level, source class)` results
//!   ([`skyline_stc_dtc_pairs_memoized`]) so only pairs whose cells changed
//!   are re-enumerated. [`GenerationContext::advance_with_report`] returns
//!   an [`AdvanceReport`] naming the tier taken ([`AdvancePath`]) plus the
//!   deltas; key-column edits (which change the join structure) fall back to
//!   a counted full rebuild ([`advance_full_rebuilds`], log it with
//!   `QFE_LOG_REBUILD=1`) that still `Arc`-shares untouched tables. Every
//!   fast path is byte-identical to a fresh rebuild — property-tested across
//!   random multi-round edit sequences.
//!
//! ## Step-API quickstart
//!
//! ```
//! use qfe_core::{OracleUser, FeedbackUser, QfeEngine, QfeSession, SessionSnapshot, Step};
//! use qfe_datasets::example_1_1;
//!
//! let (db, result, candidates, target) = example_1_1();
//! let session = QfeSession::builder(db, result)
//!     .with_candidates(candidates)
//!     .build()
//!     .unwrap();
//!
//! let user = OracleUser::new(target.clone());
//! let mut engine = session.start();
//! let outcome = loop {
//!     match engine.step().unwrap() {
//!         Step::Done(outcome) => break outcome,
//!         Step::AwaitFeedback(round) => {
//!             // Park the whole session as JSON while the "user" thinks,
//!             // then resume it in a fresh engine — nothing else survives.
//!             let parked = engine.snapshot().serialize();
//!             engine = QfeEngine::resume(
//!                 SessionSnapshot::deserialize(&parked).unwrap(),
//!             )
//!             .unwrap();
//!             let choice = user.choose(&round).expect("oracle finds its result");
//!             engine.answer(choice).unwrap();
//!         }
//!     }
//! };
//! assert_eq!(outcome.query, target);
//! ```
//!
//! ## Example
//!
//! ```
//! use qfe_core::{OracleUser, QfeSession};
//! use qfe_query::{evaluate, parse_sql};
//! use qfe_relation::{tuple, ColumnDef, Database, DataType, Table, TableSchema};
//!
//! // The paper's Example 1.1.
//! let mut db = Database::new();
//! db.add_table(
//!     Table::with_rows(
//!         TableSchema::new(
//!             "Employee",
//!             vec![
//!                 ColumnDef::new("Eid", DataType::Int),
//!                 ColumnDef::new("name", DataType::Text),
//!                 ColumnDef::new("gender", DataType::Text),
//!                 ColumnDef::new("dept", DataType::Text),
//!                 ColumnDef::new("salary", DataType::Int),
//!             ],
//!         )
//!         .unwrap()
//!         .with_primary_key(&["Eid"])
//!         .unwrap(),
//!         vec![
//!             tuple![1i64, "Alice", "F", "Sales", 3700i64],
//!             tuple![2i64, "Bob", "M", "IT", 4200i64],
//!             tuple![3i64, "Celina", "F", "Service", 3000i64],
//!             tuple![4i64, "Darren", "M", "IT", 5000i64],
//!         ],
//!     )
//!     .unwrap(),
//! )
//! .unwrap();
//!
//! let target = parse_sql("SELECT name FROM Employee WHERE salary > 4000").unwrap();
//! let example_result = evaluate(&target, &db).unwrap();
//!
//! let session = QfeSession::builder(db, example_result)
//!     .ensure_candidate(target.clone())
//!     .build()
//!     .unwrap();
//! let outcome = session.run(&OracleUser::new(target.clone())).unwrap();
//! // The identified query returns the same rows as the intended one.
//! assert_eq!(outcome.query.projection, target.projection);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alt_cost;
mod context;
mod cost;
mod dbgen;
mod delta;
mod domain;
mod driver;
mod engine;
mod error;
mod feedback;
mod join_groups;
mod kernel;
mod manager;
mod pick;
mod realize;
mod serial;
mod set_semantics;
mod skyline;
mod stats;
mod tuple_class;

pub use alt_cost::AltCostModel;
pub use context::{
    advance_full_rebuilds, paranoia_checks, paranoia_mismatches, AdvancePath, AdvanceReport,
    ClassPair, GenerationContext, Outcome,
};
pub use cost::{
    balance_score, estimate_iterations, objective, user_effort_cost, CostInputs, CostModelKind,
    CostParams, IterationEstimator,
};
pub use dbgen::{DatabaseGenerator, GeneratedDatabase};
pub use delta::{DatabaseDelta, ResultDelta};
pub use domain::{
    partition_categorical_domain, partition_numeric_domain, partition_numeric_domain_for,
    DomainBlock,
};
pub use driver::{QfeOutcome, QfeSession, QfeSessionBuilder, DEFAULT_MAX_ITERATIONS};
pub use engine::{PendingRound, QfeEngine, SessionSnapshot, Step};
pub use error::{QfeError, Result};
pub use feedback::{
    FeedbackChoice, FeedbackRound, FeedbackUser, InteractiveUser, OracleUser, SimulatedHumanUser,
    WorstCaseUser,
};
pub use join_groups::{group_by_join_schema, run_grouped};
pub use kernel::KernelReuse;
pub use manager::{SessionId, SessionManager};
pub use pick::{pick_stc_dtc_subset, PickOutcome};
pub use realize::{
    apply_edits, edits_to_ops, evaluate_modification, group_result, realize_pairs, CellEdit,
    GroupEffect, ModificationEvaluation, RealizedModification,
};
pub use serial::WorkloadPayload;
pub use set_semantics::{all_set_semantics, mixed_semantics, with_set_semantics};
pub use skyline::{
    skyline_stc_dtc_pairs, skyline_stc_dtc_pairs_memoized, skyline_stc_dtc_pairs_with_threads,
    SkylineMemo, SkylineOutcome,
};
pub use stats::{IterationStats, SessionReport};
pub use tuple_class::{SelectionAttribute, TupleClass, TupleClassSpace};
