//! Realizing tuple-class pairs as concrete database modifications.
//!
//! Algorithm 2's final step (and the cost evaluation inside Algorithm 4)
//! requires mapping each chosen (STC, DTC) pair to a concrete tuple
//! modification: pick a base tuple belonging to the source class and rewrite
//! the changed attributes to values of the destination class.  Because a base
//! tuple can contribute to several joined tuples, the realization prefers
//! tuples with no side effects (Section 5.4.1) and the evaluation of a
//! realized modification accounts for all affected joined tuples through the
//! join index.

use std::collections::BTreeSet;

use qfe_query::QueryResult;
use qfe_relation::{min_edit_rows, Database, EditOp, Tuple, Value};

use crate::context::{ClassPair, GenerationContext};
use crate::cost::balance_score;
use crate::error::{QfeError, Result};

/// A single-cell modification of a base table.
#[derive(Debug, Clone, PartialEq)]
pub struct CellEdit {
    /// Base table name.
    pub table: String,
    /// Base row index.
    pub row: usize,
    /// Column name.
    pub column: String,
    /// The new value.
    pub new_value: Value,
}

/// A set of concrete cell edits realizing a set of tuple-class pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct RealizedModification {
    /// The concrete cell edits.
    pub edits: Vec<CellEdit>,
    /// `minEdit(D, D')`: one per modified attribute value.
    pub db_edit_cost: usize,
    /// Number of distinct relations modified (`n` of Equation 3).
    pub modified_relations: usize,
    /// Number of distinct base tuples modified (`µ` of Equation 5).
    pub modified_tuples: usize,
}

/// The effect of a realized modification on one group of candidate queries
/// (all queries in the group see the same result on `D'`).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupEffect {
    /// Candidate-query indices in this group.
    pub query_indices: Vec<usize>,
    /// Result rows removed relative to `R` (with multiplicity).
    pub removed: Vec<Tuple>,
    /// Result rows added relative to `R` (with multiplicity).
    pub added: Vec<Tuple>,
    /// `minEdit(R, R_i)` for this group's result.
    pub result_edit_cost: usize,
}

/// The class-exact evaluation of a realized modification: how the candidate
/// queries partition on the modified database and at what result-edit cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ModificationEvaluation {
    /// The induced query groups.
    pub groups: Vec<GroupEffect>,
}

impl ModificationEvaluation {
    /// Sizes of the induced query subsets.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.query_indices.len()).collect()
    }

    /// `minEdit(R, R_i)` per induced subset.
    pub fn result_edit_costs(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.result_edit_cost).collect()
    }

    /// Total result modification cost (Equation 4).
    pub fn total_result_cost(&self) -> usize {
        self.groups.iter().map(|g| g.result_edit_cost).sum()
    }

    /// Balance score of the induced partitioning.
    pub fn balance(&self) -> f64 {
        balance_score(&self.partition_sizes())
    }

    /// Number of induced subsets.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

/// Maps each tuple-class pair to a concrete tuple modification.
///
/// For every pair, a join row belonging to the source class is selected,
/// preferring rows whose affected base tuples have the smallest join fan-out
/// (fewest side effects) and that do not conflict with the edits already
/// chosen for earlier pairs. Returns `None` when some pair has no realizable
/// tuple (e.g. all members already used).
pub fn realize_pairs(ctx: &GenerationContext, pairs: &[ClassPair]) -> Option<RealizedModification> {
    let mut used_join_rows: BTreeSet<usize> = BTreeSet::new();
    let mut edited_cells: BTreeSet<(String, usize, String)> = BTreeSet::new();
    let mut edits: Vec<CellEdit> = Vec::new();

    for pair in pairs {
        // A destination block whose representative cannot be stored in the
        // column's declared type is unrealizable: e.g. the open interval
        // (80, 81) of a BIGINT column contains no integers, so its fractional
        // representative must never be written into the base table. The
        // context precomputes conformance per (attribute, block).
        for &pos in &pair.changed_attributes {
            if !ctx.block_realizable(pos, pair.destination[pos]) {
                return None;
            }
        }
        let members = ctx.source_classes().get(&pair.source)?;
        // Order candidate rows by total fan-out of the base tuples we would
        // modify (ascending: prefer side-effect-free realizations).
        let mut candidates: Vec<(usize, usize)> = members
            .iter()
            .filter(|r| !used_join_rows.contains(r))
            .map(|&jrow| {
                let fan_out: usize = pair
                    .changed_attributes
                    .iter()
                    .map(|&pos| {
                        let attr = &ctx.class_space().attributes()[pos];
                        let base_row = ctx.join().rows()[jrow]
                            .provenance
                            .get(&attr.table)
                            .copied()
                            .unwrap_or(usize::MAX);
                        ctx.join_index().fan_out(&attr.table, base_row)
                    })
                    .sum();
                (fan_out, jrow)
            })
            .collect();
        candidates.sort_unstable();

        let mut realized_this_pair = false;
        'candidate: for (_, jrow) in candidates {
            let mut pair_edits: Vec<CellEdit> = Vec::new();
            for &pos in &pair.changed_attributes {
                let attr = &ctx.class_space().attributes()[pos];
                let base_row = match ctx.join().rows()[jrow].provenance.get(&attr.table) {
                    Some(&r) => r,
                    None => continue 'candidate,
                };
                let key = (attr.table.clone(), base_row, attr.base_column.clone());
                if edited_cells.contains(&key) {
                    continue 'candidate;
                }
                let new_value = attr.blocks[pair.destination[pos]].representative().clone();
                pair_edits.push(CellEdit {
                    table: attr.table.clone(),
                    row: base_row,
                    column: attr.base_column.clone(),
                    new_value,
                });
            }
            // Commit this candidate.
            for e in &pair_edits {
                edited_cells.insert((e.table.clone(), e.row, e.column.clone()));
            }
            used_join_rows.insert(jrow);
            edits.extend(pair_edits);
            realized_this_pair = true;
            break;
        }
        if !realized_this_pair {
            return None;
        }
    }

    let modified_relations = edits
        .iter()
        .map(|e| e.table.as_str())
        .collect::<BTreeSet<_>>()
        .len();
    let modified_tuples = edits
        .iter()
        .map(|e| (e.table.as_str(), e.row))
        .collect::<BTreeSet<_>>()
        .len();
    Some(RealizedModification {
        db_edit_cost: edits.len(),
        modified_relations,
        modified_tuples,
        edits,
    })
}

/// Applies cell edits to a clone of the database and verifies its integrity
/// constraints (primary and foreign keys), per Section 6.3.
///
/// The clone `Arc`-shares every table the edits do not touch, and the
/// integrity re-check is scoped to what cell edits can break:
/// `Table::update_cell` already enforces types, nullability and primary-key
/// uniqueness per edit, so only foreign keys referencing an edited column are
/// re-validated — the whole call is proportional to the edit, not to `|D|`.
pub fn apply_edits(db: &Database, edits: &[CellEdit]) -> Result<Database> {
    let mut modified = db.clone();
    for e in edits {
        modified
            .table_mut(&e.table)?
            .update_cell(e.row, &e.column, e.new_value.clone())?;
    }
    let touched = |table: &str, columns: &[String]| {
        edits
            .iter()
            .any(|e| e.table == table && columns.contains(&e.column))
    };
    let affected_fks: Vec<_> = modified
        .foreign_keys()
        .iter()
        .filter(|fk| {
            touched(&fk.child_table, &fk.child_columns)
                || touched(&fk.parent_table, &fk.parent_columns)
        })
        .cloned()
        .collect();
    for fk in &affected_fks {
        modified.check_foreign_key_data(fk)?;
    }
    Ok(modified)
}

/// Converts cell edits into presentation-level [`EditOp`]s (with the original
/// values filled in from `db`).
pub fn edits_to_ops(db: &Database, edits: &[CellEdit]) -> Result<Vec<EditOp>> {
    let mut ops = Vec::with_capacity(edits.len());
    for e in edits {
        let table = db.table(&e.table)?;
        let col_idx = table
            .schema()
            .column_index(&e.column)
            .ok_or_else(|| QfeError::Internal {
                message: format!("unknown column {}.{}", e.table, e.column),
            })?;
        let old = table
            .row(e.row)
            .and_then(|r| r.get(col_idx).cloned())
            .ok_or_else(|| QfeError::Internal {
                message: format!("row {} out of bounds in {}", e.row, e.table),
            })?;
        ops.push(EditOp::ModifyCell {
            table: e.table.clone(),
            row: e.row,
            column: e.column.clone(),
            old,
            new: e.new_value.clone(),
        });
    }
    Ok(ops)
}

/// Evaluates a realized modification *incrementally*: only the joined rows
/// affected by the edited base tuples are re-examined (via the join index),
/// which makes the cost evaluation inside Algorithm 4 cheap even on larger
/// joins. The computation accounts for side effects exactly.
pub fn evaluate_modification(
    ctx: &GenerationContext,
    edits: &[CellEdit],
) -> ModificationEvaluation {
    use std::collections::BTreeMap;

    let patched = ctx.patched_join_rows(edits);
    let arity = ctx.bound_queries()[0].projection_indices().len();

    let mut groups: BTreeMap<(Vec<Tuple>, Vec<Tuple>), Vec<usize>> = BTreeMap::new();
    for (qidx, bound) in ctx.bound_queries().iter().enumerate() {
        let mut removed: Vec<Tuple> = Vec::new();
        let mut added: Vec<Tuple> = Vec::new();
        for (_, old, new) in &patched {
            let old_match = bound.matches_row(old);
            let new_match = bound.matches_row(new);
            let old_proj = old.project(bound.projection_indices());
            let new_proj = new.project(bound.projection_indices());
            match (old_match, new_match) {
                (true, false) => removed.push(old_proj),
                (false, true) => added.push(new_proj),
                (true, true) => {
                    if old_proj != new_proj {
                        removed.push(old_proj);
                        added.push(new_proj);
                    }
                }
                (false, false) => {}
            }
        }
        removed.sort();
        added.sort();
        groups.entry((removed, added)).or_default().push(qidx);
    }

    let groups = groups
        .into_iter()
        .map(|((removed, added), query_indices)| {
            let result_edit_cost = min_edit_rows(&removed, &added, arity);
            GroupEffect {
                query_indices,
                removed,
                added,
                result_edit_cost,
            }
        })
        .collect();
    ModificationEvaluation { groups }
}

/// Materializes the query result of one group on the modified database by
/// applying the group's removed/added rows to the original result `R`.
pub fn group_result(original: &QueryResult, group: &GroupEffect) -> QueryResult {
    let mut multiset = original.row_multiset();
    for r in &group.removed {
        if let Some(count) = multiset.get_mut(r) {
            *count = count.saturating_sub(1);
        }
    }
    let mut rows: Vec<Tuple> = multiset
        .into_iter()
        .flat_map(|(row, count)| std::iter::repeat_n(row, count))
        .collect();
    rows.extend(group.added.iter().cloned());
    rows.sort();
    QueryResult::new(original.columns().to_vec(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::{evaluate, ComparisonOp, DnfPredicate, SpjQuery, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, ForeignKey, Table, TableSchema};

    fn employee_context() -> GenerationContext {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        let q = |p| SpjQuery::new(vec!["Employee"], vec!["name"], p);
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
        ];
        let result = evaluate(&queries[0], &db).unwrap();
        GenerationContext::new(&db, &result, &queries).unwrap()
    }

    fn salary_pair(ctx: &GenerationContext) -> ClassPair {
        let bob = ctx
            .class_space()
            .classify(&ctx.join().rows()[1].tuple)
            .unwrap();
        let salary_pos = ctx
            .class_space()
            .attributes()
            .iter()
            .position(|a| a.base_column == "salary")
            .unwrap();
        ctx.destination_pairs(&bob, 1)
            .into_iter()
            .find(|p| p.changed_attributes == vec![salary_pos])
            .unwrap()
    }

    #[test]
    fn realize_single_pair_produces_one_edit() {
        let ctx = employee_context();
        let pair = salary_pair(&ctx);
        let realized = realize_pairs(&ctx, std::slice::from_ref(&pair)).unwrap();
        assert_eq!(realized.edits.len(), 1);
        assert_eq!(realized.db_edit_cost, 1);
        assert_eq!(realized.modified_relations, 1);
        assert_eq!(realized.modified_tuples, 1);
        let edit = &realized.edits[0];
        assert_eq!(edit.table, "Employee");
        assert_eq!(edit.column, "salary");
        // The new value belongs to the destination block (≤ 4000).
        assert!(edit.new_value <= Value::Int(4000));
    }

    #[test]
    fn apply_edits_round_trip_and_integrity() {
        let ctx = employee_context();
        let pair = salary_pair(&ctx);
        let realized = realize_pairs(&ctx, std::slice::from_ref(&pair)).unwrap();
        let modified = apply_edits(ctx.database(), &realized.edits).unwrap();
        assert_eq!(modified.table("Employee").unwrap().len(), 4);
        assert_ne!(
            modified.table("Employee").unwrap().rows(),
            ctx.database().table("Employee").unwrap().rows()
        );
        let ops = edits_to_ops(ctx.database(), &realized.edits).unwrap();
        assert_eq!(ops.len(), 1);
        assert!(
            matches!(&ops[0], EditOp::ModifyCell { old, .. } if *old == Value::Int(4200) || *old == Value::Int(5000))
        );
    }

    #[test]
    fn apply_edits_rejects_foreign_key_violations() {
        // Build a two-table DB and force an edit that breaks the FK.
        let parent = Table::with_rows(
            TableSchema::new(
                "P",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["id"])
            .unwrap(),
            vec![tuple![1i64, 5i64]],
        )
        .unwrap();
        let child = Table::with_rows(
            TableSchema::new(
                "C",
                vec![
                    ColumnDef::new("pid", DataType::Int),
                    ColumnDef::new("w", DataType::Int),
                ],
            )
            .unwrap(),
            vec![tuple![1i64, 10i64]],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(parent).unwrap();
        db.add_table(child).unwrap();
        db.add_foreign_key(ForeignKey::new("C", "pid", "P", "id"))
            .unwrap();
        let bad = vec![CellEdit {
            table: "C".into(),
            row: 0,
            column: "pid".into(),
            new_value: Value::Int(99),
        }];
        assert!(apply_edits(&db, &bad).is_err());
    }

    #[test]
    fn evaluation_matches_direct_reevaluation() {
        let ctx = employee_context();
        let pair = salary_pair(&ctx);
        let realized = realize_pairs(&ctx, std::slice::from_ref(&pair)).unwrap();
        let eval = evaluate_modification(&ctx, &realized.edits);
        // Direct evaluation: apply edits, recompute every query's result.
        let modified = apply_edits(ctx.database(), &realized.edits).unwrap();
        let direct = qfe_query::partition_queries(ctx.queries(), &modified).unwrap();
        let mut incremental_sizes = eval.partition_sizes();
        incremental_sizes.sort();
        let mut direct_sizes = direct.sizes();
        direct_sizes.sort();
        assert_eq!(incremental_sizes, direct_sizes);
        // The group results reconstructed from deltas match direct evaluation.
        for group in &eval.groups {
            let reconstructed = group_result(ctx.original_result(), group);
            let direct_result =
                qfe_query::evaluate(&ctx.queries()[group.query_indices[0]], &modified).unwrap();
            assert!(reconstructed.bag_equal(&direct_result));
        }
        // Balance/result-cost accessors are consistent.
        assert_eq!(eval.group_count(), eval.partition_sizes().len());
        assert_eq!(
            eval.total_result_cost(),
            eval.result_edit_costs().iter().sum::<usize>()
        );
        assert!(eval.balance().is_finite());
    }

    #[test]
    fn realize_two_pairs_uses_distinct_tuples() {
        let ctx = employee_context();
        let bob = ctx
            .class_space()
            .classify(&ctx.join().rows()[1].tuple)
            .unwrap();
        let pairs = ctx.destination_pairs(&bob, 1);
        // Take two different single-attribute pairs from the same source class.
        let two: Vec<ClassPair> = pairs.into_iter().take(2).collect();
        assert_eq!(two.len(), 2);
        let realized = realize_pairs(&ctx, &two).unwrap();
        let tuples: BTreeSet<(String, usize)> = realized
            .edits
            .iter()
            .map(|e| (e.table.clone(), e.row))
            .collect();
        assert_eq!(tuples.len(), 2, "distinct pairs must edit distinct tuples");
    }

    #[test]
    fn realize_fails_when_class_has_too_few_members() {
        let ctx = employee_context();
        let alice = ctx
            .class_space()
            .classify(&ctx.join().rows()[0].tuple)
            .unwrap();
        let pairs = ctx.destination_pairs(&alice, 1);
        // Alice's class has two members (Alice, Celina): three pairs from the
        // same class cannot all be realized on distinct tuples.
        let three: Vec<ClassPair> = pairs.into_iter().take(3).collect();
        if three.len() == 3 {
            assert!(realize_pairs(&ctx, &three).is_none());
        }
    }

    #[test]
    fn group_result_applies_removals_and_additions() {
        let ctx = employee_context();
        let group = GroupEffect {
            query_indices: vec![0],
            removed: vec![tuple!["Bob"]],
            added: vec![tuple!["Eve"]],
            result_edit_cost: 1,
        };
        let r = group_result(ctx.original_result(), &group);
        assert_eq!(r.len(), 2);
        assert!(r.rows().contains(&tuple!["Eve"]));
        assert!(!r.rows().contains(&tuple!["Bob"]));
    }
}
