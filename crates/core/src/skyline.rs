//! Algorithm 3: `Skyline-STC-DTC-Pairs`.
//!
//! Enumerates candidate (source-tuple-class, destination-tuple-class) pairs in
//! non-descending minimum edit cost (the number of modified attributes) and
//! keeps, per cost level, the pairs whose class-level balance score ties or
//! improves the best score seen so far.  Enumeration stops when the time
//! threshold δ is exhausted, returning everything collected up to that point
//! (the paper's Section 5.3).
//!
//! # Parallel enumeration
//!
//! The enumeration is embarrassingly parallel over source classes: each
//! worker owns its own match-bitset scratch buffers and walks a disjoint set
//! of sources (work-stealing over a shared atomic cursor), all sharing one
//! immutable [`GenerationContext`] (`Sync` thanks to the bitset kernel).
//! Per-source results are merged *in source order* with the exact rules the
//! sequential loop applies, so whenever the enumeration completes within the
//! δ budget (`timed_out == false`) the parallel outcome — `pairs` order,
//! `min_balance`, `best_binary_x` — is byte-identical to the sequential one.
//! A timed-out run stops at whichever tasks the workers happened to reach, so
//! its (best-effort) result depends on timing and thread count, exactly as a
//! timed-out sequential run depends on timing.
//! [`skyline_stc_dtc_pairs`] picks the worker count from
//! `std::thread::available_parallelism` (overridable with the
//! `QFE_SKYLINE_THREADS` environment variable);
//! [`skyline_stc_dtc_pairs_with_threads`] pins it explicitly.
//!
//! **Sub-source sharding.** Skewed class spaces — few source classes, each
//! with a huge destination fan-out — would leave workers idle if tasks only
//! split at (cost level, source class). When the (level, source) task count
//! cannot keep every worker busy ([`SHARD_OVERSUBSCRIPTION`]-fold), each
//! task is further split into contiguous ranges of changed-attribute
//! *combinations* (the outer dimension of the destination enumeration, see
//! [`TupleClassSpace::for_each_destination_class_in_combos`](crate::TupleClassSpace::for_each_destination_class_in_combos)).
//! Shard results are merged back in combination order with the same
//! running-minimum rules before the cross-source merge, so the outcome stays
//! byte-identical to the sequential one at any thread count.
//!
//! # Deadline handling
//!
//! The δ budget is enforced against a precomputed `Instant` deadline shared
//! through an atomic flag: once one worker observes the deadline, every
//! worker stops at its next check. Workers re-check the clock every
//! [`TIME_CHECK_INTERVAL`] examined pairs while far from the deadline and
//! every [`NEAR_DEADLINE_CHECK_INTERVAL`] pairs once past ~80% of the budget,
//! which keeps the δ overshoot bounded even when individual pairs are cheap.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use qfe_query::SpjQuery;

use crate::context::{ClassPair, GenerationContext};
use crate::domain::DomainBlock;
use crate::tuple_class::TupleClass;

/// The result of the skyline enumeration.
#[derive(Debug, Clone)]
pub struct SkylineOutcome {
    /// The skyline pairs, in the order they were collected.
    pub pairs: Vec<ClassPair>,
    /// The minimum balance score achieved by any collected pair.
    pub min_balance: f64,
    /// Lemma 3.1's `x`: the size of the smaller subset of the most balanced
    /// *binary* partitioning encountered during enumeration, if any.
    pub best_binary_x: Option<usize>,
    /// Number of (STC, DTC) pairs examined.
    pub enumerated: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Whether enumeration stopped because the time threshold δ was reached.
    pub timed_out: bool,
    /// Number of worker threads used (1 = sequential).
    pub threads: usize,
}

/// How often (in examined pairs) the time budget is re-checked while far from
/// the deadline.
const TIME_CHECK_INTERVAL: usize = 64;

/// The tightened re-check interval once past ~80% of the budget, bounding the
/// δ overshoot.
const NEAR_DEADLINE_CHECK_INTERVAL: usize = 8;

/// How many tasks per worker the parallel enumeration aims for. When the
/// plain (cost level, source class) grid falls short, tasks are sub-sharded
/// over changed-attribute combination ranges until every worker can expect
/// this many.
const SHARD_OVERSUBSCRIPTION: usize = 4;

/// Shared deadline state: a precomputed `Instant` plus a flag that fans the
/// first observation out to every worker.
struct Deadline {
    hard: Instant,
    soft: Instant,
    expired: AtomicBool,
}

impl Deadline {
    fn new(start: Instant, budget: Duration) -> Deadline {
        let hard = start
            .checked_add(budget)
            .unwrap_or_else(|| start + Duration::from_secs(86_400));
        let soft = start.checked_add(budget.mul_f64(0.8)).unwrap_or(hard);
        Deadline {
            hard,
            soft,
            expired: AtomicBool::new(false),
        }
    }

    fn is_expired(&self) -> bool {
        self.expired.load(Ordering::Relaxed)
    }
}

/// Per-worker deadline bookkeeping: counts examined pairs and consults the
/// clock only at the adaptive interval.
struct Ticker<'a> {
    deadline: &'a Deadline,
    count: usize,
    next_check: usize,
}

impl<'a> Ticker<'a> {
    fn new(deadline: &'a Deadline) -> Ticker<'a> {
        Ticker {
            deadline,
            count: 0,
            next_check: TIME_CHECK_INTERVAL,
        }
    }

    /// Registers one examined pair; returns `true` when the enumeration must
    /// stop (deadline reached here or in another worker).
    #[inline]
    fn tick(&mut self) -> bool {
        self.count += 1;
        if self.count < self.next_check {
            return false;
        }
        if self.deadline.is_expired() {
            return true;
        }
        let now = Instant::now();
        if now > self.deadline.hard {
            self.deadline.expired.store(true, Ordering::Relaxed);
            return true;
        }
        let interval = if now > self.deadline.soft {
            NEAR_DEADLINE_CHECK_INTERVAL
        } else {
            TIME_CHECK_INTERVAL
        };
        self.next_check = self.count + interval;
        false
    }
}

/// What one worker collected for one source class at one cost level.
struct SourceLevelResult {
    /// Index of the source class (for the deterministic merge order).
    source_idx: usize,
    /// Pairs tied at `local_min`, in enumeration order. Empty when nothing
    /// reached the entering minimum.
    kept: Vec<ClassPair>,
    /// The minimum balance this source reached (seeded with the entering
    /// global minimum).
    local_min: f64,
    /// The strictly-best binary partitioning seen at this source:
    /// `(balance, smaller subset size)`, first occurrence wins ties.
    best_binary: Option<(f64, usize)>,
    /// Pairs examined at this source.
    enumerated: usize,
}

/// Enumerates one source class at one cost level, restricted to the given
/// range of changed-attribute combinations (`0..usize::MAX` = the whole
/// source; sub-source shards pass narrower ranges).
fn enumerate_source_level(
    ctx: &GenerationContext,
    source_idx: usize,
    source: &TupleClass,
    edit_cost: usize,
    combos: std::ops::Range<usize>,
    entering_min: f64,
    ticker: &mut Ticker<'_>,
) -> SourceLevelResult {
    let mut result = SourceLevelResult {
        source_idx,
        kept: Vec::new(),
        local_min: entering_min,
        best_binary: None,
        enumerated: 0,
    };
    let mut src_scratch = ctx.match_scratch();
    let mut dst_scratch = ctx.match_scratch();
    // Hoist the source bitset out of the destination loop.
    let source_bits = ctx.class_match_words(source, &mut src_scratch).to_vec();
    let _ = ctx.class_space().for_each_destination_class_in_combos(
        source,
        edit_cost,
        ctx.modifiable_attributes(),
        combos,
        |destination, changed| {
            result.enumerated += 1;
            if ticker.tick() {
                return ControlFlow::Break(());
            }
            let dest_bits = ctx.class_match_words(destination, &mut dst_scratch);
            let projection_changed = ctx.projection_touched(changed);
            let stats = ctx.pair_stats(&source_bits, dest_bits, projection_changed);
            let balance = stats.balance();
            // A pair that does not split the candidates (a single subset) is
            // useless for discrimination and is never kept.
            if !balance.is_finite() {
                return ControlFlow::Continue(());
            }
            if let Some(smaller) = stats.binary_smaller() {
                let better = match result.best_binary {
                    Some((b, _)) => balance < b,
                    None => true,
                };
                if better {
                    result.best_binary = Some((balance, smaller));
                }
            }
            if balance < result.local_min {
                result.local_min = balance;
                result.kept.clear();
            } else if balance > result.local_min {
                return ControlFlow::Continue(());
            }
            result.kept.push(ClassPair {
                source: source.clone(),
                destination: destination.clone(),
                changed_attributes: changed.to_vec(),
            });
            ControlFlow::Continue(())
        },
    );
    result
}

/// Runs Algorithm 3 over the context's source-tuple classes.
///
/// `time_budget` is the paper's δ threshold: once exceeded, the enumeration
/// stops and returns the pairs collected so far. The worker count comes from
/// the `QFE_SKYLINE_THREADS` environment variable when set, otherwise from
/// `std::thread::available_parallelism` (capped by the number of source
/// classes; tiny class spaces run sequentially).
pub fn skyline_stc_dtc_pairs(ctx: &GenerationContext, time_budget: Duration) -> SkylineOutcome {
    skyline_stc_dtc_pairs_with_threads(ctx, time_budget, auto_threads(ctx))
}

/// [`skyline_stc_dtc_pairs`] with an explicit worker count (1 = sequential).
/// Whenever the enumeration completes within `time_budget` (the returned
/// [`SkylineOutcome::timed_out`] is `false`), the result is identical for
/// every thread count; a timed-out run is best-effort and timing-dependent.
pub fn skyline_stc_dtc_pairs_with_threads(
    ctx: &GenerationContext,
    time_budget: Duration,
    threads: usize,
) -> SkylineOutcome {
    let start = Instant::now();
    let deadline = Deadline::new(start, time_budget);
    let sources: Vec<&TupleClass> = ctx.source_classes().keys().collect();
    let attribute_count = ctx.class_space().attribute_count();
    let levels = attribute_count.max(1);
    // Sub-source sharding lets more workers than source classes pull their
    // weight; the hard cap is the sharded task-grid size.
    let threads = threads.clamp(1, (sources.len() * levels * SHARD_OVERSUBSCRIPTION).max(1));

    // Collect per-(cost level, source) results. Sequentially the running
    // minimum prunes what later sources keep; the parallel workers instead
    // seed every task with `+∞` — the deterministic merge below discards
    // exactly the same pairs, so the two modes are byte-identical (a source
    // whose local minimum exceeds the final level minimum contributes
    // nothing either way).
    let mut results: Vec<Vec<SourceLevelResult>> = if threads <= 1 {
        let mut ticker = Ticker::new(&deadline);
        let mut min_so_far = f64::INFINITY;
        let mut per_level = Vec::with_capacity(levels);
        'seq: for edit_cost in 1..=levels {
            let mut level_results = Vec::with_capacity(sources.len());
            for (idx, source) in sources.iter().enumerate() {
                if deadline.is_expired() {
                    per_level.push(level_results);
                    break 'seq;
                }
                let r = enumerate_source_level(
                    ctx,
                    idx,
                    source,
                    edit_cost,
                    0..usize::MAX,
                    min_so_far,
                    &mut ticker,
                );
                if r.local_min < min_so_far {
                    min_so_far = r.local_min;
                }
                level_results.push(r);
            }
            per_level.push(level_results);
        }
        per_level
    } else {
        // One flat work-stealing pass over every task — no per-level
        // barrier, workers are spawned exactly once. A task is normally one
        // (cost level, source class); when that grid is too coarse to keep
        // the workers busy (skewed class spaces with few sources), each cell
        // is sub-sharded into contiguous changed-attribute combination
        // ranges.
        struct ShardTask {
            level: usize,
            source_idx: usize,
            shard: usize,
            combos: std::ops::Range<usize>,
        }
        let base_tasks = levels * sources.len();
        let target_shards = if base_tasks >= threads * SHARD_OVERSUBSCRIPTION {
            1
        } else {
            (threads * SHARD_OVERSUBSCRIPTION).div_ceil(base_tasks)
        };
        let mut tasks: Vec<ShardTask> = Vec::with_capacity(base_tasks);
        for level in 1..=levels {
            let combo_count = ctx
                .class_space()
                .destination_combo_count(level, ctx.modifiable_attributes());
            let shards = target_shards.min(combo_count.max(1));
            for source_idx in 0..sources.len() {
                if shards <= 1 {
                    tasks.push(ShardTask {
                        level,
                        source_idx,
                        shard: 0,
                        combos: 0..usize::MAX,
                    });
                } else {
                    let per_shard = combo_count.div_ceil(shards);
                    let mut start = 0;
                    let mut shard = 0;
                    while start < combo_count {
                        let end = (start + per_shard).min(combo_count);
                        tasks.push(ShardTask {
                            level,
                            source_idx,
                            shard,
                            combos: start..end,
                        });
                        shard += 1;
                        start = end;
                    }
                }
            }
        }
        let cursor = AtomicUsize::new(0);
        let workers = threads.min(tasks.len()).max(1);
        let mut flat: Vec<(usize, usize, SourceLevelResult)> = std::thread::scope(|scope| {
            let tasks = &tasks;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, usize, SourceLevelResult)> = Vec::new();
                        let mut ticker = Ticker::new(&deadline);
                        loop {
                            let t = cursor.fetch_add(1, Ordering::Relaxed);
                            if t >= tasks.len() || deadline.is_expired() {
                                break;
                            }
                            let task = &tasks[t];
                            local.push((
                                task.level,
                                task.shard,
                                enumerate_source_level(
                                    ctx,
                                    task.source_idx,
                                    sources[task.source_idx],
                                    task.level,
                                    task.combos.clone(),
                                    f64::INFINITY,
                                    &mut ticker,
                                ),
                            ));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("skyline worker panicked"))
                .collect()
        });
        // Merge sub-source shards back into one result per (level, source),
        // in combination order, with the running-minimum rules the
        // single-task enumeration applies — the combination ranges partition
        // the source's enumeration order, so this is exact.
        flat.sort_unstable_by_key(|(level, shard, r)| (*level, r.source_idx, *shard));
        let mut per_level: Vec<Vec<SourceLevelResult>> = (0..levels).map(|_| Vec::new()).collect();
        for (level, _, r) in flat {
            let bucket = &mut per_level[level - 1];
            match bucket.last_mut() {
                Some(prev) if prev.source_idx == r.source_idx => {
                    prev.enumerated += r.enumerated;
                    if let Some((b, x)) = r.best_binary {
                        let better = match prev.best_binary {
                            Some((pb, _)) => b < pb,
                            None => true,
                        };
                        if better {
                            prev.best_binary = Some((b, x));
                        }
                    }
                    if r.local_min < prev.local_min {
                        prev.local_min = r.local_min;
                        prev.kept = r.kept;
                    } else if r.local_min == prev.local_min {
                        prev.kept.extend(r.kept);
                    }
                }
                _ => bucket.push(r),
            }
        }
        per_level
    };

    let (pairs, min_balance, best_binary, enumerated) = merge_level_results(&mut results);
    let timed_out = deadline.is_expired();

    SkylineOutcome {
        pairs,
        min_balance,
        best_binary_x: best_binary.map(|(_, x)| x),
        enumerated,
        elapsed: start.elapsed(),
        timed_out,
        threads,
    }
}

/// Deterministic merge of per-(level, source) results in (level, source)
/// order — reproduces the sequential running-minimum and first-best
/// tie-breaking semantics, so any collection mode (sequential, parallel,
/// memoized) that produces complete per-source results merges to the same
/// outcome. Returns `(pairs, min_balance, best_binary, enumerated)`;
/// destructive on `kept`.
fn merge_level_results(
    results: &mut [Vec<SourceLevelResult>],
) -> (Vec<ClassPair>, f64, Option<(f64, usize)>, usize) {
    let mut pairs: Vec<ClassPair> = Vec::new();
    let mut min_balance = f64::INFINITY;
    let mut best_binary: Option<(f64, usize)> = None;
    let mut enumerated = 0usize;
    for level_results in results.iter_mut() {
        let mut level_min = min_balance;
        for r in level_results.iter() {
            enumerated += r.enumerated;
            if r.local_min < level_min {
                level_min = r.local_min;
            }
        }
        for r in level_results.iter_mut() {
            // First strictly-better binary partitioning wins, in source order.
            if let Some((b, x)) = r.best_binary {
                let better = match best_binary {
                    Some((gb, _)) => b < gb,
                    None => true,
                };
                if better {
                    best_binary = Some((b, x));
                }
            }
            if r.local_min == level_min && !r.kept.is_empty() {
                pairs.append(&mut r.kept);
            }
        }
        min_balance = level_min;
    }
    (pairs, min_balance, best_binary, enumerated)
}

/// Fingerprint of everything a memo cell's value depends on besides its own
/// `(cost level, source class)` key: the candidate queries, the class-space
/// geometry (attribute columns and domain-block contents), the modifiable
/// mask and the projection columns. Any difference invalidates every cell.
#[derive(Debug, Clone, PartialEq)]
struct MemoFingerprint {
    queries: Vec<SpjQuery>,
    attributes: Vec<(usize, Vec<DomainBlock>)>,
    modifiable: Vec<bool>,
    projection_columns: BTreeSet<usize>,
}

impl MemoFingerprint {
    fn of(ctx: &GenerationContext) -> MemoFingerprint {
        MemoFingerprint {
            queries: ctx.queries().to_vec(),
            attributes: ctx
                .class_space()
                .attributes()
                .iter()
                .map(|a| (a.column, a.blocks.clone()))
                .collect(),
            modifiable: ctx.modifiable_attributes().to_vec(),
            projection_columns: ctx.projection_columns().clone(),
        }
    }
}

/// The complete enumeration result of one `(cost level, source class)` cell.
#[derive(Debug, Clone)]
struct MemoCell {
    kept: Vec<ClassPair>,
    local_min: f64,
    best_binary: Option<(f64, usize)>,
    enumerated: usize,
}

/// Cross-round memo for [`skyline_stc_dtc_pairs_memoized`]: caches the
/// per-`(cost level, source class)` enumeration results keyed on a
/// fingerprint of the candidate set and the class-space geometry.
///
/// Between feedback rounds a single cell edit typically leaves the geometry
/// (and hence the fingerprint) intact while only a few source classes gain or
/// lose member rows — and a cell's value depends on the *class*, not on which
/// rows inhabit it, so every cell seen before is served from the memo and
/// only genuinely new source classes are enumerated.
#[derive(Debug, Clone, Default)]
pub struct SkylineMemo {
    fingerprint: Option<MemoFingerprint>,
    cells: BTreeMap<(usize, TupleClass), MemoCell>,
    hits: u64,
    recomputed: u64,
}

impl SkylineMemo {
    /// An empty memo.
    pub fn new() -> SkylineMemo {
        SkylineMemo::default()
    }

    /// Cells served from the memo across all lookups.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cells enumerated (and cached) because they were absent.
    pub fn recomputed_cells(&self) -> u64 {
        self.recomputed
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the memo holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Drops every cached cell (the counters are kept).
    pub fn clear(&mut self) {
        self.cells.clear();
        self.fingerprint = None;
    }
}

/// [`skyline_stc_dtc_pairs`] with a cross-round [`SkylineMemo`]: source
/// classes whose `(level, class)` cell is cached are served from the memo,
/// only new cells are enumerated. Whenever the enumeration completes within
/// `time_budget` the outcome is byte-identical to the sequential
/// (single-thread) enumeration — cells are seeded with `+∞` exactly like the
/// parallel workers, and the deterministic merge discards the same pairs.
/// Cells are cached only when their enumeration ran to completion, so a
/// timed-out run never poisons the memo.
pub fn skyline_stc_dtc_pairs_memoized(
    ctx: &GenerationContext,
    time_budget: Duration,
    memo: &mut SkylineMemo,
) -> SkylineOutcome {
    let start = Instant::now();
    let deadline = Deadline::new(start, time_budget);
    let fingerprint = MemoFingerprint::of(ctx);
    if memo.fingerprint.as_ref() != Some(&fingerprint) {
        memo.cells.clear();
        memo.fingerprint = Some(fingerprint);
    }

    let sources: Vec<&TupleClass> = ctx.source_classes().keys().collect();
    let levels = ctx.class_space().attribute_count().max(1);
    let mut ticker = Ticker::new(&deadline);
    let mut results: Vec<Vec<SourceLevelResult>> = Vec::with_capacity(levels);
    'outer: for level in 1..=levels {
        let mut level_results = Vec::with_capacity(sources.len());
        for (idx, source) in sources.iter().enumerate() {
            if deadline.is_expired() {
                results.push(level_results);
                break 'outer;
            }
            let key = (level, (*source).clone());
            if let Some(cell) = memo.cells.get(&key) {
                memo.hits += 1;
                level_results.push(SourceLevelResult {
                    source_idx: idx,
                    kept: cell.kept.clone(),
                    local_min: cell.local_min,
                    best_binary: cell.best_binary,
                    enumerated: cell.enumerated,
                });
                continue;
            }
            let r = enumerate_source_level(
                ctx,
                idx,
                source,
                level,
                0..usize::MAX,
                f64::INFINITY,
                &mut ticker,
            );
            // Only complete cells are cacheable: a deadline hit mid-source
            // truncates the enumeration.
            if !deadline.is_expired() {
                memo.recomputed += 1;
                memo.cells.insert(
                    key,
                    MemoCell {
                        kept: r.kept.clone(),
                        local_min: r.local_min,
                        best_binary: r.best_binary,
                        enumerated: r.enumerated,
                    },
                );
            }
            level_results.push(r);
        }
        results.push(level_results);
    }

    let (pairs, min_balance, best_binary, enumerated) = merge_level_results(&mut results);
    let timed_out = deadline.is_expired();

    SkylineOutcome {
        pairs,
        min_balance,
        best_binary_x: best_binary.map(|(_, x)| x),
        enumerated,
        elapsed: start.elapsed(),
        timed_out,
        threads: 1,
    }
}

/// Picks the default worker count: the `QFE_SKYLINE_THREADS` environment
/// variable when set, otherwise the machine's available parallelism, capped
/// by the number of source classes.
fn auto_threads(ctx: &GenerationContext) -> usize {
    if let Ok(v) = std::env::var("QFE_SKYLINE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Sub-source sharding keeps extra workers productive even when there are
    // fewer source classes than cores; the useful ceiling is the task grid.
    let levels = ctx.class_space().attribute_count().max(1);
    hw.min((ctx.source_classes().len() * levels).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::{evaluate, ComparisonOp, DnfPredicate, SpjQuery, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, Database, Table, TableSchema};

    fn employee_context() -> GenerationContext {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        let q = |p| SpjQuery::new(vec!["Employee"], vec!["name"], p);
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
        ];
        let result = evaluate(&queries[0], &db).unwrap();
        GenerationContext::new(&db, &result, &queries).unwrap()
    }

    #[test]
    fn skyline_finds_discriminating_single_change_pairs() {
        let ctx = employee_context();
        let outcome = skyline_stc_dtc_pairs(&ctx, Duration::from_secs(5));
        assert!(!outcome.pairs.is_empty());
        assert!(outcome.min_balance.is_finite());
        assert!(outcome.enumerated > 0);
        assert!(!outcome.timed_out);
        // Three candidate queries can at best be split 2/1 by a single change:
        // the most balanced binary partitioning has a smaller subset of 1.
        assert_eq!(outcome.best_binary_x, Some(1));
        // Every skyline pair achieves the reported minimum balance.
        for p in &outcome.pairs {
            let b = ctx.balance(std::slice::from_ref(p));
            assert_eq!(b, outcome.min_balance);
        }
    }

    #[test]
    fn skyline_pairs_never_include_non_discriminating_pairs() {
        let ctx = employee_context();
        let outcome = skyline_stc_dtc_pairs(&ctx, Duration::from_secs(5));
        for p in &outcome.pairs {
            let sizes = ctx.partition_sizes(std::slice::from_ref(p));
            assert!(sizes.len() >= 2, "pair must split the candidate set");
        }
    }

    #[test]
    fn parallel_enumeration_is_bit_identical_to_sequential() {
        let ctx = employee_context();
        let sequential = skyline_stc_dtc_pairs_with_threads(&ctx, Duration::from_secs(30), 1);
        for threads in [2usize, 3, 4, 8] {
            let parallel =
                skyline_stc_dtc_pairs_with_threads(&ctx, Duration::from_secs(30), threads);
            assert_eq!(parallel.pairs, sequential.pairs, "{threads} threads");
            assert_eq!(
                parallel.min_balance.to_bits(),
                sequential.min_balance.to_bits()
            );
            assert_eq!(parallel.best_binary_x, sequential.best_binary_x);
            assert_eq!(parallel.enumerated, sequential.enumerated);
        }
    }

    #[test]
    fn sub_source_sharding_stays_bit_identical_on_skewed_spaces() {
        // The employee context has only 2 source classes over 3 levels: any
        // worker count ≥ 2 falls below the oversubscription target, so every
        // (level, source) cell is sub-sharded over combination ranges — and
        // worker counts beyond the source-class count must still merge to the
        // sequential result.
        let ctx = employee_context();
        let sequential = skyline_stc_dtc_pairs_with_threads(&ctx, Duration::from_secs(30), 1);
        for threads in [2usize, 5, 16, 64] {
            let parallel =
                skyline_stc_dtc_pairs_with_threads(&ctx, Duration::from_secs(30), threads);
            assert!(parallel.threads > 1, "{threads} workers requested");
            assert_eq!(parallel.pairs, sequential.pairs, "{threads} threads");
            assert_eq!(
                parallel.min_balance.to_bits(),
                sequential.min_balance.to_bits()
            );
            assert_eq!(parallel.best_binary_x, sequential.best_binary_x);
            assert_eq!(parallel.enumerated, sequential.enumerated);
        }
    }

    #[test]
    fn memoized_enumeration_is_bit_identical_and_hits_on_reuse() {
        let ctx = employee_context();
        let sequential = skyline_stc_dtc_pairs_with_threads(&ctx, Duration::from_secs(30), 1);
        let mut memo = SkylineMemo::new();

        // Cold memo: everything recomputed, result identical to sequential.
        let cold = skyline_stc_dtc_pairs_memoized(&ctx, Duration::from_secs(30), &mut memo);
        assert_eq!(cold.pairs, sequential.pairs);
        assert_eq!(cold.min_balance.to_bits(), sequential.min_balance.to_bits());
        assert_eq!(cold.best_binary_x, sequential.best_binary_x);
        assert_eq!(cold.enumerated, sequential.enumerated);
        assert_eq!(memo.hits(), 0);
        assert!(memo.recomputed_cells() > 0);
        assert!(!memo.is_empty());

        // Warm memo, same context: every cell served from the cache, result
        // still identical.
        let recomputed_before = memo.recomputed_cells();
        let warm = skyline_stc_dtc_pairs_memoized(&ctx, Duration::from_secs(30), &mut memo);
        assert_eq!(warm.pairs, sequential.pairs);
        assert_eq!(warm.min_balance.to_bits(), sequential.min_balance.to_bits());
        assert_eq!(warm.best_binary_x, sequential.best_binary_x);
        assert_eq!(warm.enumerated, sequential.enumerated);
        assert_eq!(memo.recomputed_cells(), recomputed_before);
        assert_eq!(memo.hits() as usize, memo.len());

        // A changed candidate set invalidates the fingerprint: the memo is
        // rebuilt and the result matches the new context's sequential run.
        let pruned = ctx.advance(&[0, 1], &[]).unwrap();
        let pruned_seq = skyline_stc_dtc_pairs_with_threads(&pruned, Duration::from_secs(30), 1);
        let after = skyline_stc_dtc_pairs_memoized(&pruned, Duration::from_secs(30), &mut memo);
        assert_eq!(after.pairs, pruned_seq.pairs);
        assert_eq!(
            after.min_balance.to_bits(),
            pruned_seq.min_balance.to_bits()
        );
        assert_eq!(after.enumerated, pruned_seq.enumerated);
    }

    #[test]
    fn memo_clear_drops_cells() {
        let ctx = employee_context();
        let mut memo = SkylineMemo::new();
        let _ = skyline_stc_dtc_pairs_memoized(&ctx, Duration::from_secs(30), &mut memo);
        assert!(!memo.is_empty());
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.len(), 0);
    }

    #[test]
    fn zero_budget_times_out_quickly() {
        let ctx = employee_context();
        let outcome = skyline_stc_dtc_pairs(&ctx, Duration::from_secs(0));
        // With a zero budget the enumeration may stop at any point, but it
        // must terminate and report the timeout (or finish within the first
        // check interval on this tiny example).
        let _ = outcome.timed_out;
        assert!(outcome.elapsed < Duration::from_secs(5));
    }

    #[test]
    fn larger_budget_never_finds_fewer_pairs() {
        let ctx = employee_context();
        let small = skyline_stc_dtc_pairs(&ctx, Duration::from_millis(1));
        let large = skyline_stc_dtc_pairs(&ctx, Duration::from_secs(5));
        assert!(large.pairs.len() >= small.pairs.len());
        assert!(large.enumerated >= small.enumerated);
    }
}
