//! Algorithm 3: `Skyline-STC-DTC-Pairs`.
//!
//! Enumerates candidate (source-tuple-class, destination-tuple-class) pairs in
//! non-descending minimum edit cost (the number of modified attributes) and
//! keeps, per cost level, the pairs whose class-level balance score ties or
//! improves the best score seen so far.  Enumeration stops when the time
//! threshold δ is exhausted, returning everything collected up to that point
//! (the paper's Section 5.3).

use std::time::{Duration, Instant};

use crate::context::{ClassPair, GenerationContext};

/// The result of the skyline enumeration.
#[derive(Debug, Clone)]
pub struct SkylineOutcome {
    /// The skyline pairs, in the order they were collected.
    pub pairs: Vec<ClassPair>,
    /// The minimum balance score achieved by any collected pair.
    pub min_balance: f64,
    /// Lemma 3.1's `x`: the size of the smaller subset of the most balanced
    /// *binary* partitioning encountered during enumeration, if any.
    pub best_binary_x: Option<usize>,
    /// Number of (STC, DTC) pairs examined.
    pub enumerated: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Whether enumeration stopped because the time threshold δ was reached.
    pub timed_out: bool,
}

/// How often (in examined pairs) the time budget is re-checked.
const TIME_CHECK_INTERVAL: usize = 64;

/// Runs Algorithm 3 over the context's source-tuple classes.
///
/// `time_budget` is the paper's δ threshold: once exceeded, the enumeration
/// stops and returns the pairs collected so far.
pub fn skyline_stc_dtc_pairs(ctx: &GenerationContext, time_budget: Duration) -> SkylineOutcome {
    let start = Instant::now();
    let attribute_count = ctx.class_space().attribute_count();
    let mut pairs: Vec<ClassPair> = Vec::new();
    let mut min_balance = f64::INFINITY;
    let mut best_binary: Option<(f64, usize)> = None; // (balance, smaller subset size)
    let mut enumerated = 0usize;
    let mut timed_out = false;

    'levels: for edit_cost in 1..=attribute_count.max(1) {
        let mut level_pairs: Vec<ClassPair> = Vec::new();
        for source in ctx.source_classes().keys() {
            for pair in ctx.destination_pairs(source, edit_cost) {
                enumerated += 1;
                if enumerated.is_multiple_of(TIME_CHECK_INTERVAL) && start.elapsed() > time_budget {
                    timed_out = true;
                    pairs.extend(level_pairs);
                    break 'levels;
                }
                let sizes = ctx.partition_sizes(std::slice::from_ref(&pair));
                let balance = crate::cost::balance_score(&sizes);
                // A pair that does not split the candidates (a single subset)
                // is useless for discrimination and is never kept.
                if !balance.is_finite() {
                    continue;
                }
                if sizes.len() == 2 {
                    let smaller = *sizes.iter().min().expect("two sizes");
                    let better = match best_binary {
                        Some((b, _)) => balance < b,
                        None => true,
                    };
                    if better {
                        best_binary = Some((balance, smaller));
                    }
                }
                if balance < min_balance {
                    min_balance = balance;
                    level_pairs = vec![pair];
                } else if balance == min_balance {
                    level_pairs.push(pair);
                }
            }
        }
        pairs.extend(level_pairs);
        if start.elapsed() > time_budget {
            timed_out = true;
            break;
        }
    }

    SkylineOutcome {
        pairs,
        min_balance,
        best_binary_x: best_binary.map(|(_, x)| x),
        enumerated,
        elapsed: start.elapsed(),
        timed_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::{evaluate, ComparisonOp, DnfPredicate, SpjQuery, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, Database, Table, TableSchema};

    fn employee_context() -> GenerationContext {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        let q = |p| SpjQuery::new(vec!["Employee"], vec!["name"], p);
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
        ];
        let result = evaluate(&queries[0], &db).unwrap();
        GenerationContext::new(&db, &result, &queries).unwrap()
    }

    #[test]
    fn skyline_finds_discriminating_single_change_pairs() {
        let ctx = employee_context();
        let outcome = skyline_stc_dtc_pairs(&ctx, Duration::from_secs(5));
        assert!(!outcome.pairs.is_empty());
        assert!(outcome.min_balance.is_finite());
        assert!(outcome.enumerated > 0);
        assert!(!outcome.timed_out);
        // Three candidate queries can at best be split 2/1 by a single change:
        // the most balanced binary partitioning has a smaller subset of 1.
        assert_eq!(outcome.best_binary_x, Some(1));
        // Every skyline pair achieves the reported minimum balance.
        for p in &outcome.pairs {
            let b = ctx.balance(std::slice::from_ref(p));
            assert_eq!(b, outcome.min_balance);
        }
    }

    #[test]
    fn skyline_pairs_never_include_non_discriminating_pairs() {
        let ctx = employee_context();
        let outcome = skyline_stc_dtc_pairs(&ctx, Duration::from_secs(5));
        for p in &outcome.pairs {
            let sizes = ctx.partition_sizes(std::slice::from_ref(p));
            assert!(sizes.len() >= 2, "pair must split the candidate set");
        }
    }

    #[test]
    fn zero_budget_times_out_quickly() {
        let ctx = employee_context();
        let outcome = skyline_stc_dtc_pairs(&ctx, Duration::from_secs(0));
        // With a zero budget the enumeration may stop at any point, but it
        // must terminate and report the timeout (or finish within the first
        // check interval on this tiny example).
        assert!(outcome.enumerated > 0);
        let _ = outcome.timed_out;
    }

    #[test]
    fn larger_budget_never_finds_fewer_pairs() {
        let ctx = employee_context();
        let small = skyline_stc_dtc_pairs(&ctx, Duration::from_millis(1));
        let large = skyline_stc_dtc_pairs(&ctx, Duration::from_secs(5));
        assert!(large.pairs.len() >= small.pairs.len());
        assert!(large.enumerated >= small.enumerated);
    }
}
