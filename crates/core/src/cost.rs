//! The user-effort cost model (Section 3 of the paper).
//!
//! The database generator chooses a modified database `D'` that minimizes the
//! user's estimated effort:
//!
//! ```text
//! cost(D') = minEdit(D, D') + β·n + Σ_i minEdit(R, R_i)
//!          + N × ( minEdit(D, D')/µ + β + (2/k)·Σ_i minEdit(R, R_i) )      (Eq. 5)
//! ```
//!
//! where `n` is the number of modified relations, `µ` the number of modified
//! tuples, `k` the number of query subsets induced by `D'`, and `N` the
//! estimated number of remaining iterations (Equation 6, refined by
//! Equations 7–9 via Lemma 3.1).  The *balance score* `σ/|C|` of a candidate
//! partitioning is used to steer the skyline search of Algorithm 3.

use std::time::Duration;

/// How the remaining number of iterations `N` is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationEstimator {
    /// Equation 6: `N = log2(max_i |QC_i|)` — assumes a perfectly balanced
    /// binary partitioning is always available.
    Simple,
    /// Equations 7–9: exploits Lemma 3.1 — at most `x` false positives can be
    /// eliminated per subsequent iteration, where `x` is the size of the
    /// smaller subset of the most balanced binary partitioning available in
    /// the current iteration. Falls back to Equation 6 when `x` is undefined.
    Refined,
}

/// Which objective the database generator optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModelKind {
    /// The paper's user-effort cost model (Equation 5).
    UserEffort,
    /// The alternative model used as the comparison point in the paper's user
    /// study (Section 7.7): maximize the number of partitioned query subsets,
    /// breaking ties by smaller database modification cost.
    MaxPartitions,
}

/// Tunable parameters of the cost model and of the database generator.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// The scale parameter β of Equation 3 (number of attribute modifications
    /// a "new relation touched" is worth). The paper's default is 1.
    pub beta: f64,
    /// The time threshold δ allotted to Algorithm 3 (skyline enumeration).
    /// The paper's default is 1 second.
    pub skyline_time_budget: Duration,
    /// How the number of remaining iterations is estimated.
    pub estimator: IterationEstimator,
    /// Which objective drives the choice of modified database.
    pub model: CostModelKind,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            beta: 1.0,
            skyline_time_budget: Duration::from_secs(1),
            estimator: IterationEstimator::Refined,
            model: CostModelKind::UserEffort,
        }
    }
}

impl CostParams {
    /// Convenience constructor matching the paper's defaults (β = 1, δ = 1 s).
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Sets β.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the Algorithm 3 time threshold δ.
    pub fn with_skyline_budget(mut self, budget: Duration) -> Self {
        self.skyline_time_budget = budget;
        self
    }

    /// Sets the iteration estimator.
    pub fn with_estimator(mut self, estimator: IterationEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the cost-model objective.
    pub fn with_model(mut self, model: CostModelKind) -> Self {
        self.model = model;
        self
    }
}

/// Balance score of a partitioning with the given subset sizes: `σ / |C|`
/// (standard deviation of the sizes divided by the number of subsets).
/// A partitioning with a single subset distinguishes nothing and scores
/// `+∞` so that it is never preferred.
pub fn balance_score(sizes: &[usize]) -> f64 {
    if sizes.len() <= 1 {
        return f64::INFINITY;
    }
    let n = sizes.len() as f64;
    let mean = sizes.iter().sum::<usize>() as f64 / n;
    let variance = sizes
        .iter()
        .map(|&s| {
            let d = s as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    variance.sqrt() / n
}

/// Estimates the number of remaining iterations after the current one.
///
/// * `max_subset` — the size of the largest query subset of the candidate
///   partitioning (the conservative assumption is that the user's feedback
///   keeps that subset);
/// * `best_binary_x` — the size of the *smaller* subset of the most balanced
///   binary partitioning available in the current iteration (Lemma 3.1's
///   bound on per-iteration progress), if any binary partitioning exists.
pub fn estimate_iterations(
    max_subset: usize,
    best_binary_x: Option<usize>,
    estimator: IterationEstimator,
) -> f64 {
    if max_subset <= 1 {
        return 0.0;
    }
    let simple = (max_subset as f64).log2().ceil();
    match estimator {
        IterationEstimator::Simple => simple,
        IterationEstimator::Refined => match best_binary_x {
            Some(x) if x >= 1 => {
                // Equation 8: N1 = floor(max / x) - 1 iterations eliminating x
                // queries each; Equation 9: N2 = ceil(log2(max - x*N1)) for the
                // remainder.
                let n1 = (max_subset / x).saturating_sub(1);
                let remaining = max_subset.saturating_sub(x * n1).max(1);
                let n2 = (remaining as f64).log2().ceil();
                n1 as f64 + n2
            }
            _ => simple,
        },
    }
}

/// The measurable ingredients of Equation 5 for one candidate modified
/// database.
#[derive(Debug, Clone, PartialEq)]
pub struct CostInputs {
    /// `minEdit(D, D')`: total database modification cost.
    pub db_edit_cost: usize,
    /// `n`: number of relations modified in `D'`.
    pub modified_relations: usize,
    /// `µ`: number of modified database tuples.
    pub modified_tuples: usize,
    /// `minEdit(R, R_i)` for each induced query subset.
    pub result_edit_costs: Vec<usize>,
    /// Sizes of the induced query subsets `|QC_1|, …, |QC_k|`.
    pub partition_sizes: Vec<usize>,
    /// Lemma 3.1's `x` for the current iteration, when a binary partitioning
    /// exists.
    pub best_binary_x: Option<usize>,
}

impl CostInputs {
    /// `dbCost` of Equation 3: `minEdit(D, D') + β·n`.
    pub fn db_cost(&self, beta: f64) -> f64 {
        self.db_edit_cost as f64 + beta * self.modified_relations as f64
    }

    /// `resultCost` of Equation 4: `Σ_i minEdit(R, R_i)`.
    pub fn result_cost(&self) -> f64 {
        self.result_edit_costs.iter().sum::<usize>() as f64
    }

    /// Number of induced query subsets `k`.
    pub fn subset_count(&self) -> usize {
        self.partition_sizes.len()
    }

    /// Size of the largest induced subset.
    pub fn max_subset(&self) -> usize {
        self.partition_sizes.iter().copied().max().unwrap_or(0)
    }

    /// The balance score of the induced partitioning.
    pub fn balance(&self) -> f64 {
        balance_score(&self.partition_sizes)
    }
}

/// The user-effort cost of Equation 5.
pub fn user_effort_cost(params: &CostParams, inputs: &CostInputs) -> f64 {
    let k = inputs.subset_count().max(1) as f64;
    let mu = inputs.modified_tuples.max(1) as f64;
    let db_edit = inputs.db_edit_cost as f64;
    let current = inputs.db_cost(params.beta) + inputs.result_cost();
    let n_remaining =
        estimate_iterations(inputs.max_subset(), inputs.best_binary_x, params.estimator);
    let residual_per_round = db_edit / mu + params.beta + (2.0 / k) * inputs.result_cost();
    current + n_remaining * residual_per_round
}

/// The objective value used to compare candidate modified databases under the
/// configured cost model (lower is better).
pub fn objective(params: &CostParams, inputs: &CostInputs) -> f64 {
    match params.model {
        CostModelKind::UserEffort => user_effort_cost(params, inputs),
        CostModelKind::MaxPartitions => {
            // Maximize k; tie-break on the user-effort cost so that among
            // equally discriminating modifications the cheaper one wins.
            let k = inputs.subset_count() as f64;
            -k * 1e6 + user_effort_cost(params, inputs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_score_matches_definition() {
        // Two subsets of sizes 2 and 2: σ = 0 -> score 0.
        assert_eq!(balance_score(&[2, 2]), 0.0);
        // Sizes 3 and 1: mean 2, variance 1, σ = 1, |C| = 2 -> 0.5.
        assert!((balance_score(&[3, 1]) - 0.5).abs() < 1e-12);
        // Single subset: infinite.
        assert!(balance_score(&[5]).is_infinite());
        assert!(balance_score(&[]).is_infinite());
        // More, evenly sized subsets score lower than fewer, skewed ones.
        assert!(balance_score(&[2, 2, 2, 2]) < balance_score(&[7, 1]));
    }

    #[test]
    fn simple_iteration_estimate_is_log2() {
        assert_eq!(
            estimate_iterations(1, None, IterationEstimator::Simple),
            0.0
        );
        assert_eq!(
            estimate_iterations(2, None, IterationEstimator::Simple),
            1.0
        );
        assert_eq!(
            estimate_iterations(8, None, IterationEstimator::Simple),
            3.0
        );
        assert_eq!(
            estimate_iterations(9, None, IterationEstimator::Simple),
            4.0
        );
    }

    #[test]
    fn refined_estimate_falls_back_without_binary_partitioning() {
        assert_eq!(
            estimate_iterations(8, None, IterationEstimator::Refined),
            estimate_iterations(8, None, IterationEstimator::Simple)
        );
    }

    #[test]
    fn refined_estimate_uses_lemma_3_1_bound() {
        // max = 10, x = 2: N1 = 10/2 - 1 = 4 iterations removing 2 each
        // (leaving 2), then N2 = ceil(log2(10 - 8)) = 1 -> N = 5.
        assert_eq!(
            estimate_iterations(10, Some(2), IterationEstimator::Refined),
            5.0
        );
        // A balanced split (x = half) reduces to roughly the simple estimate.
        let refined = estimate_iterations(16, Some(8), IterationEstimator::Refined);
        let simple = estimate_iterations(16, None, IterationEstimator::Simple);
        assert!(refined <= simple + 1.0);
        // x = 1 (worst case): N1 = max - 1, N2 = 0.
        assert_eq!(
            estimate_iterations(5, Some(1), IterationEstimator::Refined),
            4.0
        );
    }

    #[test]
    fn refined_estimate_never_below_one_round_for_multiple_queries() {
        for max in 2..40usize {
            for x in 1..=max {
                let n = estimate_iterations(max, Some(x), IterationEstimator::Refined);
                assert!(n >= 1.0, "max={max} x={x} gave {n}");
            }
        }
    }

    fn sample_inputs() -> CostInputs {
        CostInputs {
            db_edit_cost: 1,
            modified_relations: 1,
            modified_tuples: 1,
            result_edit_costs: vec![0, 1],
            partition_sizes: vec![10, 9],
            best_binary_x: Some(9),
        }
    }

    #[test]
    fn equation_components() {
        let i = sample_inputs();
        assert_eq!(i.db_cost(1.0), 2.0);
        assert_eq!(i.db_cost(3.0), 4.0);
        assert_eq!(i.result_cost(), 1.0);
        assert_eq!(i.subset_count(), 2);
        assert_eq!(i.max_subset(), 10);
        assert!(i.balance() < 0.5);
    }

    #[test]
    fn equation_5_total() {
        let params = CostParams::default().with_estimator(IterationEstimator::Simple);
        let i = sample_inputs();
        // current = (1 + 1·1) + 1 = 3; N = ceil(log2(10)) = 4;
        // residual per round = 1/1 + 1 + (2/2)*1 = 3; total = 3 + 12 = 15.
        assert!((user_effort_cost(&params, &i) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn beta_scales_relation_count_term() {
        let i = sample_inputs();
        let c1 = user_effort_cost(&CostParams::default().with_beta(1.0), &i);
        let c5 = user_effort_cost(&CostParams::default().with_beta(5.0), &i);
        assert!(c5 > c1);
    }

    #[test]
    fn more_modifications_cost_more_now_but_can_pay_off_later() {
        // A single-change database splitting 19 queries 18/1 vs a
        // three-change database splitting them 7/6/6: the latter costs more
        // in the current round but reduces the residual estimate; the total
        // preference depends on the numbers — verify both directions are
        // possible by checking the residual term shrinks.
        let lopsided = CostInputs {
            db_edit_cost: 1,
            modified_relations: 1,
            modified_tuples: 1,
            result_edit_costs: vec![0, 1],
            partition_sizes: vec![18, 1],
            best_binary_x: Some(1),
        };
        let balanced = CostInputs {
            db_edit_cost: 3,
            modified_relations: 1,
            modified_tuples: 3,
            result_edit_costs: vec![0, 1, 1],
            partition_sizes: vec![7, 6, 6],
            best_binary_x: Some(6),
        };
        let params = CostParams::default();
        let n_lop = estimate_iterations(18, Some(1), params.estimator);
        let n_bal = estimate_iterations(7, Some(6), params.estimator);
        assert!(n_bal < n_lop);
        assert!(user_effort_cost(&params, &balanced) < user_effort_cost(&params, &lopsided));
    }

    #[test]
    fn max_partitions_model_prefers_more_subsets() {
        let few = CostInputs {
            partition_sizes: vec![10, 9],
            ..sample_inputs()
        };
        let many = CostInputs {
            db_edit_cost: 8,
            modified_relations: 2,
            modified_tuples: 8,
            result_edit_costs: vec![0, 1, 1, 2, 2, 1, 1, 3],
            partition_sizes: vec![3, 3, 3, 2, 2, 2, 2, 2],
            best_binary_x: Some(9),
        };
        let effort = CostParams::default();
        let maxpart = CostParams::default().with_model(CostModelKind::MaxPartitions);
        // Under the user-effort model the cheap binary split wins; under the
        // alternative model the 8-way split wins.
        assert!(objective(&effort, &few) < objective(&effort, &many));
        assert!(objective(&maxpart, &many) < objective(&maxpart, &few));
    }

    #[test]
    fn params_builders() {
        let p = CostParams::paper_defaults()
            .with_beta(2.0)
            .with_skyline_budget(Duration::from_millis(100))
            .with_estimator(IterationEstimator::Simple)
            .with_model(CostModelKind::MaxPartitions);
        assert_eq!(p.beta, 2.0);
        assert_eq!(p.skyline_time_budget, Duration::from_millis(100));
        assert_eq!(p.estimator, IterationEstimator::Simple);
        assert_eq!(p.model, CostModelKind::MaxPartitions);
    }
}
