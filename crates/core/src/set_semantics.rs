//! Queries with set-based semantics (Section 6.1).
//!
//! The core algorithms assume bag semantics (duplicates preserved).  For
//! `SELECT DISTINCT` candidates, a modification that removes one of several
//! duplicate-supporting tuples does not change the (set) result, so the paper
//! proposes distinguishing such queries by modifications that make a tuple
//! *newly* match one query but not another (the "second approach" of
//! Section 6.1).  In this reproduction the exact evaluation used by the
//! database generator already reflects set semantics (candidate results are
//! deduplicated before grouping), so non-discriminating removals are
//! automatically rejected; the helpers here switch candidate sets to set
//! semantics and check which semantics a candidate set uses.

use qfe_query::SpjQuery;

/// Whether every candidate uses set semantics (`SELECT DISTINCT`).
pub fn all_set_semantics(queries: &[SpjQuery]) -> bool {
    !queries.is_empty() && queries.iter().all(|q| q.distinct)
}

/// Whether the candidate set mixes bag- and set-semantics queries. QFE treats
/// the two differently when comparing results, so mixing them in one
/// candidate set is usually a sign of a malformed input.
pub fn mixed_semantics(queries: &[SpjQuery]) -> bool {
    queries.iter().any(|q| q.distinct) && queries.iter().any(|q| !q.distinct)
}

/// Returns the candidate set with every query switched to set semantics.
pub fn with_set_semantics(queries: &[SpjQuery]) -> Vec<SpjQuery> {
    queries
        .iter()
        .map(|q| q.clone().with_distinct(true))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::QfeSession;
    use crate::feedback::OracleUser;
    use qfe_query::{evaluate, ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, Database, Table, TableSchema};

    fn db_with_duplicates() -> Database {
        // Two IT employees share the same name, so a DISTINCT projection of
        // names has fewer rows than the bag projection.
        let t = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "Sales", 3700i64],
                tuple![2i64, "Bob", "IT", 4200i64],
                tuple![3i64, "Bob", "IT", 4900i64],
                tuple![4i64, "Celina", "Service", 3000i64],
                tuple![5i64, "Darren", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(t).unwrap();
        db
    }

    fn distinct_candidates() -> Vec<SpjQuery> {
        let q = |label: &str, p| {
            SpjQuery::new(vec!["Employee"], vec!["name"], p)
                .with_distinct(true)
                .with_label(label)
        };
        vec![
            q("Qd1", DnfPredicate::single(Term::eq("dept", "IT"))),
            q(
                "Qd2",
                DnfPredicate::single(Term::compare("salary", ComparisonOp::Gt, 4000i64)),
            ),
        ]
    }

    #[test]
    fn semantics_predicates() {
        let qs = distinct_candidates();
        assert!(all_set_semantics(&qs));
        assert!(!mixed_semantics(&qs));
        let mut mixed = qs.clone();
        mixed.push(SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::always_true(),
        ));
        assert!(!all_set_semantics(&mixed));
        assert!(mixed_semantics(&mixed));
        assert!(!all_set_semantics(&[]));
        let converted = with_set_semantics(&mixed);
        assert!(all_set_semantics(&converted));
    }

    #[test]
    fn driver_distinguishes_distinct_queries() {
        // Both DISTINCT candidates produce {Bob, Darren} on D; QFE must find a
        // modification that separates them even though removing one Bob-tuple
        // would not change either set-result.
        let db = db_with_duplicates();
        let candidates = distinct_candidates();
        let result = evaluate(&candidates[0], &db).unwrap();
        assert!(result.bag_equal(&evaluate(&candidates[1], &db).unwrap()));
        for target in &candidates {
            let session = QfeSession::builder(db.clone(), result.clone())
                .with_candidates(candidates.clone())
                .build()
                .unwrap();
            let outcome = session.run(&OracleUser::new(target.clone())).unwrap();
            assert_eq!(outcome.query.label, target.label);
        }
    }
}
