//! The sans-IO session engine: Algorithm 1 as a resumable state machine.
//!
//! [`QfeSession::run`] drives the feedback loop against a callback, which
//! cannot suspend while a real user thinks, cannot survive a process restart
//! and cannot serve many concurrent users. [`QfeEngine`] inverts the control
//! flow: the caller *pulls* each feedback round out of the engine with
//! [`QfeEngine::step`] and *pushes* the user's selection back in with
//! [`QfeEngine::answer`] — the engine performs no IO and never blocks on a
//! user.
//!
//! ```text
//! loop {
//!     match engine.step()? {
//!         Step::AwaitFeedback(round) => engine.answer(choice_for(&round))?,
//!         Step::Done(outcome) => break outcome,
//!     }
//! }
//! ```
//!
//! All loop state lives in the engine: the surviving candidate indices, the
//! per-iteration statistics, and the generated-but-unanswered round (cached,
//! so repeated `step` calls re-present the same round without re-running
//! Algorithms 2–4). The whole state externalizes as a [`SessionSnapshot`] —
//! see [`QfeEngine::snapshot`] / [`QfeEngine::resume`] — so a session can be
//! persisted mid-round, shipped across processes, and continued elsewhere.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qfe_query::{QueryResult, SpjQuery};
use qfe_relation::Database;

use crate::context::GenerationContext;
use crate::cost::CostParams;
use crate::dbgen::{DatabaseGenerator, GeneratedDatabase};
use crate::delta::{DatabaseDelta, ResultDelta};
use crate::driver::{QfeOutcome, QfeSession};
use crate::error::{QfeError, Result};
use crate::feedback::{FeedbackChoice, FeedbackRound};
use crate::skyline::SkylineMemo;
use crate::stats::{IterationStats, SessionReport};

/// What the engine needs next.
#[derive(Debug, Clone)]
pub enum Step {
    /// A feedback round awaits the user: present it, then call
    /// [`QfeEngine::answer`] (or [`QfeEngine::reject`]).
    AwaitFeedback(FeedbackRound),
    /// The session is finished.
    Done(QfeOutcome),
}

/// A generated feedback round that has not been answered yet, together with
/// the machine-side statistics of its generation (the user's response time is
/// filled in when the round is answered).
#[derive(Debug, Clone, PartialEq)]
pub struct PendingRound {
    /// The round to present.
    pub round: FeedbackRound,
    /// Machine-side statistics of the round's generation.
    pub stats: IterationStats,
}

/// The previous round's generation context plus, once the round is answered,
/// the surviving candidate positions — everything
/// [`GenerationContext::advance`] needs to derive the next round's context
/// incrementally. Purely a cache: never serialized, rebuilt from scratch
/// after a resume.
#[derive(Debug, Clone)]
struct RoundContextCache {
    ctx: Arc<GenerationContext>,
    /// Positions (into the cached context's query list) kept by the answer;
    /// `None` while the round is unanswered.
    surviving: Option<Vec<usize>>,
    /// Cross-round skyline memo: per-`(cost level, source class)` enumeration
    /// results reused whenever the candidate set and class geometry survive a
    /// round (the memo self-invalidates on its fingerprint otherwise).
    memo: SkylineMemo,
}

/// The resumable state machine behind a QFE session (Algorithm 1, sans-IO).
///
/// Obtained from [`QfeSession::start`] or [`QfeEngine::resume`].
#[derive(Debug, Clone)]
pub struct QfeEngine {
    database: Arc<Database>,
    result: Arc<QueryResult>,
    candidates: Vec<SpjQuery>,
    params: CostParams,
    max_iterations: usize,
    query_generation_time: Duration,
    /// Indices (into `candidates`) of the queries still alive.
    remaining: Vec<usize>,
    /// Statistics of the answered iterations, in order.
    iterations: Vec<IterationStats>,
    /// The generated-but-unanswered round, if any.
    pending: Option<PendingRound>,
    /// The user reported that no presented result matches their intent.
    rejected: bool,
    /// The generator certified the remaining candidates indistinguishable.
    indistinguishable: bool,
    /// Previous round's context, advanced instead of rebuilt each round.
    round_ctx: Option<RoundContextCache>,
}

impl QfeEngine {
    pub(crate) fn from_session(session: &QfeSession) -> QfeEngine {
        QfeEngine {
            database: Arc::new(session.database().clone()),
            result: Arc::new(session.original_result().clone()),
            candidates: session.candidates().to_vec(),
            params: session.params().clone(),
            max_iterations: session.max_iterations(),
            query_generation_time: session.query_generation_time(),
            remaining: (0..session.candidates().len()).collect(),
            iterations: Vec::new(),
            pending: None,
            rejected: false,
            indistinguishable: false,
            round_ctx: None,
        }
    }

    /// Advances the state machine: returns the feedback round awaiting an
    /// answer, or the session's outcome when one query (or one equivalence
    /// class of indistinguishable queries) remains.
    ///
    /// Stepping is idempotent while a round is pending: the cached round is
    /// re-presented without re-running Algorithms 2–4, so a front end may
    /// re-render freely.
    pub fn step(&mut self) -> Result<Step> {
        if self.rejected {
            return Err(QfeError::TargetNotInCandidates);
        }
        if let Some(pending) = &self.pending {
            return Ok(Step::AwaitFeedback(pending.round.clone()));
        }
        if self.remaining.is_empty() {
            return Err(QfeError::NoCandidates);
        }
        if self.remaining.len() == 1 || self.indistinguishable {
            return Ok(Step::Done(self.outcome()));
        }

        let iteration = self.iterations.len() + 1;
        if iteration > self.max_iterations {
            return Err(QfeError::IterationLimitExceeded {
                limit: self.max_iterations,
            });
        }

        let round_start = Instant::now();
        let generated = match self.generate_round() {
            Ok(g) => g,
            // No valid modification separates the survivors: they are
            // equivalent over every database the generator can reach, so
            // showing the user more rounds cannot help. Terminate with the
            // whole equivalence class reported in the outcome.
            Err(QfeError::NoDistinguishingDatabase { .. }) => {
                self.indistinguishable = true;
                return Ok(Step::Done(self.outcome()));
            }
            Err(e) => return Err(e),
        };

        let database_delta = DatabaseDelta {
            edits: generated.edits.clone(),
        };
        let choices: Vec<FeedbackChoice> = generated
            .partition
            .groups
            .iter()
            .map(|g| FeedbackChoice {
                result: g.result.clone(),
                result_delta: ResultDelta::between(&self.result, &g.result),
                candidate_count: g.query_indices.len(),
                query_indices: g.query_indices.clone(),
            })
            .collect();
        let round = FeedbackRound {
            iteration,
            database: generated.database.clone(),
            database_delta,
            choices,
        };
        // The paper folds the candidate-generation time into the first
        // iteration's machine time.
        let machine_time = round_start.elapsed()
            + if iteration == 1 {
                self.query_generation_time
            } else {
                Duration::ZERO
            };
        let stats = IterationStats {
            iteration,
            candidate_count: self.remaining.len(),
            group_count: round.choices.len(),
            skyline_pairs: generated.skyline_pair_count,
            execution_time: machine_time,
            skyline_time: generated.skyline_time,
            pick_time: generated.pick_time,
            modify_time: generated.modify_time,
            db_cost: generated.db_edit_cost,
            result_cost: generated.result_cost,
            modified_relations: generated.modified_relations,
            modified_tuples: generated.modified_tuples,
            user_time: Duration::ZERO,
        };
        self.pending = Some(PendingRound {
            round: round.clone(),
            stats,
        });
        Ok(Step::AwaitFeedback(round))
    }

    /// Runs Algorithm 2 for the current survivors, advancing the previous
    /// round's [`GenerationContext`] when one is cached (the join, join
    /// index, active domains and source classes carry over — `D` and `R`
    /// never change within a session) and building one from the shared
    /// example pair otherwise. The context used is cached for the next round.
    fn generate_round(&mut self) -> Result<GeneratedDatabase> {
        let generator = DatabaseGenerator::new(self.params.clone());
        // The skyline memo travels with the cached context; it keys its
        // validity on a fingerprint of the candidate set and class geometry,
        // so carrying it across a fallback rebuild is safe.
        let mut memo = SkylineMemo::new();
        if let Some(cache) = self.round_ctx.take() {
            memo = cache.memo;
            if let Some(surviving) = cache.surviving {
                match generator.generate_incremental_memoized(
                    &cache.ctx,
                    &surviving,
                    &[],
                    &mut memo,
                ) {
                    Ok((ctx, generated)) => {
                        self.round_ctx = Some(RoundContextCache {
                            ctx,
                            surviving: None,
                            memo,
                        });
                        return Ok(generated);
                    }
                    // Indistinguishability is a result, not a failure of the
                    // incremental path.
                    Err(e @ QfeError::NoDistinguishingDatabase { .. }) => return Err(e),
                    // Any other incremental failure falls through to a full
                    // rebuild — never let the cache break a session.
                    Err(_) => {}
                }
            }
        }
        let queries: Vec<SpjQuery> = self
            .remaining
            .iter()
            .map(|&i| self.candidates[i].clone())
            .collect();
        let ctx = Arc::new(GenerationContext::new_shared(
            Arc::clone(&self.database),
            Arc::clone(&self.result),
            queries,
        )?);
        let generated = generator.generate_with_context_memoized(&ctx, &mut memo)?;
        self.round_ctx = Some(RoundContextCache {
            ctx,
            surviving: None,
            memo,
        });
        Ok(generated)
    }

    /// Answers the pending round: keeps the candidate queries behind choice
    /// `choice_idx` and discards the rest.
    ///
    /// Fails with [`QfeError::NoPendingRound`] when no round awaits an answer
    /// and with [`QfeError::InvalidChoice`] when the index is out of range —
    /// in both cases the engine state is unchanged, so an interactive front
    /// end can simply re-prompt.
    pub fn answer(&mut self, choice_idx: usize) -> Result<()> {
        self.answer_timed(choice_idx, Duration::ZERO)
    }

    /// [`QfeEngine::answer`] with the user's measured (or simulated) response
    /// time recorded in the iteration statistics.
    pub fn answer_timed(&mut self, choice_idx: usize, user_time: Duration) -> Result<()> {
        let available = match &self.pending {
            None => return Err(QfeError::NoPendingRound),
            Some(p) => p.round.choices.len(),
        };
        if choice_idx >= available {
            return Err(QfeError::InvalidChoice {
                chosen: choice_idx,
                available,
            });
        }
        let mut pending = self.pending.take().expect("pending round checked above");
        pending.stats.user_time = user_time;
        self.iterations.push(pending.stats);
        let kept = &pending.round.choices[choice_idx];
        self.remaining = kept
            .query_indices
            .iter()
            .map(|&i| self.remaining[i])
            .collect();
        // Remember which positions survived so the next round can advance
        // the cached generation context instead of rebuilding it (the group
        // indices are ascending by construction of the partition).
        if let Some(cache) = &mut self.round_ctx {
            cache.surviving = Some(kept.query_indices.clone());
        }
        Ok(())
    }

    /// Records that none of the presented results matches the user's intended
    /// query: the target is not among the candidates. The round's statistics
    /// are kept and the engine enters a terminal state in which every further
    /// [`QfeEngine::step`] reports [`QfeError::TargetNotInCandidates`].
    pub fn reject(&mut self) -> Result<()> {
        self.reject_timed(Duration::ZERO)
    }

    /// [`QfeEngine::reject`] with the user's response time recorded.
    pub fn reject_timed(&mut self, user_time: Duration) -> Result<()> {
        let mut pending = self.pending.take().ok_or(QfeError::NoPendingRound)?;
        pending.stats.user_time = user_time;
        self.iterations.push(pending.stats);
        self.rejected = true;
        Ok(())
    }

    fn outcome(&self) -> QfeOutcome {
        // With several indistinguishable survivors the choice among them is
        // immaterial (they agree on every reachable database); pick the
        // simplest deterministically so reports are stable.
        let best = self
            .remaining
            .iter()
            .copied()
            .min_by_key(|&i| {
                (
                    self.candidates[i].complexity(),
                    self.candidates[i].to_string(),
                )
            })
            .expect("outcome requires at least one remaining candidate");
        let indistinguishable = if self.remaining.len() > 1 {
            self.remaining
                .iter()
                .map(|&i| self.candidates[i].clone())
                .collect()
        } else {
            Vec::new()
        };
        QfeOutcome {
            query: self.candidates[best].clone(),
            indistinguishable,
            report: self.report(),
        }
    }

    /// The session record so far (also available before the session ends).
    pub fn report(&self) -> SessionReport {
        SessionReport {
            query_generation_time: self.query_generation_time,
            initial_candidates: self.candidates.len(),
            iterations: self.iterations.clone(),
        }
    }

    /// The example database `D`.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The example result `R`.
    pub fn original_result(&self) -> &QueryResult {
        &self.result
    }

    /// The full candidate set the session started from.
    pub fn candidates(&self) -> &[SpjQuery] {
        &self.candidates
    }

    /// The queries still alive.
    pub fn remaining_candidates(&self) -> Vec<&SpjQuery> {
        self.remaining
            .iter()
            .map(|&i| &self.candidates[i])
            .collect()
    }

    /// Number of queries still alive.
    pub fn remaining_count(&self) -> usize {
        self.remaining.len()
    }

    /// Number of answered feedback iterations.
    pub fn iterations_completed(&self) -> usize {
        self.iterations.len()
    }

    /// True when a generated round awaits an answer.
    pub fn awaiting_feedback(&self) -> bool {
        self.pending.is_some()
    }

    /// The cached round awaiting an answer, by reference. Front ends that
    /// re-render frequently should prefer this over repeated
    /// [`QfeEngine::step`] calls: stepping clones the round (including the
    /// whole modified database) each time, this borrow is free.
    pub fn pending_round(&self) -> Option<&FeedbackRound> {
        self.pending.as_ref().map(|p| &p.round)
    }

    /// True when the session has terminated (one survivor, certified
    /// indistinguishability, or user rejection).
    pub fn is_done(&self) -> bool {
        self.rejected
            || (self.pending.is_none() && (self.remaining.len() <= 1 || self.indistinguishable))
    }

    /// Externalizes the engine's complete state. The example pair is shared
    /// (`Arc`), not copied: a snapshot of an engine with a 10k-row database
    /// costs a pointer bump until it is serialized.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            database: Arc::clone(&self.database),
            result: Arc::clone(&self.result),
            candidates: self.candidates.clone(),
            params: self.params.clone(),
            max_iterations: self.max_iterations,
            query_generation_time: self.query_generation_time,
            remaining: self.remaining.clone(),
            iterations: self.iterations.clone(),
            pending: self.pending.clone(),
            rejected: self.rejected,
            indistinguishable: self.indistinguishable,
        }
    }

    /// Rebuilds an engine from a snapshot (possibly created by another
    /// process). The snapshot is validated: candidate indices must be in
    /// range and a cached pending round must be consistent with the
    /// surviving candidates.
    pub fn resume(snapshot: SessionSnapshot) -> Result<QfeEngine> {
        let n = snapshot.candidates.len();
        if n == 0 {
            return Err(QfeError::NoCandidates);
        }
        if snapshot.remaining.is_empty() {
            return Err(QfeError::Snapshot {
                message: "snapshot has no remaining candidates".into(),
            });
        }
        let mut seen = vec![false; n];
        for &i in &snapshot.remaining {
            if i >= n {
                return Err(QfeError::Snapshot {
                    message: format!("remaining index {i} out of range ({n} candidates)"),
                });
            }
            if std::mem::replace(&mut seen[i], true) {
                return Err(QfeError::Snapshot {
                    message: format!("remaining index {i} duplicated"),
                });
            }
        }
        if let Some(pending) = &snapshot.pending {
            // A rejected session is terminal; the engine itself always drops
            // the pending round on rejection, so this combination can only
            // come from a corrupted or hand-edited snapshot.
            if snapshot.rejected {
                return Err(QfeError::Snapshot {
                    message: "rejected session cannot have a pending round".into(),
                });
            }
            // Every choice must select a non-empty, disjoint subset of the
            // survivors — answering an empty or overlapping choice would
            // leave the engine in a state the API cannot otherwise reach.
            let alive = snapshot.remaining.len();
            let mut claimed = vec![false; alive];
            for choice in &pending.round.choices {
                if choice.query_indices.is_empty() {
                    return Err(QfeError::Snapshot {
                        message: "pending round has an empty choice".into(),
                    });
                }
                for &i in &choice.query_indices {
                    if i >= alive {
                        return Err(QfeError::Snapshot {
                            message: "pending round references pruned candidates".into(),
                        });
                    }
                    if std::mem::replace(&mut claimed[i], true) {
                        return Err(QfeError::Snapshot {
                            message: format!(
                                "pending round assigns candidate {i} to several choices"
                            ),
                        });
                    }
                }
            }
        }
        Ok(QfeEngine {
            database: snapshot.database,
            result: snapshot.result,
            candidates: snapshot.candidates,
            params: snapshot.params,
            max_iterations: snapshot.max_iterations,
            query_generation_time: snapshot.query_generation_time,
            remaining: snapshot.remaining,
            iterations: snapshot.iterations,
            pending: snapshot.pending,
            rejected: snapshot.rejected,
            indistinguishable: snapshot.indistinguishable,
            round_ctx: None,
        })
    }
}

/// The externalized state of a [`QfeEngine`]: everything needed to continue a
/// session in a fresh engine, possibly in another process.
///
/// Serialize with [`SessionSnapshot::serialize`] and rebuild with
/// [`SessionSnapshot::deserialize`]; the JSON is produced by the workspace's
/// `qfe-wire` layer and validated on the way back in.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The example database `D`, shared with the engine that produced the
    /// snapshot (serialization materializes it; deserialization allocates a
    /// fresh shared copy).
    pub database: Arc<Database>,
    /// The example result `R`, shared likewise.
    pub result: Arc<QueryResult>,
    /// The full initial candidate set.
    pub candidates: Vec<SpjQuery>,
    /// Cost-model parameters.
    pub params: CostParams,
    /// Iteration safety cap.
    pub max_iterations: usize,
    /// Time the Query Generator spent producing the candidates.
    pub query_generation_time: Duration,
    /// Indices (into `candidates`) of the surviving queries.
    pub remaining: Vec<usize>,
    /// Statistics of the answered iterations.
    pub iterations: Vec<IterationStats>,
    /// The generated-but-unanswered round, if the session was snapshotted
    /// mid-round.
    pub pending: Option<PendingRound>,
    /// Whether the user already rejected a round ("none of these").
    pub rejected: bool,
    /// Whether the generator certified the survivors indistinguishable.
    pub indistinguishable: bool,
}

impl SessionSnapshot {
    /// Renders the snapshot as JSON text.
    pub fn serialize(&self) -> String {
        use qfe_wire::ToJson;
        self.to_json_string()
    }

    /// Parses JSON text produced by [`SessionSnapshot::serialize`].
    pub fn deserialize(text: &str) -> Result<SessionSnapshot> {
        use qfe_wire::FromJson;
        SessionSnapshot::from_json_str(text).map_err(|e| QfeError::Snapshot {
            message: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::{FeedbackUser, OracleUser};
    use qfe_datasets::example_1_1;

    fn example_candidates() -> Vec<SpjQuery> {
        example_1_1().2
    }

    fn example_session() -> QfeSession {
        let (db, result, candidates, _) = example_1_1();
        QfeSession::builder(db, result)
            .with_candidates(candidates)
            .build()
            .unwrap()
    }

    fn oracle_drive(engine: &mut QfeEngine, target: &SpjQuery) -> QfeOutcome {
        let oracle = OracleUser::new(target.clone());
        loop {
            match engine.step().unwrap() {
                Step::Done(outcome) => return outcome,
                Step::AwaitFeedback(round) => {
                    engine.answer(oracle.choose(&round).unwrap()).unwrap()
                }
            }
        }
    }

    #[test]
    fn step_answer_identifies_the_target() {
        for target in example_candidates() {
            let mut engine = example_session().start();
            assert_eq!(engine.remaining_count(), 3);
            assert!(!engine.is_done());
            let outcome = oracle_drive(&mut engine, &target);
            assert_eq!(outcome.query.label, target.label);
            assert!(outcome.fully_identified());
            assert!(engine.is_done());
            assert!(engine.iterations_completed() >= 1);
            assert_eq!(engine.report().initial_candidates, 3);
            // Done is stable: stepping again returns the same outcome.
            match engine.step().unwrap() {
                Step::Done(again) => assert_eq!(again.query.label, target.label),
                Step::AwaitFeedback(_) => panic!("engine must stay done"),
            }
        }
    }

    #[test]
    fn repeated_step_re_presents_the_cached_round() {
        let mut engine = example_session().start();
        let first = match engine.step().unwrap() {
            Step::AwaitFeedback(round) => round,
            Step::Done(_) => panic!("three candidates cannot finish immediately"),
        };
        assert!(engine.awaiting_feedback());
        for _ in 0..3 {
            match engine.step().unwrap() {
                Step::AwaitFeedback(round) => assert_eq!(round, first),
                Step::Done(_) => panic!("round still pending"),
            }
        }
        // The cache means no extra iteration was recorded.
        assert_eq!(engine.iterations_completed(), 0);
    }

    #[test]
    fn invalid_answers_leave_the_engine_usable() {
        let mut engine = example_session().start();
        assert!(matches!(engine.answer(0), Err(QfeError::NoPendingRound)));
        assert!(matches!(engine.reject(), Err(QfeError::NoPendingRound)));
        let round = match engine.step().unwrap() {
            Step::AwaitFeedback(round) => round,
            Step::Done(_) => panic!("round expected"),
        };
        let err = engine.answer(round.choices.len()).unwrap_err();
        assert!(matches!(err, QfeError::InvalidChoice { available, .. }
            if available == round.choices.len()));
        // The round survives the invalid answer and can still be answered.
        assert!(engine.awaiting_feedback());
        engine.answer(0).unwrap();
        assert_eq!(engine.iterations_completed(), 1);
    }

    #[test]
    fn reject_is_terminal_and_surfaced_by_step() {
        let mut engine = example_session().start();
        match engine.step().unwrap() {
            Step::AwaitFeedback(_) => engine.reject_timed(Duration::from_secs(3)).unwrap(),
            Step::Done(_) => panic!("round expected"),
        }
        assert!(engine.is_done());
        assert!(matches!(
            engine.step(),
            Err(QfeError::TargetNotInCandidates)
        ));
        // The rejected round's statistics were kept.
        assert_eq!(engine.iterations_completed(), 1);
        assert_eq!(
            engine.report().iterations[0].user_time,
            Duration::from_secs(3)
        );
    }

    #[test]
    fn iteration_cap_is_reported_with_the_dedicated_variant() {
        let (db, result, candidates, _) = example_1_1();
        let session = QfeSession::builder(db, result)
            .with_candidates(candidates)
            .with_max_iterations(0)
            .build()
            .unwrap();
        let mut engine = session.start();
        assert!(matches!(
            engine.step(),
            Err(QfeError::IterationLimitExceeded { limit: 0 })
        ));
    }

    #[test]
    fn snapshot_mid_round_resumes_to_the_same_outcome() {
        let target = example_candidates().remove(2);
        let mut original = example_session().start();
        // Snapshot while a round is pending.
        let round = match original.step().unwrap() {
            Step::AwaitFeedback(round) => round,
            Step::Done(_) => panic!("round expected"),
        };
        let text = original.snapshot().serialize();

        // A fresh engine built from the serialized text re-presents the
        // cached round without regenerating, then reaches the same outcome.
        let snapshot = SessionSnapshot::deserialize(&text).unwrap();
        let mut resumed = QfeEngine::resume(snapshot).unwrap();
        match resumed.step().unwrap() {
            Step::AwaitFeedback(r) => assert_eq!(r, round),
            Step::Done(_) => panic!("pending round must survive the snapshot"),
        }
        let resumed_outcome = oracle_drive(&mut resumed, &target);
        let original_outcome = oracle_drive(&mut original, &target);
        assert_eq!(resumed_outcome.query.label, original_outcome.query.label);
        assert_eq!(
            resumed_outcome.report.iterations(),
            original_outcome.report.iterations()
        );
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let engine = example_session().start();
        let snapshot = engine.snapshot();

        let mut bad = snapshot.clone();
        bad.remaining = vec![0, 99];
        assert!(matches!(
            QfeEngine::resume(bad),
            Err(QfeError::Snapshot { .. })
        ));

        let mut bad = snapshot.clone();
        bad.remaining = vec![1, 1];
        assert!(matches!(
            QfeEngine::resume(bad),
            Err(QfeError::Snapshot { .. })
        ));

        let mut bad = snapshot.clone();
        bad.remaining.clear();
        assert!(matches!(
            QfeEngine::resume(bad),
            Err(QfeError::Snapshot { .. })
        ));

        let mut bad = snapshot;
        bad.candidates.clear();
        bad.remaining.clear();
        assert!(matches!(
            QfeEngine::resume(bad),
            Err(QfeError::NoCandidates)
        ));

        assert!(SessionSnapshot::deserialize("{not json").is_err());
        assert!(SessionSnapshot::deserialize("{\"version\":99}").is_err());
    }

    #[test]
    fn inconsistent_pending_rounds_are_rejected() {
        let mut engine = example_session().start();
        let _ = engine.step().unwrap();
        let snapshot = engine.snapshot();
        assert!(snapshot.pending.is_some());

        // A rejected session can never carry a pending round.
        let mut bad = snapshot.clone();
        bad.rejected = true;
        assert!(matches!(
            QfeEngine::resume(bad),
            Err(QfeError::Snapshot { .. })
        ));

        // An empty choice would let answer() wipe out every survivor.
        let mut bad = snapshot.clone();
        bad.pending.as_mut().unwrap().round.choices[0]
            .query_indices
            .clear();
        assert!(matches!(
            QfeEngine::resume(bad),
            Err(QfeError::Snapshot { .. })
        ));

        // Choices must be disjoint over the survivors.
        let mut bad = snapshot.clone();
        let first = bad.pending.as_ref().unwrap().round.choices[0].query_indices[0];
        bad.pending.as_mut().unwrap().round.choices[1]
            .query_indices
            .push(first);
        assert!(matches!(
            QfeEngine::resume(bad),
            Err(QfeError::Snapshot { .. })
        ));

        // The untampered snapshot still resumes.
        assert!(QfeEngine::resume(snapshot).is_ok());
    }

    #[test]
    fn snapshots_share_the_example_pair_with_the_engine() {
        // Snapshotting must not copy `D`/`R`: the snapshot and the engine
        // hold the same allocation until serialization materializes it.
        let engine = example_session().start();
        let s1 = engine.snapshot();
        let s2 = engine.snapshot();
        assert!(Arc::ptr_eq(&s1.database, &s2.database));
        assert!(Arc::ptr_eq(&s1.result, &s2.result));
        // Resume adopts the snapshot's allocation rather than cloning.
        let resumed = QfeEngine::resume(s1.clone()).unwrap();
        let s3 = resumed.snapshot();
        assert!(Arc::ptr_eq(&s1.database, &s3.database));
    }

    #[test]
    fn pending_round_borrows_the_cached_round() {
        let mut engine = example_session().start();
        assert!(engine.pending_round().is_none());
        let round = match engine.step().unwrap() {
            Step::AwaitFeedback(round) => round,
            Step::Done(_) => panic!("round expected"),
        };
        assert_eq!(engine.pending_round(), Some(&round));
        engine.answer(0).unwrap();
        assert!(engine.pending_round().is_none());
    }

    #[test]
    fn engine_accessors_expose_session_state() {
        let session = example_session();
        let engine = session.start();
        assert_eq!(engine.candidates().len(), 3);
        assert_eq!(engine.remaining_candidates().len(), 3);
        assert!(engine.database().has_table("Employee"));
        assert_eq!(engine.original_result().len(), 2);
        assert!(!engine.awaiting_feedback());
    }
}
