//! # qfe-query — select-project-join queries for the QFE reproduction
//!
//! The QFE paper's candidate queries are of the form `π_ℓ(σ_p(J))`: a
//! projection over a selection (with a predicate in disjunctive normal form)
//! over the foreign-key join `J` of some database relations.  This crate
//! provides that query model, its evaluation against `qfe-relation`
//! databases/joins, SQL text rendering and parsing for the supported
//! fragment, query-result comparison (bag and set semantics, `minEdit`,
//! symmetric differences) and the partitioning of candidate-query sets by
//! their results — the primitive QFE's feedback loop is built on.
//!
//! ## Example
//!
//! ```
//! use qfe_query::{evaluate, parse_sql};
//! use qfe_relation::{tuple, ColumnDef, Database, DataType, Table, TableSchema};
//!
//! let mut db = Database::new();
//! db.add_table(
//!     Table::with_rows(
//!         TableSchema::new(
//!             "Employee",
//!             vec![
//!                 ColumnDef::new("name", DataType::Text),
//!                 ColumnDef::new("salary", DataType::Int),
//!             ],
//!         )
//!         .unwrap(),
//!         vec![tuple!["Alice", 3700i64], tuple!["Bob", 4200i64]],
//!     )
//!     .unwrap(),
//! )
//! .unwrap();
//!
//! let q = parse_sql("SELECT name FROM Employee WHERE salary > 4000").unwrap();
//! let r = evaluate(&q, &db).unwrap();
//! assert_eq!(r.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod eval;
mod partition;
mod predicate;
mod result;
mod serial;
mod spj;
mod spju;
mod sql;
mod vectorized;

pub use error::{QueryError, Result};
pub use eval::{evaluate, evaluate_on_join, evaluate_on_join_columnar, BoundQuery};
pub use partition::{
    partition_bound_queries, partition_queries, partition_queries_on_join, QueryGroup,
    QueryPartition,
};
pub use predicate::{ComparisonOp, Conjunct, DnfPredicate, Term};
pub use result::QueryResult;
pub use spj::SpjQuery;
pub use spju::SpjuQuery;
pub use sql::{parse_sql, to_sql};
pub use vectorized::{compute_term_bitmap, TermBitmapCache};
