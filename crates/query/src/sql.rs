//! SQL text for SPJ queries: rendering and parsing.
//!
//! QFE presents the finally-identified query to the user as SQL text, and it
//! is convenient (for examples, logs and tests) to be able to read queries
//! back from SQL.  The supported fragment is exactly the paper's query class:
//!
//! ```sql
//! SELECT [DISTINCT] col [, col ...]
//! FROM   table [JOIN table ...]
//! [WHERE boolean-combination of  col op literal | col [NOT] IN (lit, ...)]
//! ```
//!
//! The WHERE clause may use `AND`, `OR` and parentheses; it is normalized to
//! disjunctive normal form on parsing (the paper's assumed predicate shape).

use qfe_relation::Value;

use crate::error::{QueryError, Result};
use crate::predicate::{ComparisonOp, Conjunct, DnfPredicate, Term};
use crate::spj::SpjQuery;

/// Renders a query as SQL text. (Equivalent to the query's `Display`
/// implementation; provided as a named function for discoverability.)
pub fn to_sql(query: &SpjQuery) -> String {
    query.to_string()
}

/// Parses SQL text into an [`SpjQuery`].
pub fn parse_sql(text: &str) -> Result<SpjQuery> {
    let tokens = tokenize(text)?;
    Parser::new(tokens).parse_query()
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Symbol(char),
    Le,
    Ge,
    Ne,
}

#[derive(Debug, Clone)]
struct Spanned {
    token: Token,
    offset: usize,
}

fn tokenize(text: &str) -> Result<Vec<Spanned>> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '(' | ')' | ',' | '*' | '=' => {
                tokens.push(Spanned {
                    token: Token::Symbol(c),
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Le,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Spanned {
                        token: Token::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Symbol('<'),
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Symbol('>'),
                        offset: start,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(QueryError::Parse {
                        message: "unexpected '!'".to_string(),
                        position: start,
                    });
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => {
                            return Err(QueryError::Parse {
                                message: "unterminated string literal".to_string(),
                                position: start,
                            })
                        }
                    }
                }
                tokens.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            _ if c.is_ascii_digit()
                || (c == '-'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())) =>
            {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit()
                        || bytes[j] == b'.'
                        || bytes[j] == b'e'
                        || bytes[j] == b'E'
                        || (j > i
                            && (bytes[j] == b'-' || bytes[j] == b'+')
                            && matches!(bytes[j - 1], b'e' | b'E')))
                {
                    j += 1;
                }
                let lit = &text[i..j];
                let n: f64 = lit.parse().map_err(|_| QueryError::Parse {
                    message: format!("invalid number '{lit}'"),
                    position: start,
                })?;
                tokens.push(Spanned {
                    token: Token::Number(n),
                    offset: start,
                });
                i = j;
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'.')
                {
                    j += 1;
                }
                tokens.push(Spanned {
                    token: Token::Ident(text[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            _ => {
                return Err(QueryError::Parse {
                    message: format!("unexpected character '{c}'"),
                    position: start,
                })
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Intermediate boolean expression (before DNF conversion).
#[derive(Debug, Clone)]
enum BoolExpr {
    Term(Term),
    And(Box<BoolExpr>, Box<BoolExpr>),
    Or(Box<BoolExpr>, Box<BoolExpr>),
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|s| s.offset)
            .unwrap_or(0)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(QueryError::Parse {
            message: message.into(),
            position: self.offset(),
        })
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.advance() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => self.error(format!("expected {kw}, found {other:?}")),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn parse_query(&mut self) -> Result<SpjQuery> {
        self.expect_keyword("SELECT")?;
        let distinct = if self.keyword_is("DISTINCT") {
            self.advance();
            true
        } else {
            false
        };
        let projection = self.parse_projection()?;
        self.expect_keyword("FROM")?;
        let tables = self.parse_tables()?;
        let predicate = if self.keyword_is("WHERE") {
            self.advance();
            let expr = self.parse_or()?;
            to_dnf(&expr)
        } else {
            DnfPredicate::always_true()
        };
        if self.pos != self.tokens.len() {
            // Anything after the WHERE clause is outside the SPJ fragment.
            let trailing = format!("{:?}", self.peek());
            if self.keyword_is("GROUP") || self.keyword_is("ORDER") || self.keyword_is("HAVING") {
                return Err(QueryError::Unsupported { feature: trailing });
            }
            return self.error(format!("unexpected trailing tokens: {trailing}"));
        }
        if tables.is_empty() {
            return Err(QueryError::NoTables);
        }
        Ok(SpjQuery {
            label: None,
            tables,
            projection,
            predicate,
            distinct,
        })
    }

    fn parse_projection(&mut self) -> Result<Vec<String>> {
        if let Some(Token::Symbol('*')) = self.peek() {
            self.advance();
            return Ok(Vec::new()); // SELECT * — projection resolved at evaluation time
        }
        let mut cols = Vec::new();
        loop {
            match self.advance() {
                Some(Token::Ident(name)) => cols.push(name),
                other => return self.error(format!("expected column name, found {other:?}")),
            }
            if let Some(Token::Symbol(',')) = self.peek() {
                self.advance();
            } else {
                break;
            }
        }
        Ok(cols)
    }

    fn parse_tables(&mut self) -> Result<Vec<String>> {
        let mut tables = Vec::new();
        loop {
            match self.advance() {
                Some(Token::Ident(name)) => tables.push(name),
                other => return self.error(format!("expected table name, found {other:?}")),
            }
            if self.keyword_is("JOIN") {
                self.advance();
            } else if let Some(Token::Symbol(',')) = self.peek() {
                self.advance();
            } else {
                break;
            }
        }
        Ok(tables)
    }

    fn parse_or(&mut self) -> Result<BoolExpr> {
        let mut left = self.parse_and()?;
        while self.keyword_is("OR") {
            self.advance();
            let right = self.parse_and()?;
            left = BoolExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<BoolExpr> {
        let mut left = self.parse_atom()?;
        while self.keyword_is("AND") {
            self.advance();
            let right = self.parse_atom()?;
            left = BoolExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_atom(&mut self) -> Result<BoolExpr> {
        if let Some(Token::Symbol('(')) = self.peek() {
            self.advance();
            let inner = self.parse_or()?;
            match self.advance() {
                Some(Token::Symbol(')')) => Ok(inner),
                other => self.error(format!("expected ')', found {other:?}")),
            }
        } else {
            self.parse_term().map(BoolExpr::Term)
        }
    }

    fn parse_term(&mut self) -> Result<Term> {
        let attribute = match self.advance() {
            Some(Token::Ident(name)) => name,
            other => return self.error(format!("expected attribute, found {other:?}")),
        };
        // IN / NOT IN
        if self.keyword_is("IN") {
            self.advance();
            let values = self.parse_value_list()?;
            return Ok(Term::is_in(attribute, values));
        }
        if self.keyword_is("NOT") {
            self.advance();
            self.expect_keyword("IN")?;
            let values = self.parse_value_list()?;
            return Ok(Term::not_in(attribute, values));
        }
        let op = match self.advance() {
            Some(Token::Symbol('=')) => ComparisonOp::Eq,
            Some(Token::Symbol('<')) => ComparisonOp::Lt,
            Some(Token::Symbol('>')) => ComparisonOp::Gt,
            Some(Token::Le) => ComparisonOp::Le,
            Some(Token::Ge) => ComparisonOp::Ge,
            Some(Token::Ne) => ComparisonOp::Ne,
            other => return self.error(format!("expected comparison operator, found {other:?}")),
        };
        let value = self.parse_value()?;
        Ok(Term::Compare {
            attribute,
            op,
            value,
        })
    }

    fn parse_value_list(&mut self) -> Result<Vec<Value>> {
        match self.advance() {
            Some(Token::Symbol('(')) => {}
            other => return self.error(format!("expected '(', found {other:?}")),
        }
        let mut values = Vec::new();
        loop {
            values.push(self.parse_value()?);
            match self.advance() {
                Some(Token::Symbol(',')) => continue,
                Some(Token::Symbol(')')) => break,
                other => return self.error(format!("expected ',' or ')', found {other:?}")),
            }
        }
        Ok(values)
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.advance() {
            Some(Token::Number(n)) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    Ok(Value::Int(n as i64))
                } else {
                    Ok(Value::Float(n))
                }
            }
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            other => self.error(format!("expected literal, found {other:?}")),
        }
    }
}

/// Converts a boolean expression to disjunctive normal form by distributing
/// AND over OR.
fn to_dnf(expr: &BoolExpr) -> DnfPredicate {
    let conjuncts = dnf_conjuncts(expr);
    DnfPredicate::new(conjuncts.into_iter().map(Conjunct::new).collect())
}

fn dnf_conjuncts(expr: &BoolExpr) -> Vec<Vec<Term>> {
    match expr {
        BoolExpr::Term(t) => vec![vec![t.clone()]],
        BoolExpr::Or(a, b) => {
            let mut left = dnf_conjuncts(a);
            left.extend(dnf_conjuncts(b));
            left
        }
        BoolExpr::And(a, b) => {
            let left = dnf_conjuncts(a);
            let right = dnf_conjuncts(b);
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    let mut c = l.clone();
                    c.extend(r.iter().cloned());
                    out.push(c);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_select() {
        let q = parse_sql("SELECT name FROM Employee WHERE salary > 4000").unwrap();
        assert_eq!(q.tables, vec!["Employee"]);
        assert_eq!(q.projection, vec!["name"]);
        assert!(!q.distinct);
        assert_eq!(q.predicate.conjuncts().len(), 1);
        assert_eq!(
            q.to_string(),
            "SELECT name FROM Employee WHERE salary > 4000"
        );
    }

    #[test]
    fn parse_distinct_and_star() {
        let q = parse_sql("SELECT DISTINCT dept FROM Employee").unwrap();
        assert!(q.distinct);
        let q = parse_sql("SELECT * FROM Employee").unwrap();
        assert!(q.projection.is_empty());
        assert!(q.predicate.is_always_true());
    }

    #[test]
    fn parse_joins_both_spellings() {
        let q = parse_sql("SELECT managerID FROM Manager JOIN Team JOIN Batting").unwrap();
        assert_eq!(q.tables, vec!["Manager", "Team", "Batting"]);
        let q = parse_sql("SELECT managerID FROM Manager, Team").unwrap();
        assert_eq!(q.tables, vec!["Manager", "Team"]);
    }

    #[test]
    fn parse_mixed_and_or_with_parens_to_dnf() {
        // Q6-like shape: a AND (b OR (c AND d))
        let q = parse_sql(
            "SELECT x FROM T WHERE playerID = 'esaskni01' AND (IP > 4380 OR (IP <= 4380 AND BBA <= 485))",
        )
        .unwrap();
        // DNF: (playerID AND IP>4380) OR (playerID AND IP<=4380 AND BBA<=485)
        assert_eq!(q.predicate.conjuncts().len(), 2);
        assert_eq!(q.predicate.conjuncts()[0].len(), 2);
        assert_eq!(q.predicate.conjuncts()[1].len(), 3);
    }

    #[test]
    fn parse_in_and_not_in() {
        let q =
            parse_sql("SELECT x FROM T WHERE playerID IN ('a', 'b') AND y NOT IN (1, 2)").unwrap();
        let terms = q.predicate.all_terms();
        assert_eq!(terms.len(), 2);
        assert!(matches!(terms[0], Term::In { .. }));
        assert!(matches!(terms[1], Term::NotIn { .. }));
    }

    #[test]
    fn parse_qualified_names_and_floats() {
        let q =
            parse_sql("SELECT P.name FROM P WHERE P.logFC_Fe < 0.5 AND P.logFC_Fe > -0.5").unwrap();
        assert_eq!(q.projection, vec!["P.name"]);
        let terms = q.predicate.all_terms();
        assert_eq!(terms[0].constants()[0], &Value::Float(0.5));
        assert_eq!(terms[1].constants()[0], &Value::Float(-0.5));
    }

    #[test]
    fn parse_operators() {
        for (text, op) in [
            ("a = 1", ComparisonOp::Eq),
            ("a <> 1", ComparisonOp::Ne),
            ("a != 1", ComparisonOp::Ne),
            ("a < 1", ComparisonOp::Lt),
            ("a <= 1", ComparisonOp::Le),
            ("a > 1", ComparisonOp::Gt),
            ("a >= 1", ComparisonOp::Ge),
        ] {
            let q = parse_sql(&format!("SELECT x FROM T WHERE {text}")).unwrap();
            match q.predicate.all_terms()[0] {
                Term::Compare { op: parsed, .. } => assert_eq!(*parsed, op, "{text}"),
                other => panic!("unexpected term {other:?}"),
            }
        }
    }

    #[test]
    fn parse_string_escapes_and_round_trip() {
        let q = parse_sql("SELECT name FROM T WHERE name = 'O''Hara'").unwrap();
        assert_eq!(
            q.predicate.all_terms()[0].constants()[0],
            &Value::Text("O'Hara".into())
        );
        // Render and parse again.
        let q2 = parse_sql(&to_sql(&q)).unwrap();
        assert_eq!(q.predicate, q2.predicate);
    }

    #[test]
    fn round_trip_of_rendered_queries() {
        let original = parse_sql(
            "SELECT managerID, year, HR FROM Manager JOIN Team JOIN Batting \
             WHERE playerID = 'rosepe01' AND HR > 1 AND x2B <= 3",
        )
        .unwrap();
        let rendered = to_sql(&original);
        let reparsed = parse_sql(&rendered).unwrap();
        assert_eq!(original.tables, reparsed.tables);
        assert_eq!(original.projection, reparsed.projection);
        assert_eq!(original.predicate, reparsed.predicate);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(
            parse_sql("SELEC name FROM T").unwrap_err(),
            QueryError::Parse { .. }
        ));
        assert!(matches!(
            parse_sql("SELECT name FROM T WHERE").unwrap_err(),
            QueryError::Parse { .. }
        ));
        assert!(matches!(
            parse_sql("SELECT name FROM T WHERE a = 'unterminated").unwrap_err(),
            QueryError::Parse { .. }
        ));
        assert!(matches!(
            parse_sql("SELECT name FROM T WHERE a = 1 GROUP BY a").unwrap_err(),
            QueryError::Unsupported { .. }
        ));
        assert!(matches!(
            parse_sql("SELECT name FROM T WHERE a ~ 1").unwrap_err(),
            QueryError::Parse { .. }
        ));
        assert!(matches!(
            parse_sql("SELECT name FROM T WHERE a = 1 b").unwrap_err(),
            QueryError::Parse { .. }
        ));
    }

    #[test]
    fn parse_boolean_and_null_literals() {
        let q = parse_sql("SELECT x FROM T WHERE flag = TRUE OR flag = false").unwrap();
        let terms = q.predicate.all_terms();
        assert_eq!(terms[0].constants()[0], &Value::Bool(true));
        assert_eq!(terms[1].constants()[0], &Value::Bool(false));
        let q = parse_sql("SELECT x FROM T WHERE y = NULL").unwrap();
        assert_eq!(q.predicate.all_terms()[0].constants()[0], &Value::Null);
    }

    #[test]
    fn number_with_exponent() {
        let q = parse_sql("SELECT x FROM T WHERE p < 5e-2").unwrap();
        assert_eq!(
            q.predicate.all_terms()[0].constants()[0],
            &Value::Float(0.05)
        );
    }
}
