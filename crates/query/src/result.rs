//! Query results and their comparison.

use std::collections::BTreeMap;
use std::fmt;

use qfe_relation::{bag_equal_rows, min_edit_rows, Tuple, Value};

/// The result of evaluating a query: a header plus an ordered bag of rows.
///
/// Row order is an evaluation artifact (join order); all comparisons are
/// order-insensitive. Under bag semantics duplicates are significant, under
/// set semantics (`DISTINCT`) they are not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    columns: Vec<String>,
    rows: Vec<Tuple>,
}

impl QueryResult {
    /// Creates a result from a header and rows.
    pub fn new(columns: Vec<String>, rows: Vec<Tuple>) -> Self {
        QueryResult { columns, rows }
    }

    /// An empty result with the given header.
    pub fn empty(columns: Vec<String>) -> Self {
        QueryResult {
            columns,
            rows: Vec::new(),
        }
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Result rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of rows (result cardinality).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of columns (the result's arity — the insert/delete cost used by
    /// the paper's `minEdit` when comparing results).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Removes duplicate rows (set semantics). Keeps the first occurrence.
    pub fn deduplicated(&self) -> QueryResult {
        let mut seen = std::collections::HashSet::new();
        let rows = self
            .rows
            .iter()
            .filter(|r| seen.insert((*r).clone()))
            .cloned()
            .collect();
        QueryResult {
            columns: self.columns.clone(),
            rows,
        }
    }

    /// Bag (multiset) equality, ignoring row order and column names.
    pub fn bag_equal(&self, other: &QueryResult) -> bool {
        self.arity() == other.arity() && bag_equal_rows(&self.rows, &other.rows)
    }

    /// Set equality, ignoring row order, duplicates and column names.
    pub fn set_equal(&self, other: &QueryResult) -> bool {
        self.deduplicated().bag_equal(&other.deduplicated())
    }

    /// A canonical fingerprint of the result under bag semantics: the sorted
    /// multiset of rows. Two results have the same fingerprint iff they are
    /// bag-equal — QFE's partitioning of candidate queries groups by this.
    pub fn fingerprint(&self) -> Vec<Tuple> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }

    /// `minEdit(R, R')` between two results, per the paper's edit model
    /// (attribute modification = 1, row insert/delete = arity).
    pub fn min_edit(&self, other: &QueryResult) -> usize {
        if self.arity() != other.arity() {
            return self.len() * self.arity() + other.len() * other.arity();
        }
        min_edit_rows(&self.rows, &other.rows, self.arity())
    }

    /// Multiset view: row → multiplicity.
    pub fn row_multiset(&self) -> BTreeMap<Tuple, usize> {
        let mut m = BTreeMap::new();
        for r in &self.rows {
            *m.entry(r.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Rows present in `self` but not in `other` (multiset difference), and
    /// rows present in `other` but not in `self`. Used by the feedback module
    /// to present `Δ(R, R_i)`.
    pub fn symmetric_difference(&self, other: &QueryResult) -> (Vec<Tuple>, Vec<Tuple>) {
        let mut ours = self.row_multiset();
        let mut theirs = other.row_multiset();
        for (row, count) in ours.iter_mut() {
            if let Some(other_count) = theirs.get_mut(row) {
                let common = (*count).min(*other_count);
                *count -= common;
                *other_count -= common;
            }
        }
        let removed = ours
            .into_iter()
            .flat_map(|(row, c)| std::iter::repeat_n(row, c))
            .collect();
        let added = theirs
            .into_iter()
            .flat_map(|(row, c)| std::iter::repeat_n(row, c))
            .collect();
        (removed, added)
    }

    /// Sorts rows in place into canonical order (useful for display).
    pub fn sort_rows(&mut self) {
        self.rows.sort();
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "| {} |", self.columns.join(" | "))?;
        for r in &self.rows {
            let cells: Vec<String> = r.values().iter().map(Value::to_string).collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_relation::tuple;

    fn names(rows: &[&str]) -> QueryResult {
        QueryResult::new(
            vec!["name".to_string()],
            rows.iter().map(|n| tuple![*n]).collect(),
        )
    }

    #[test]
    fn bag_equality_is_order_insensitive() {
        let a = names(&["Bob", "Darren"]);
        let b = names(&["Darren", "Bob"]);
        assert!(a.bag_equal(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = names(&["Bob"]);
        assert!(!a.bag_equal(&c));
    }

    #[test]
    fn bag_vs_set_semantics() {
        let a = names(&["Bob", "Bob"]);
        let b = names(&["Bob"]);
        assert!(!a.bag_equal(&b));
        assert!(a.set_equal(&b));
        assert_eq!(a.deduplicated().len(), 1);
    }

    #[test]
    fn min_edit_between_results() {
        let a = names(&["Bob", "Darren"]);
        let b = names(&["Darren"]);
        // Removing one single-attribute row costs its arity (1).
        assert_eq!(a.min_edit(&b), 1);
        assert_eq!(a.min_edit(&a), 0);

        let wide = QueryResult::new(vec!["a".into(), "b".into()], vec![tuple![1i64, 2i64]]);
        // Arity mismatch: everything is replaced.
        assert_eq!(a.min_edit(&wide), 2 + 2);
    }

    #[test]
    fn symmetric_difference_reports_added_and_removed() {
        let a = names(&["Bob", "Darren", "Alice"]);
        let b = names(&["Darren", "Eve"]);
        let (removed, added) = a.symmetric_difference(&b);
        assert_eq!(removed.len(), 2); // Bob, Alice
        assert_eq!(added, vec![tuple!["Eve"]]);
        let (r2, a2) = a.symmetric_difference(&a);
        assert!(r2.is_empty() && a2.is_empty());
    }

    #[test]
    fn symmetric_difference_respects_multiplicity() {
        let a = names(&["Bob", "Bob"]);
        let b = names(&["Bob"]);
        let (removed, added) = a.symmetric_difference(&b);
        assert_eq!(removed, vec![tuple!["Bob"]]);
        assert!(added.is_empty());
    }

    #[test]
    fn accessors_and_display() {
        let mut r = names(&["Zed", "Amy"]);
        assert_eq!(r.arity(), 1);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.columns(), &["name".to_string()]);
        r.sort_rows();
        assert_eq!(r.rows()[0], tuple!["Amy"]);
        let s = r.to_string();
        assert!(s.contains("| name |"));
        assert!(s.contains("| Zed |"));
        assert!(QueryResult::empty(vec!["x".into()]).is_empty());
    }

    #[test]
    fn row_multiset_counts() {
        let r = names(&["Bob", "Bob", "Amy"]);
        let m = r.row_multiset();
        assert_eq!(m.get(&tuple!["Bob"]), Some(&2));
        assert_eq!(m.get(&tuple!["Amy"]), Some(&1));
    }
}
