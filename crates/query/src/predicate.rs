//! Selection predicates in disjunctive normal form.
//!
//! Section 4 of the paper: every candidate query is of the form
//! `π_ℓ(σ_p(J))` where the selection predicate `p` is in disjunctive normal
//! form, `p = p_1 ∨ … ∨ p_m`, each `p_i` a conjunction of *terms*, and a term
//! is a comparison between an attribute and a constant.

use std::collections::BTreeSet;
use std::fmt;

use qfe_relation::{sql_literal, Value};

/// Comparison operator of a predicate term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComparisonOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl ComparisonOp {
    /// Evaluates `left op right` under the total order on [`Value`].
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        match self {
            ComparisonOp::Eq => left == right,
            ComparisonOp::Ne => left != right,
            ComparisonOp::Lt => left < right,
            ComparisonOp::Le => left <= right,
            ComparisonOp::Gt => left > right,
            ComparisonOp::Ge => left >= right,
        }
    }

    /// The SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            ComparisonOp::Eq => "=",
            ComparisonOp::Ne => "<>",
            ComparisonOp::Lt => "<",
            ComparisonOp::Le => "<=",
            ComparisonOp::Gt => ">",
            ComparisonOp::Ge => ">=",
        }
    }

    /// The logically negated operator.
    pub fn negate(self) -> ComparisonOp {
        match self {
            ComparisonOp::Eq => ComparisonOp::Ne,
            ComparisonOp::Ne => ComparisonOp::Eq,
            ComparisonOp::Lt => ComparisonOp::Ge,
            ComparisonOp::Le => ComparisonOp::Gt,
            ComparisonOp::Gt => ComparisonOp::Le,
            ComparisonOp::Ge => ComparisonOp::Lt,
        }
    }
}

impl fmt::Display for ComparisonOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql())
    }
}

/// A single predicate term: a comparison between an attribute and a constant,
/// or membership of an attribute in a constant set (syntactic sugar for a
/// disjunction of equalities, kept as one term so that queries such as the
/// paper's `Q4` — `playerID ∈ {…}` — stay compact).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// `attribute op constant`
    Compare {
        /// Attribute reference (optionally `Table.column`-qualified).
        attribute: String,
        /// Comparison operator.
        op: ComparisonOp,
        /// Constant operand.
        value: Value,
    },
    /// `attribute IN (v1, …, vk)`
    In {
        /// Attribute reference.
        attribute: String,
        /// The allowed values (sorted, deduplicated).
        values: Vec<Value>,
    },
    /// `attribute NOT IN (v1, …, vk)`
    NotIn {
        /// Attribute reference.
        attribute: String,
        /// The excluded values (sorted, deduplicated).
        values: Vec<Value>,
    },
}

impl Term {
    /// Builds a comparison term.
    pub fn compare(
        attribute: impl Into<String>,
        op: ComparisonOp,
        value: impl Into<Value>,
    ) -> Self {
        Term::Compare {
            attribute: attribute.into(),
            op,
            value: value.into(),
        }
    }

    /// Builds an equality term.
    pub fn eq(attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        Term::compare(attribute, ComparisonOp::Eq, value)
    }

    /// Builds an `IN` term.
    pub fn is_in(attribute: impl Into<String>, values: Vec<Value>) -> Self {
        let mut values = values;
        values.sort();
        values.dedup();
        Term::In {
            attribute: attribute.into(),
            values,
        }
    }

    /// Builds a `NOT IN` term.
    pub fn not_in(attribute: impl Into<String>, values: Vec<Value>) -> Self {
        let mut values = values;
        values.sort();
        values.dedup();
        Term::NotIn {
            attribute: attribute.into(),
            values,
        }
    }

    /// The attribute referenced by the term.
    pub fn attribute(&self) -> &str {
        match self {
            Term::Compare { attribute, .. }
            | Term::In { attribute, .. }
            | Term::NotIn { attribute, .. } => attribute,
        }
    }

    /// The constant(s) appearing in the term.
    pub fn constants(&self) -> Vec<&Value> {
        match self {
            Term::Compare { value, .. } => vec![value],
            Term::In { values, .. } | Term::NotIn { values, .. } => values.iter().collect(),
        }
    }

    /// Evaluates the term against the attribute's value.
    pub fn eval(&self, attr_value: &Value) -> bool {
        match self {
            Term::Compare { op, value, .. } => {
                // SQL semantics: comparisons against NULL are not satisfied.
                if attr_value.is_null() || value.is_null() {
                    return false;
                }
                op.eval(attr_value, value)
            }
            Term::In { values, .. } => !attr_value.is_null() && values.contains(attr_value),
            Term::NotIn { values, .. } => !attr_value.is_null() && !values.contains(attr_value),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Compare {
                attribute,
                op,
                value,
            } => write!(f, "{attribute} {op} {}", sql_literal(value)),
            Term::In { attribute, values } => {
                write!(f, "{attribute} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", sql_literal(v))?;
                }
                write!(f, ")")
            }
            Term::NotIn { attribute, values } => {
                write!(f, "{attribute} NOT IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", sql_literal(v))?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A conjunction of terms (one disjunct of a DNF predicate).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Conjunct {
    terms: Vec<Term>,
}

impl Conjunct {
    /// Creates a conjunction from its terms. An empty conjunction is TRUE.
    pub fn new(terms: Vec<Term>) -> Self {
        Conjunct { terms }
    }

    /// The terms of the conjunction.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True for the empty (always-true) conjunction.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the conjunction; `lookup` maps attribute names to values.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Value) -> bool {
        self.terms.iter().all(|t| t.eval(&lookup(t.attribute())))
    }

    /// Adds a term, returning the extended conjunction.
    pub fn and(mut self, term: Term) -> Self {
        self.terms.push(term);
        self
    }
}

impl fmt::Display for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// A selection predicate in disjunctive normal form: `c_1 ∨ … ∨ c_m`.
///
/// The empty disjunction is treated as TRUE (no selection), matching a query
/// without a WHERE clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DnfPredicate {
    conjuncts: Vec<Conjunct>,
}

impl DnfPredicate {
    /// The always-true predicate (no WHERE clause).
    pub fn always_true() -> Self {
        DnfPredicate::default()
    }

    /// Creates a predicate from its disjuncts.
    pub fn new(conjuncts: Vec<Conjunct>) -> Self {
        DnfPredicate { conjuncts }
    }

    /// Creates a predicate with a single conjunction of `terms`.
    pub fn conjunction(terms: Vec<Term>) -> Self {
        DnfPredicate {
            conjuncts: vec![Conjunct::new(terms)],
        }
    }

    /// Creates a predicate with a single term.
    pub fn single(term: Term) -> Self {
        DnfPredicate::conjunction(vec![term])
    }

    /// The disjuncts of the predicate.
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// True for the always-true predicate.
    pub fn is_always_true(&self) -> bool {
        self.conjuncts.is_empty() || self.conjuncts.iter().any(Conjunct::is_empty)
    }

    /// Adds a disjunct, returning the extended predicate.
    pub fn or(mut self, conjunct: Conjunct) -> Self {
        self.conjuncts.push(conjunct);
        self
    }

    /// Evaluates the predicate; `lookup` maps attribute names to values.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Value) -> bool {
        if self.conjuncts.is_empty() {
            return true;
        }
        self.conjuncts.iter().any(|c| c.eval(lookup))
    }

    /// All attributes referenced by the predicate (sorted, deduplicated).
    /// These are the "selection-predicate attributes" whose domains the
    /// tuple-class machinery partitions.
    pub fn attributes(&self) -> Vec<String> {
        let set: BTreeSet<String> = self
            .conjuncts
            .iter()
            .flat_map(|c| c.terms().iter().map(|t| t.attribute().to_string()))
            .collect();
        set.into_iter().collect()
    }

    /// All terms of the predicate, across disjuncts.
    pub fn all_terms(&self) -> Vec<&Term> {
        self.conjuncts
            .iter()
            .flat_map(|c| c.terms().iter())
            .collect()
    }

    /// All terms that reference `attribute`.
    pub fn terms_on(&self, attribute: &str) -> Vec<&Term> {
        self.all_terms()
            .into_iter()
            .filter(|t| t.attribute() == attribute)
            .collect()
    }

    /// Total number of terms (a simple complexity measure).
    pub fn term_count(&self) -> usize {
        self.conjuncts.iter().map(Conjunct::len).sum()
    }
}

impl fmt::Display for DnfPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_always_true() {
            return write!(f, "TRUE");
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " OR ")?;
            }
            if self.conjuncts.len() > 1 && c.len() > 1 {
                write!(f, "({c})")?;
            } else {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup_for(pairs: Vec<(&'static str, Value)>) -> impl Fn(&str) -> Value {
        move |name: &str| {
            pairs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Null)
        }
    }

    #[test]
    fn comparison_op_eval_and_negate() {
        assert!(ComparisonOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(ComparisonOp::Ge.eval(&Value::Int(2), &Value::Int(2)));
        assert!(ComparisonOp::Ne.eval(&Value::Text("a".into()), &Value::Text("b".into())));
        for op in [
            ComparisonOp::Eq,
            ComparisonOp::Ne,
            ComparisonOp::Lt,
            ComparisonOp::Le,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
            // negation flips the truth value on non-equal operands
            let (a, b) = (Value::Int(1), Value::Int(2));
            assert_ne!(op.eval(&a, &b), op.negate().eval(&a, &b));
        }
    }

    #[test]
    fn term_eval_comparisons() {
        let t = Term::compare("salary", ComparisonOp::Gt, 4000i64);
        assert!(t.eval(&Value::Int(5000)));
        assert!(!t.eval(&Value::Int(3000)));
        assert!(!t.eval(&Value::Null));
        let t = Term::eq("gender", "M");
        assert!(t.eval(&Value::Text("M".into())));
        assert!(!t.eval(&Value::Text("F".into())));
    }

    #[test]
    fn term_eval_in_and_not_in() {
        let t = Term::is_in("playerID", vec!["a".into(), "b".into(), "a".into()]);
        assert!(t.eval(&Value::Text("a".into())));
        assert!(!t.eval(&Value::Text("c".into())));
        assert!(!t.eval(&Value::Null));
        if let Term::In { values, .. } = &t {
            assert_eq!(values.len(), 2, "IN list deduplicated");
        }
        let t = Term::not_in("playerID", vec!["a".into()]);
        assert!(!t.eval(&Value::Text("a".into())));
        assert!(t.eval(&Value::Text("z".into())));
    }

    #[test]
    fn term_accessors() {
        let t = Term::compare("x", ComparisonOp::Le, 5i64);
        assert_eq!(t.attribute(), "x");
        assert_eq!(t.constants(), vec![&Value::Int(5)]);
        let t = Term::is_in("y", vec![1i64.into(), 2i64.into()]);
        assert_eq!(t.constants().len(), 2);
    }

    #[test]
    fn conjunct_eval_all_terms_must_hold() {
        let c = Conjunct::new(vec![
            Term::eq("gender", "M"),
            Term::compare("salary", ComparisonOp::Gt, 4000i64),
        ]);
        let lk = lookup_for(vec![
            ("gender", Value::Text("M".into())),
            ("salary", Value::Int(5000)),
        ]);
        assert!(c.eval(&lk));
        let lk = lookup_for(vec![
            ("gender", Value::Text("M".into())),
            ("salary", Value::Int(3000)),
        ]);
        assert!(!c.eval(&lk));
        assert!(Conjunct::default().eval(&lk), "empty conjunction is TRUE");
    }

    #[test]
    fn dnf_eval_any_disjunct_suffices() {
        // gender = 'M' OR salary > 4000 (queries Q1/Q2/Q3 of Example 1.1 are
        // single-conjunct instances of this structure)
        let p = DnfPredicate::new(vec![
            Conjunct::new(vec![Term::eq("gender", "M")]),
            Conjunct::new(vec![Term::compare("salary", ComparisonOp::Gt, 4000i64)]),
        ]);
        let lk = lookup_for(vec![
            ("gender", Value::Text("F".into())),
            ("salary", Value::Int(4100)),
        ]);
        assert!(p.eval(&lk));
        let lk = lookup_for(vec![
            ("gender", Value::Text("F".into())),
            ("salary", Value::Int(100)),
        ]);
        assert!(!p.eval(&lk));
    }

    #[test]
    fn always_true_predicate() {
        let p = DnfPredicate::always_true();
        assert!(p.is_always_true());
        assert!(p.eval(&lookup_for(vec![])));
        assert_eq!(p.to_string(), "TRUE");
        // a predicate with an empty conjunct is also always true
        let p = DnfPredicate::new(vec![Conjunct::default()]);
        assert!(p.is_always_true());
    }

    #[test]
    fn attribute_collection_is_sorted_and_deduplicated() {
        let p = DnfPredicate::new(vec![
            Conjunct::new(vec![
                Term::compare("b", ComparisonOp::Gt, 1i64),
                Term::compare("a", ComparisonOp::Lt, 2i64),
            ]),
            Conjunct::new(vec![Term::eq("a", 3i64)]),
        ]);
        assert_eq!(p.attributes(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(p.term_count(), 3);
        assert_eq!(p.terms_on("a").len(), 2);
        assert_eq!(p.all_terms().len(), 3);
    }

    #[test]
    fn display_round_trip_shapes() {
        let p = DnfPredicate::new(vec![
            Conjunct::new(vec![
                Term::eq("dept", "IT"),
                Term::compare("salary", ComparisonOp::Gt, 4000i64),
            ]),
            Conjunct::new(vec![Term::eq("gender", "F")]),
        ]);
        let s = p.to_string();
        assert!(s.contains("(dept = 'IT' AND salary > 4000)"));
        assert!(s.contains(" OR gender = 'F'"));
        let t = Term::is_in("id", vec!["x".into(), "y".into()]);
        assert_eq!(t.to_string(), "id IN ('x', 'y')");
        let t = Term::not_in("id", vec![Value::Int(3)]);
        assert_eq!(t.to_string(), "id NOT IN (3)");
    }

    #[test]
    fn builder_helpers() {
        let p = DnfPredicate::single(Term::eq("a", 1i64)).or(Conjunct::default()
            .and(Term::eq("b", 2i64))
            .and(Term::eq("c", 3i64)));
        assert_eq!(p.conjuncts().len(), 2);
        assert_eq!(p.conjuncts()[1].len(), 2);
    }
}
