//! Error type for query construction, parsing and evaluation.

use std::fmt;

use qfe_relation::RelationError;

/// Errors raised while building, parsing or evaluating queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum QueryError {
    /// The underlying relational operation failed (unknown table/column,
    /// disconnected join, …).
    Relation(RelationError),
    /// A column reference could not be resolved against the query's join.
    UnknownColumn { column: String },
    /// A query referenced no tables.
    NoTables,
    /// SQL text could not be parsed.
    Parse { message: String, position: usize },
    /// The SQL statement is outside the supported SPJ fragment.
    Unsupported { feature: String },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Relation(e) => write!(f, "{e}"),
            QueryError::UnknownColumn { column } => {
                write!(f, "unknown column '{column}' in query")
            }
            QueryError::NoTables => write!(f, "query must reference at least one table"),
            QueryError::Parse { message, position } => {
                write!(f, "SQL parse error at offset {position}: {message}")
            }
            QueryError::Unsupported { feature } => {
                write!(f, "unsupported SQL feature: {feature}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for QueryError {
    fn from(e: RelationError) -> Self {
        QueryError::Relation(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = QueryError::UnknownColumn { column: "x".into() };
        assert!(e.to_string().contains("unknown column 'x'"));
        let e = QueryError::from(RelationError::UnknownTable { table: "T".into() });
        assert!(e.to_string().contains("unknown table"));
        use std::error::Error;
        assert!(e.source().is_some());
        let e = QueryError::Parse {
            message: "bad token".into(),
            position: 7,
        };
        assert!(e.to_string().contains("offset 7"));
        assert!(QueryError::NoTables
            .to_string()
            .contains("at least one table"));
        assert!(QueryError::Unsupported {
            feature: "GROUP BY".into()
        }
        .to_string()
        .contains("GROUP BY"));
    }
}
