//! Select-project-join queries.

use std::fmt;

use crate::predicate::DnfPredicate;

/// A select-project-join query `π_ℓ(σ_p(J))` over the foreign-key join `J`
/// of a set of base tables (Section 4 of the paper).
///
/// * `tables` — the relations participating in the foreign-key join `J`;
/// * `projection` — the projection list `ℓ` (column references, optionally
///   `Table.column`-qualified);
/// * `predicate` — the selection predicate `p` in disjunctive normal form;
/// * `distinct` — `false` for bag semantics (the paper's default assumption),
///   `true` for set semantics (Section 6.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpjQuery {
    /// Optional human-readable label (e.g. "Q1"); not part of query identity
    /// for evaluation purposes but carried along for reports.
    pub label: Option<String>,
    /// Relations joined by the query (join order is irrelevant; the join is
    /// along declared foreign keys).
    pub tables: Vec<String>,
    /// Projection list.
    pub projection: Vec<String>,
    /// Selection predicate in DNF.
    pub predicate: DnfPredicate,
    /// Set semantics (`SELECT DISTINCT`) when true.
    pub distinct: bool,
}

impl SpjQuery {
    /// Creates a query with bag semantics and no label.
    pub fn new(
        tables: Vec<impl Into<String>>,
        projection: Vec<impl Into<String>>,
        predicate: DnfPredicate,
    ) -> Self {
        SpjQuery {
            label: None,
            tables: tables.into_iter().map(Into::into).collect(),
            projection: projection.into_iter().map(Into::into).collect(),
            predicate,
            distinct: false,
        }
    }

    /// Sets the human-readable label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Switches the query to set semantics (`SELECT DISTINCT`).
    pub fn with_distinct(mut self, distinct: bool) -> Self {
        self.distinct = distinct;
        self
    }

    /// The query's label, or a rendering of the query when unlabeled.
    pub fn display_name(&self) -> String {
        self.label.clone().unwrap_or_else(|| self.to_string())
    }

    /// Structural equality ignoring the bookkeeping label: same tables,
    /// projection, predicate and semantics. Unlike comparing rendered SQL
    /// text, this cannot be fooled by formatting differences, and unlike
    /// `==` it does not distinguish a labeled copy from an unlabeled one.
    pub fn same_query(&self, other: &SpjQuery) -> bool {
        self.tables == other.tables
            && self.projection == other.projection
            && self.predicate == other.predicate
            && self.distinct == other.distinct
    }

    /// The query's *join signature*: its table set in canonical (sorted)
    /// order. Two queries with the same signature share the same join schema
    /// (the Section 5 assumption; Section 6.2 groups queries by this).
    pub fn join_signature(&self) -> Vec<String> {
        let mut t = self.tables.clone();
        t.sort();
        t.dedup();
        t
    }

    /// The attributes appearing in the selection predicate.
    pub fn selection_attributes(&self) -> Vec<String> {
        self.predicate.attributes()
    }

    /// A simple structural complexity measure: number of joined tables plus
    /// number of predicate terms (used to order candidate queries
    /// deterministically in reports and tests).
    pub fn complexity(&self) -> usize {
        self.tables.len() + self.predicate.term_count()
    }
}

impl fmt::Display for SpjQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SELECT {}{} FROM {}",
            if self.distinct { "DISTINCT " } else { "" },
            if self.projection.is_empty() {
                "*".to_string()
            } else {
                self.projection.join(", ")
            },
            self.tables.join(" JOIN ")
        )?;
        if !self.predicate.is_always_true() {
            write!(f, " WHERE {}", self.predicate)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ComparisonOp, Term};

    fn q() -> SpjQuery {
        SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::single(Term::compare("salary", ComparisonOp::Gt, 4000i64)),
        )
    }

    #[test]
    fn construction_and_accessors() {
        let query = q().with_label("Q2");
        assert_eq!(query.tables, vec!["Employee"]);
        assert_eq!(query.projection, vec!["name"]);
        assert!(!query.distinct);
        assert_eq!(query.display_name(), "Q2");
        assert_eq!(query.selection_attributes(), vec!["salary".to_string()]);
        assert_eq!(query.complexity(), 2);
    }

    #[test]
    fn join_signature_is_sorted_and_deduplicated() {
        let query = SpjQuery::new(
            vec!["Team", "Manager", "Batting", "Team"],
            vec!["managerID"],
            DnfPredicate::always_true(),
        );
        assert_eq!(
            query.join_signature(),
            vec![
                "Batting".to_string(),
                "Manager".to_string(),
                "Team".to_string()
            ]
        );
    }

    #[test]
    fn display_renders_sql_shape() {
        let s = q().to_string();
        assert_eq!(s, "SELECT name FROM Employee WHERE salary > 4000");
        let s = q().with_distinct(true).to_string();
        assert!(s.starts_with("SELECT DISTINCT name"));
        let no_proj = SpjQuery::new(vec!["T"], Vec::<String>::new(), DnfPredicate::always_true());
        assert_eq!(no_proj.to_string(), "SELECT * FROM T");
        assert_eq!(no_proj.display_name(), "SELECT * FROM T");
    }

    #[test]
    fn equality_ignores_nothing_but_label_distinguishes() {
        let a = q();
        let b = q().with_label("Q");
        assert_ne!(a, b); // labels participate in Eq (useful for bookkeeping)
        assert_eq!(a, q());
    }
}
