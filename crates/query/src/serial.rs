//! Wire-format (`qfe-wire` JSON) implementations for the query types.

use qfe_wire::{FromJson, Json, ToJson, WireError, WireResult};

use crate::predicate::{ComparisonOp, Conjunct, DnfPredicate, Term};
use crate::result::QueryResult;
use crate::spj::SpjQuery;
use qfe_relation::{Tuple, Value};

impl ToJson for ComparisonOp {
    fn to_json(&self) -> Json {
        Json::Str(self.sql().to_string())
    }
}

impl FromJson for ComparisonOp {
    fn from_json(json: &Json) -> WireResult<Self> {
        match json.as_str()? {
            "=" => Ok(ComparisonOp::Eq),
            "<>" => Ok(ComparisonOp::Ne),
            "<" => Ok(ComparisonOp::Lt),
            "<=" => Ok(ComparisonOp::Le),
            ">" => Ok(ComparisonOp::Gt),
            ">=" => Ok(ComparisonOp::Ge),
            other => Err(WireError::new(format!("unknown comparison op `{other}`"))),
        }
    }
}

impl ToJson for Term {
    fn to_json(&self) -> Json {
        match self {
            Term::Compare {
                attribute,
                op,
                value,
            } => Json::object([
                ("kind", Json::from("compare")),
                ("attribute", Json::Str(attribute.clone())),
                ("op", op.to_json()),
                ("value", value.to_json()),
            ]),
            Term::In { attribute, values } => Json::object([
                ("kind", Json::from("in")),
                ("attribute", Json::Str(attribute.clone())),
                ("values", values.to_json()),
            ]),
            Term::NotIn { attribute, values } => Json::object([
                ("kind", Json::from("not_in")),
                ("attribute", Json::Str(attribute.clone())),
                ("values", values.to_json()),
            ]),
        }
    }
}

impl FromJson for Term {
    fn from_json(json: &Json) -> WireResult<Self> {
        let attribute = String::from_json(json.field("attribute")?)?;
        match json.field("kind")?.as_str()? {
            "compare" => Ok(Term::Compare {
                attribute,
                op: ComparisonOp::from_json(json.field("op")?)?,
                value: Value::from_json(json.field("value")?)?,
            }),
            // Reconstruct through the constructors so the values stay sorted
            // and deduplicated, as the Term invariants require.
            "in" => Ok(Term::is_in(
                attribute,
                Vec::<Value>::from_json(json.field("values")?)?,
            )),
            "not_in" => Ok(Term::not_in(
                attribute,
                Vec::<Value>::from_json(json.field("values")?)?,
            )),
            other => Err(WireError::new(format!("unknown term kind `{other}`"))),
        }
    }
}

impl ToJson for Conjunct {
    fn to_json(&self) -> Json {
        Json::array(self.terms())
    }
}

impl FromJson for Conjunct {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(Conjunct::new(Vec::<Term>::from_json(json)?))
    }
}

impl ToJson for DnfPredicate {
    fn to_json(&self) -> Json {
        Json::array(self.conjuncts())
    }
}

impl FromJson for DnfPredicate {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(DnfPredicate::new(Vec::<Conjunct>::from_json(json)?))
    }
}

impl ToJson for SpjQuery {
    fn to_json(&self) -> Json {
        Json::object([
            ("label", self.label.to_json()),
            ("tables", self.tables.to_json()),
            ("projection", self.projection.to_json()),
            ("predicate", self.predicate.to_json()),
            ("distinct", Json::Bool(self.distinct)),
        ])
    }
}

impl FromJson for SpjQuery {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(SpjQuery {
            label: Option::<String>::from_json(json.field("label")?)?,
            tables: Vec::from_json(json.field("tables")?)?,
            projection: Vec::from_json(json.field("projection")?)?,
            predicate: DnfPredicate::from_json(json.field("predicate")?)?,
            distinct: json.field("distinct")?.as_bool()?,
        })
    }
}

impl ToJson for QueryResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("columns", self.columns().to_vec().to_json()),
            ("rows", Json::array(self.rows())),
        ])
    }
}

impl FromJson for QueryResult {
    fn from_json(json: &Json) -> WireResult<Self> {
        let columns = Vec::<String>::from_json(json.field("columns")?)?;
        let rows = Vec::<Tuple>::from_json(json.field("rows")?)?;
        let arity = columns.len();
        if let Some(bad) = rows.iter().find(|r| r.arity() != arity) {
            return Err(WireError::new(format!(
                "result row arity {} does not match the {arity}-column header",
                bad.arity()
            )));
        }
        Ok(QueryResult::new(columns, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_relation::tuple;

    fn roundtrip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: &T) {
        let text = v.to_json_string();
        let back = T::from_json_str(&text).unwrap();
        assert_eq!(&back, v, "roundtrip through {text}");
    }

    #[test]
    fn predicates_roundtrip() {
        for op in [
            ComparisonOp::Eq,
            ComparisonOp::Ne,
            ComparisonOp::Lt,
            ComparisonOp::Le,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
        ] {
            roundtrip(&op);
        }
        roundtrip(&Term::compare("salary", ComparisonOp::Gt, 4000i64));
        roundtrip(&Term::is_in(
            "dept",
            vec![Value::from("IT"), Value::from("Sales")],
        ));
        roundtrip(&Term::not_in("dept", vec![Value::from("HR")]));
        roundtrip(&DnfPredicate::new(vec![
            Conjunct::new(vec![
                Term::eq("gender", "M"),
                Term::compare("salary", ComparisonOp::Le, 5000i64),
            ]),
            Conjunct::new(vec![Term::eq("dept", "IT")]),
        ]));
        roundtrip(&DnfPredicate::always_true());
        assert!(Term::from_json_str(r#"{"kind":"like","attribute":"a"}"#).is_err());
        assert!(ComparisonOp::from_json_str("\"!=\"").is_err());
    }

    #[test]
    fn queries_roundtrip() {
        let q = SpjQuery::new(
            vec!["Employee", "Dept"],
            vec!["Employee.name"],
            DnfPredicate::single(Term::compare("salary", ComparisonOp::Gt, 4000i64)),
        )
        .with_label("Q2")
        .with_distinct(true);
        roundtrip(&q);
        let unlabeled = SpjQuery::new(vec!["T"], Vec::<String>::new(), DnfPredicate::always_true());
        roundtrip(&unlabeled);
        // SQL text of a reconstructed query is identical.
        let back = SpjQuery::from_json_str(&q.to_json_string()).unwrap();
        assert_eq!(back.to_string(), q.to_string());
    }

    #[test]
    fn results_roundtrip_and_validate_arity() {
        let r = QueryResult::new(
            vec!["name".to_string(), "salary".to_string()],
            vec![tuple!["Bob", 4200i64], tuple!["Darren", 5000i64]],
        );
        roundtrip(&r);
        roundtrip(&QueryResult::empty(vec!["x".to_string()]));
        let bad = r#"{"columns":["a","b"],"rows":[["only-one"]]}"#;
        assert!(QueryResult::from_json_str(bad).is_err());
    }

    #[test]
    fn in_terms_renormalize_on_load() {
        // Hand-written snapshot with unsorted, duplicated IN values still
        // reconstructs the canonical term.
        let text = r#"{"kind":"in","attribute":"dept","values":["Sales","IT","Sales"]}"#;
        let term = Term::from_json_str(text).unwrap();
        assert_eq!(
            term,
            Term::is_in("dept", vec![Value::from("IT"), Value::from("Sales")])
        );
    }
}
