//! Query evaluation against databases and precomputed joins.

use qfe_relation::{foreign_key_join, Bitmap, ColumnarJoin, Database, JoinedRelation, Value};

use crate::error::{QueryError, Result};
use crate::predicate::DnfPredicate;
use crate::result::QueryResult;
use crate::spj::SpjQuery;
use crate::vectorized::TermBitmapCache;

/// A query whose column references have been resolved against a specific
/// joined relation.
///
/// QFE evaluates *many* candidate queries against the *same* join (all
/// candidates in a group share a join schema), so resolution — mapping
/// attribute names to column positions — is done once per query and reused
/// for every row and every modified database that preserves the join's shape.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    projection_idx: Vec<usize>,
    projection_names: Vec<String>,
    /// (attribute name, resolved column index) for every predicate attribute.
    attribute_idx: Vec<(String, usize)>,
    predicate: DnfPredicate,
    distinct: bool,
}

impl BoundQuery {
    /// Resolves `query` against `join`.
    pub fn bind(query: &SpjQuery, join: &JoinedRelation) -> Result<Self> {
        let mut projection_idx = Vec::with_capacity(query.projection.len());
        for col in &query.projection {
            let idx = join
                .resolve_column(col)
                .map_err(|_| QueryError::UnknownColumn {
                    column: col.clone(),
                })?;
            projection_idx.push(idx);
        }
        let mut attribute_idx = Vec::new();
        for attr in query.selection_attributes() {
            let idx = join
                .resolve_column(&attr)
                .map_err(|_| QueryError::UnknownColumn {
                    column: attr.clone(),
                })?;
            attribute_idx.push((attr, idx));
        }
        Ok(BoundQuery {
            projection_idx,
            projection_names: query.projection.clone(),
            attribute_idx,
            predicate: query.predicate.clone(),
            distinct: query.distinct,
        })
    }

    /// Positions of the projected columns in the join.
    pub fn projection_indices(&self) -> &[usize] {
        &self.projection_idx
    }

    /// Resolved predicate attributes as `(name, join column index)` pairs.
    pub fn attribute_indices(&self) -> &[(String, usize)] {
        &self.attribute_idx
    }

    /// Whether the predicate holds for a single joined row.
    pub fn matches_row(&self, row: &qfe_relation::Tuple) -> bool {
        let lookup = |name: &str| -> Value {
            self.attribute_idx
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, idx)| row.get(*idx).cloned())
                .unwrap_or(Value::Null)
        };
        self.predicate.eval(&lookup)
    }

    /// Evaluates the bound query over the given join.
    pub fn evaluate(&self, join: &JoinedRelation) -> QueryResult {
        let mut rows = Vec::new();
        for jr in join.rows() {
            if self.matches_row(&jr.tuple) {
                rows.push(jr.tuple.project(&self.projection_idx));
            }
        }
        let result = QueryResult::new(self.projection_names.clone(), rows);
        if self.distinct {
            result.deduplicated()
        } else {
            result
        }
    }

    /// Indices of the joined rows satisfying the predicate.
    pub fn matching_rows(&self, join: &JoinedRelation) -> Vec<usize> {
        join.rows()
            .iter()
            .enumerate()
            .filter(|(_, jr)| self.matches_row(&jr.tuple))
            .map(|(i, _)| i)
            .collect()
    }

    /// The query's selection bitmap over a columnar join: bit `r` is set iff
    /// the predicate holds for row `r` (exactly [`Self::matches_row`], but
    /// assembled by AND/OR over cached per-term bitmaps).
    pub fn selection_bitmap(&self, columnar: &ColumnarJoin, cache: &mut TermBitmapCache) -> Bitmap {
        let rows = columnar.len();
        let conjuncts = self.predicate.conjuncts();
        if conjuncts.is_empty() {
            return Bitmap::all_set(rows);
        }
        let mut acc = Bitmap::new(rows);
        for conjunct in conjuncts {
            let mut selected = Bitmap::all_set(rows);
            for term in conjunct.terms() {
                match self
                    .attribute_idx
                    .iter()
                    .find(|(n, _)| n == term.attribute())
                {
                    Some((_, col)) => {
                        selected.and_assign(cache.term_bitmap(columnar, *col, term));
                    }
                    // Unresolvable attribute ⇒ NULL lookup ⇒ the term fails.
                    None => selected = Bitmap::new(rows),
                }
                if selected.is_zero() {
                    break;
                }
            }
            acc.or_assign(&selected);
        }
        acc
    }

    /// Evaluates the bound query through the vectorized columnar path.
    ///
    /// `columnar` must mirror `join` (same rows in the same order); the
    /// result is identical to [`Self::evaluate`].
    pub fn evaluate_columnar(
        &self,
        join: &JoinedRelation,
        columnar: &ColumnarJoin,
        cache: &mut TermBitmapCache,
    ) -> QueryResult {
        let bitmap = self.selection_bitmap(columnar, cache);
        self.materialize_selection(join, &bitmap)
    }

    /// Materializes the query's result from a precomputed selection bitmap
    /// over `join` (projection + `DISTINCT` dedup) — the shared tail of
    /// [`Self::evaluate_columnar`] and batched verification in `qfe-qbo`.
    pub fn materialize_selection(&self, join: &JoinedRelation, bitmap: &Bitmap) -> QueryResult {
        let rows = bitmap
            .iter_ones()
            .map(|r| join.rows()[r].tuple.project(&self.projection_idx))
            .collect();
        let result = QueryResult::new(self.projection_names.clone(), rows);
        if self.distinct {
            result.deduplicated()
        } else {
            result
        }
    }

    /// Whether the query uses set semantics (`SELECT DISTINCT`).
    pub fn is_distinct(&self) -> bool {
        self.distinct
    }
}

/// Evaluates a query against a precomputed joined relation.
///
/// The join must contain (at least) the columns the query references; QFE
/// uses the foreign-key join of the candidate queries' shared join schema.
pub fn evaluate_on_join(query: &SpjQuery, join: &JoinedRelation) -> Result<QueryResult> {
    Ok(BoundQuery::bind(query, join)?.evaluate(join))
}

/// [`evaluate_on_join`] through the vectorized columnar path: the selection
/// runs as bitmap algebra over `cache`'s per-term bitmaps instead of touching
/// rows. `columnar` must mirror `join`; results are identical to the row
/// evaluator's.
pub fn evaluate_on_join_columnar(
    query: &SpjQuery,
    join: &JoinedRelation,
    columnar: &ColumnarJoin,
    cache: &mut TermBitmapCache,
) -> Result<QueryResult> {
    Ok(BoundQuery::bind(query, join)?.evaluate_columnar(join, columnar, cache))
}

/// Evaluates a query against a database by first computing the foreign-key
/// join of the query's tables.
pub fn evaluate(query: &SpjQuery, db: &Database) -> Result<QueryResult> {
    if query.tables.is_empty() {
        return Err(QueryError::NoTables);
    }
    let join = foreign_key_join(db, &query.tables)?;
    evaluate_on_join(query, &join)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, ForeignKey, Table, TableSchema};

    /// The Employee database of the paper's Example 1.1.
    fn employee_db() -> Database {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        db
    }

    fn q(pred: DnfPredicate) -> SpjQuery {
        SpjQuery::new(vec!["Employee"], vec!["name"], pred)
    }

    #[test]
    fn example_1_1_candidates_agree_on_original_database() {
        let db = employee_db();
        let q1 = q(DnfPredicate::single(Term::eq("gender", "M")));
        let q2 = q(DnfPredicate::single(Term::compare(
            "salary",
            ComparisonOp::Gt,
            4000i64,
        )));
        let q3 = q(DnfPredicate::single(Term::eq("dept", "IT")));
        let r1 = evaluate(&q1, &db).unwrap();
        let r2 = evaluate(&q2, &db).unwrap();
        let r3 = evaluate(&q3, &db).unwrap();
        assert!(r1.bag_equal(&r2));
        assert!(r2.bag_equal(&r3));
        assert_eq!(r1.len(), 2);
        let mut names: Vec<String> = r1
            .rows()
            .iter()
            .map(|t| t.get(0).unwrap().as_str().unwrap().to_string())
            .collect();
        names.sort();
        assert_eq!(names, vec!["Bob", "Darren"]);
    }

    #[test]
    fn example_1_1_modified_database_d1_distinguishes_q2() {
        // D1: Bob's salary lowered from 4200 to 3900.
        let mut db = employee_db();
        db.table_mut("Employee")
            .unwrap()
            .update_cell(1, "salary", Value::Int(3900))
            .unwrap();
        let q1 = q(DnfPredicate::single(Term::eq("gender", "M")));
        let q2 = q(DnfPredicate::single(Term::compare(
            "salary",
            ComparisonOp::Gt,
            4000i64,
        )));
        let q3 = q(DnfPredicate::single(Term::eq("dept", "IT")));
        let r1 = evaluate(&q1, &db).unwrap();
        let r2 = evaluate(&q2, &db).unwrap();
        let r3 = evaluate(&q3, &db).unwrap();
        assert!(r1.bag_equal(&r3), "Q1 and Q3 still agree on D1");
        assert!(!r1.bag_equal(&r2), "Q2 is distinguished on D1");
        assert_eq!(r2.len(), 1, "only Darren earns more than 4000 in D1");
    }

    #[test]
    fn distinct_deduplicates() {
        let db = employee_db();
        let dup = SpjQuery::new(
            vec!["Employee"],
            vec!["gender"],
            DnfPredicate::always_true(),
        );
        let bag = evaluate(&dup, &db).unwrap();
        assert_eq!(bag.len(), 4);
        let set = evaluate(&dup.clone().with_distinct(true), &db).unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn unknown_column_reported() {
        let db = employee_db();
        let bad = SpjQuery::new(vec!["Employee"], vec!["wage"], DnfPredicate::always_true());
        assert!(matches!(
            evaluate(&bad, &db).unwrap_err(),
            QueryError::UnknownColumn { .. }
        ));
        let bad = q(DnfPredicate::single(Term::eq("wage", 1i64)));
        assert!(matches!(
            evaluate(&bad, &db).unwrap_err(),
            QueryError::UnknownColumn { .. }
        ));
    }

    #[test]
    fn no_tables_is_an_error() {
        let db = employee_db();
        let bad = SpjQuery::new(Vec::<String>::new(), vec!["x"], DnfPredicate::always_true());
        assert!(matches!(
            evaluate(&bad, &db).unwrap_err(),
            QueryError::NoTables
        ));
    }

    #[test]
    fn evaluation_over_foreign_key_join() {
        // Two-table database: Dept(did, dname), Emp(eid, did, salary).
        let dept = Table::with_rows(
            TableSchema::new(
                "Dept",
                vec![
                    ColumnDef::new("did", DataType::Int),
                    ColumnDef::new("dname", DataType::Text),
                ],
            )
            .unwrap()
            .with_primary_key(&["did"])
            .unwrap(),
            vec![tuple![1i64, "IT"], tuple![2i64, "Sales"]],
        )
        .unwrap();
        let emp = Table::with_rows(
            TableSchema::new(
                "Emp",
                vec![
                    ColumnDef::new("eid", DataType::Int),
                    ColumnDef::new("did", DataType::Int),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["eid"])
            .unwrap(),
            vec![
                tuple![1i64, 1i64, 100i64],
                tuple![2i64, 1i64, 200i64],
                tuple![3i64, 2i64, 300i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(dept).unwrap();
        db.add_table(emp).unwrap();
        db.add_foreign_key(ForeignKey::new("Emp", "did", "Dept", "did"))
            .unwrap();

        let query = SpjQuery::new(
            vec!["Dept", "Emp"],
            vec!["Emp.eid"],
            DnfPredicate::single(Term::eq("dname", "IT")),
        );
        let r = evaluate(&query, &db).unwrap();
        assert_eq!(r.len(), 2);

        // Same evaluation through a precomputed join + BoundQuery.
        let join = foreign_key_join(&db, &query.tables).unwrap();
        let bound = BoundQuery::bind(&query, &join).unwrap();
        assert_eq!(bound.projection_indices().len(), 1);
        assert_eq!(bound.attribute_indices().len(), 1);
        let r2 = bound.evaluate(&join);
        assert!(r.bag_equal(&r2));
        assert_eq!(bound.matching_rows(&join).len(), 2);
    }

    #[test]
    fn bound_query_matches_row_agrees_with_evaluation() {
        let db = employee_db();
        let join = foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let query = q(DnfPredicate::single(Term::eq("dept", "IT")));
        let bound = BoundQuery::bind(&query, &join).unwrap();
        let matching = bound.matching_rows(&join);
        assert_eq!(matching.len(), 2);
        for (i, jr) in join.rows().iter().enumerate() {
            assert_eq!(bound.matches_row(&jr.tuple), matching.contains(&i));
        }
    }
}
