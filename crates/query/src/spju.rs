//! Select-project-join-union (SPJU) queries — the Section 6.4 extension.
//!
//! An SPJU query is a union of SPJ queries with union-compatible projection
//! lists. The paper sketches how distinguishing two SPJU queries reduces to
//! distinguishing their SPJ components with additional membership checks;
//! this module provides the query representation and evaluation needed for
//! that extension.

use std::fmt;

use qfe_relation::Database;

use crate::error::{QueryError, Result};
use crate::eval::evaluate;
use crate::result::QueryResult;
use crate::spj::SpjQuery;

/// A union of SPJ queries (bag union by default, set union under `distinct`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpjuQuery {
    /// Optional label for reports.
    pub label: Option<String>,
    /// The union's branches. All branches must have the same projection
    /// arity.
    pub branches: Vec<SpjQuery>,
    /// When true, duplicates are eliminated across branches (`UNION`);
    /// when false, duplicates are preserved (`UNION ALL`).
    pub distinct: bool,
}

impl SpjuQuery {
    /// Creates a `UNION ALL` query from its branches.
    pub fn union_all(branches: Vec<SpjQuery>) -> Self {
        SpjuQuery {
            label: None,
            branches,
            distinct: false,
        }
    }

    /// Creates a `UNION` (distinct) query from its branches.
    pub fn union(branches: Vec<SpjQuery>) -> Self {
        SpjuQuery {
            label: None,
            branches,
            distinct: true,
        }
    }

    /// Sets the label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Evaluates the union on a database.
    pub fn evaluate(&self, db: &Database) -> Result<QueryResult> {
        let first = self.branches.first().ok_or(QueryError::NoTables)?;
        let mut combined = evaluate(first, db)?;
        let arity = combined.arity();
        let mut rows: Vec<_> = combined.rows().to_vec();
        for branch in &self.branches[1..] {
            let r = evaluate(branch, db)?;
            if r.arity() != arity {
                return Err(QueryError::Unsupported {
                    feature: format!("union of incompatible arities ({} vs {})", arity, r.arity()),
                });
            }
            rows.extend(r.rows().iter().cloned());
        }
        combined = QueryResult::new(combined.columns().to_vec(), rows);
        Ok(if self.distinct {
            combined.deduplicated()
        } else {
            combined
        })
    }
}

impl fmt::Display for SpjuQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let connector = if self.distinct {
            " UNION "
        } else {
            " UNION ALL "
        };
        let parts: Vec<String> = self.branches.iter().map(|b| b.to_string()).collect();
        f.write_str(&parts.join(connector))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, Table, TableSchema};

    fn db() -> Database {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "Sales", 3700i64],
                tuple![2i64, "Bob", "IT", 4200i64],
                tuple![3i64, "Celina", "Service", 3000i64],
                tuple![4i64, "Darren", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut d = Database::new();
        d.add_table(employee).unwrap();
        d
    }

    fn branch(pred: DnfPredicate) -> SpjQuery {
        SpjQuery::new(vec!["Employee"], vec!["name"], pred)
    }

    #[test]
    fn union_all_preserves_duplicates() {
        let q = SpjuQuery::union_all(vec![
            branch(DnfPredicate::single(Term::eq("dept", "IT"))),
            branch(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
        ]);
        let r = q.evaluate(&db()).unwrap();
        // IT: Bob, Darren; salary>4000: Bob, Darren -> 4 rows under UNION ALL.
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn union_distinct_removes_duplicates() {
        let q = SpjuQuery::union(vec![
            branch(DnfPredicate::single(Term::eq("dept", "IT"))),
            branch(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
        ])
        .with_label("U1");
        let r = q.evaluate(&db()).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(q.label.as_deref(), Some("U1"));
    }

    #[test]
    fn empty_union_is_error() {
        let q = SpjuQuery::union(vec![]);
        assert!(matches!(
            q.evaluate(&db()).unwrap_err(),
            QueryError::NoTables
        ));
    }

    #[test]
    fn incompatible_arity_is_error() {
        let wide = SpjQuery::new(
            vec!["Employee"],
            vec!["name", "dept"],
            DnfPredicate::always_true(),
        );
        let q = SpjuQuery::union_all(vec![branch(DnfPredicate::always_true()), wide]);
        assert!(matches!(
            q.evaluate(&db()).unwrap_err(),
            QueryError::Unsupported { .. }
        ));
    }

    #[test]
    fn display_uses_union_keywords() {
        let q = SpjuQuery::union(vec![
            branch(DnfPredicate::single(Term::eq("dept", "IT"))),
            branch(DnfPredicate::single(Term::eq("dept", "Sales"))),
        ]);
        assert!(q.to_string().contains(" UNION "));
        let q = SpjuQuery::union_all(q.branches.clone());
        assert!(q.to_string().contains(" UNION ALL "));
    }
}
