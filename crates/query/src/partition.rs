//! Partitioning a set of candidate queries by their results.
//!
//! Section 2 of the paper: a modified database `D'` partitions the candidate
//! set `QC` into subsets `QC_1, …, QC_k` such that two queries fall in the
//! same subset iff they produce the same result on `D'`, and the results
//! `R_1, …, R_k` of the subsets are pairwise distinct.

use std::collections::BTreeMap;

use qfe_relation::{Database, JoinedRelation, Tuple};

use crate::error::Result;
use crate::eval::{evaluate, evaluate_on_join, BoundQuery};
use crate::result::QueryResult;
use crate::spj::SpjQuery;

/// One block of a query partition: the queries (by index into the candidate
/// list) that share a result, together with that result.
#[derive(Debug, Clone)]
pub struct QueryGroup {
    /// Indices into the candidate-query list.
    pub query_indices: Vec<usize>,
    /// The common result of those queries.
    pub result: QueryResult,
}

impl QueryGroup {
    /// Number of queries in the group.
    pub fn len(&self) -> usize {
        self.query_indices.len()
    }

    /// True if the group is empty (never produced by the partitioning).
    pub fn is_empty(&self) -> bool {
        self.query_indices.is_empty()
    }
}

/// The partition of a candidate set induced by one database.
#[derive(Debug, Clone)]
pub struct QueryPartition {
    /// The groups, in deterministic order (by result fingerprint).
    pub groups: Vec<QueryGroup>,
}

impl QueryPartition {
    /// Number of groups `k`.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Sizes of the groups.
    pub fn sizes(&self) -> Vec<usize> {
        self.groups.iter().map(QueryGroup::len).collect()
    }

    /// Size of the largest group (the worst-case surviving candidate count).
    pub fn max_group_size(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Index of the group containing candidate query `query_idx`, if any.
    pub fn group_of(&self, query_idx: usize) -> Option<usize> {
        self.groups
            .iter()
            .position(|g| g.query_indices.contains(&query_idx))
    }

    /// The *balance score* of the inducing database (Section 3):
    /// `σ / |C|` where `σ` is the standard deviation of the group sizes and
    /// `|C|` the number of groups. Lower is better: many groups of similar
    /// size. A single group (no discrimination) yields an infinite score so
    /// that it is never preferred.
    pub fn balance_score(&self) -> f64 {
        let sizes = self.sizes();
        let k = sizes.len();
        if k <= 1 {
            return f64::INFINITY;
        }
        let n = sizes.len() as f64;
        let mean = sizes.iter().sum::<usize>() as f64 / n;
        let var = sizes
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / n
    }
}

/// Groups queries by their result fingerprint.
fn partition_by_results(results: Vec<QueryResult>) -> QueryPartition {
    let mut by_fingerprint: BTreeMap<Vec<Tuple>, QueryGroup> = BTreeMap::new();
    for (idx, result) in results.into_iter().enumerate() {
        let fp = result.fingerprint();
        by_fingerprint
            .entry(fp)
            .or_insert_with(|| QueryGroup {
                query_indices: Vec::new(),
                result,
            })
            .query_indices
            .push(idx);
    }
    QueryPartition {
        groups: by_fingerprint.into_values().collect(),
    }
}

/// Partitions `queries` by their results on `db`.
pub fn partition_queries(queries: &[SpjQuery], db: &Database) -> Result<QueryPartition> {
    let mut results = Vec::with_capacity(queries.len());
    for q in queries {
        results.push(evaluate(q, db)?);
    }
    Ok(partition_by_results(results))
}

/// Partitions `queries` by their results on a precomputed join (all queries
/// must be expressible over that join).
pub fn partition_queries_on_join(
    queries: &[SpjQuery],
    join: &JoinedRelation,
) -> Result<QueryPartition> {
    let mut results = Vec::with_capacity(queries.len());
    for q in queries {
        results.push(evaluate_on_join(q, join)?);
    }
    Ok(partition_by_results(results))
}

/// Partitions pre-bound queries by their results on a join. This is the hot
/// path used by QFE's database generator, which re-evaluates the same bound
/// candidates against many candidate modified databases.
pub fn partition_bound_queries(bound: &[BoundQuery], join: &JoinedRelation) -> QueryPartition {
    let results = bound.iter().map(|b| b.evaluate(join)).collect();
    partition_by_results(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, Table, TableSchema, Value};

    fn employee_db() -> Database {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        db
    }

    fn candidates() -> Vec<SpjQuery> {
        let q = |p| SpjQuery::new(vec!["Employee"], vec!["name"], p);
        vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
        ]
    }

    #[test]
    fn all_candidates_agree_on_original_database() {
        let db = employee_db();
        let p = partition_queries(&candidates(), &db).unwrap();
        assert_eq!(p.group_count(), 1);
        assert_eq!(p.sizes(), vec![3]);
        assert_eq!(p.max_group_size(), 3);
        assert!(p.balance_score().is_infinite());
    }

    #[test]
    fn modified_database_d1_splits_off_q2() {
        let mut db = employee_db();
        db.table_mut("Employee")
            .unwrap()
            .update_cell(1, "salary", Value::Int(3900))
            .unwrap();
        let p = partition_queries(&candidates(), &db).unwrap();
        assert_eq!(p.group_count(), 2);
        let mut sizes = p.sizes();
        sizes.sort();
        assert_eq!(sizes, vec![1, 2]);
        // Q2 (index 1) is alone in its group.
        let g = p.group_of(1).unwrap();
        assert_eq!(p.groups[g].len(), 1);
        assert!(p.balance_score() > 0.0 && p.balance_score().is_finite());
        assert_eq!(p.group_of(99), None);
    }

    #[test]
    fn modified_database_d2_splits_q1_from_q3() {
        // D2: Bob's dept changed from IT to Service (the paper's second round).
        let mut db = employee_db();
        db.table_mut("Employee")
            .unwrap()
            .update_cell(1, "dept", Value::Text("Service".into()))
            .unwrap();
        let p = partition_queries(&candidates(), &db).unwrap();
        // Q1 (gender=M) keeps {Bob,Darren}; Q3 (dept=IT) now returns {Darren};
        // Q2 (salary>4000) also returns {Bob, Darren}.
        assert_eq!(p.group_count(), 2);
        assert_eq!(p.group_of(0), p.group_of(1));
        assert_ne!(p.group_of(0), p.group_of(2));
    }

    #[test]
    fn partition_on_precomputed_join_matches_database_partition() {
        let db = employee_db();
        let join = qfe_relation::foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let qs = candidates();
        let p1 = partition_queries(&qs, &db).unwrap();
        let p2 = partition_queries_on_join(&qs, &join).unwrap();
        assert_eq!(p1.sizes(), p2.sizes());
        let bound: Vec<BoundQuery> = qs
            .iter()
            .map(|q| BoundQuery::bind(q, &join).unwrap())
            .collect();
        let p3 = partition_bound_queries(&bound, &join);
        assert_eq!(p1.sizes(), p3.sizes());
    }

    #[test]
    fn balance_score_prefers_even_partitions() {
        // 4 queries split 2/2 vs 3/1: the 2/2 split has a lower score.
        let even = QueryPartition {
            groups: vec![
                QueryGroup {
                    query_indices: vec![0, 1],
                    result: QueryResult::empty(vec!["x".into()]),
                },
                QueryGroup {
                    query_indices: vec![2, 3],
                    result: QueryResult::empty(vec!["x".into()]),
                },
            ],
        };
        let skewed = QueryPartition {
            groups: vec![
                QueryGroup {
                    query_indices: vec![0, 1, 2],
                    result: QueryResult::empty(vec!["x".into()]),
                },
                QueryGroup {
                    query_indices: vec![3],
                    result: QueryResult::empty(vec!["x".into()]),
                },
            ],
        };
        assert!(even.balance_score() < skewed.balance_score());
    }

    #[test]
    fn group_accessors() {
        let g = QueryGroup {
            query_indices: vec![1, 2],
            result: QueryResult::empty(vec!["x".into()]),
        };
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }
}
