//! Vectorized predicate evaluation over columnar joins.
//!
//! Every atomic term `attr op literal` compiles to a *selection bitmap* — one
//! bit per joined row — computed by a tight typed loop over the column's
//! vector ([`qfe_relation::ColumnData`]): integer/float comparisons run over
//! raw `i64`/`f64` slices, and string comparisons become a dictionary lookup
//! followed by an integer range test on the codes (the dictionary is sorted,
//! so code order is string order).  NULL rows are masked out at the end
//! (comparisons against NULL are never satisfied), and cross-type
//! comparisons constant-fold through the total order on [`Value`].
//!
//! [`TermBitmapCache`] memoizes bitmaps per `(column, operator, literal)`.
//! QFE evaluates *many* candidate queries against the *same* join, and their
//! predicates overwhelmingly share terms (QBO enumerates them from the same
//! per-attribute analyses; constant mutation perturbs one term at a time) —
//! so a candidate's selection bitmap is usually assembled purely by AND/OR
//! over cached bitmaps, touching no row data at all.
//!
//! The bit-level contract: for every term and row,
//! `bitmap.get(row) == term.eval(row value)` — the vectorized evaluator is
//! exactly the row evaluator, including SQL NULL semantics, the `Int`/`Float`
//! cross-type numeric order, NaN totality and dictionary misses. Property
//! tests in the workspace root enforce this on randomized data.

use std::cmp::Ordering;
use std::collections::HashMap;

use qfe_relation::{float_total_cmp, Bitmap, CellDelta, ColumnData, ColumnarJoin, Value};

use crate::predicate::{ComparisonOp, Term};

/// A literal tagged with its variant. `Value`'s own equality is cross-type
/// (`Int(k) == Float(k as f64)` through a lossy conversion), but an `Int` and
/// a `Float` literal can still select different rows on an `Int` column (the
/// exact `i64` comparison vs. the `f64` one differs beyond 2^53) — so the
/// cache key must keep the variants apart.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TaggedLiteral(u8, Value);

fn tagged(value: &Value) -> TaggedLiteral {
    let tag = match value {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Text(_) => 4,
    };
    TaggedLiteral(tag, value.clone())
}

/// A term with its attribute name erased — the cache key is the resolved
/// column plus the operator and (variant-tagged) literal(s), so the same
/// comparison reached through a bare and a qualified column reference shares
/// one bitmap, while terms that merely compare `Value`-equal do not.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TermShape {
    Compare(ComparisonOp, TaggedLiteral),
    In(Vec<TaggedLiteral>),
    NotIn(Vec<TaggedLiteral>),
}

fn shape_of(term: &Term) -> TermShape {
    match term {
        Term::Compare { op, value, .. } => TermShape::Compare(*op, tagged(value)),
        Term::In { values, .. } => TermShape::In(values.iter().map(tagged).collect()),
        Term::NotIn { values, .. } => TermShape::NotIn(values.iter().map(tagged).collect()),
    }
}

/// One cached term bitmap, stamped with the epoch of the column state it was
/// computed against.
#[derive(Debug)]
struct CachedBitmap {
    epoch: u64,
    bitmap: Bitmap,
}

/// A per-join cache of term selection bitmaps, shared across every candidate
/// query bound to that join. See the module docs.
///
/// Validity is tracked **per column**: each cached bitmap is stamped with the
/// [`column_epoch`](ColumnarJoin::column_epoch) of the column state it was
/// computed against, and epochs are allocated from a process-wide counter
/// (fresh on every build and every patch). Handing the cache a *different*
/// mirror, or the same mirror after an in-place patch, therefore invalidates
/// exactly the entries on the changed columns — every other column's bitmaps
/// stay live. Only a mirror and its un-patched clone share epochs, and those
/// are bit-identical.
///
/// Better still, a single-cell patch does not have to invalidate at all:
/// [`TermBitmapCache::apply_delta`] consumes the [`CellDelta`] emitted by
/// [`ColumnarJoin::patch_cell`] and *repairs* each cached bitmap on the
/// patched column by re-evaluating one row against one term — flipping a
/// single bit and advancing the entry's epoch, so the subsequent lookup is a
/// plain hit.
#[derive(Debug, Default)]
pub struct TermBitmapCache {
    map: HashMap<(usize, TermShape), CachedBitmap>,
    hits: u64,
    misses: u64,
    repairs: u64,
    invalidations: u64,
}

impl TermBitmapCache {
    /// An empty cache.
    pub fn new() -> TermBitmapCache {
        TermBitmapCache::default()
    }

    /// The selection bitmap of `term` over column `col`, computed on first
    /// use and served from the cache afterwards. An entry whose column epoch
    /// no longer matches `columnar` is recomputed in place (counted as both a
    /// miss and an invalidation).
    pub fn term_bitmap(&mut self, columnar: &ColumnarJoin, col: usize, term: &Term) -> &Bitmap {
        let epoch = columnar.column_epoch(col);
        match self.map.entry((col, shape_of(term))) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let entry = e.into_mut();
                if entry.epoch == epoch {
                    self.hits += 1;
                } else {
                    self.misses += 1;
                    self.invalidations += 1;
                    entry.bitmap = compute_term_bitmap(columnar, col, term);
                    entry.epoch = epoch;
                }
                &entry.bitmap
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                &e.insert(CachedBitmap {
                    epoch,
                    bitmap: compute_term_bitmap(columnar, col, term),
                })
                .bitmap
            }
        }
    }

    /// Repairs the cache after a single-cell patch: every cached bitmap on
    /// the patched column that was valid immediately before the patch gets
    /// its one affected bit re-evaluated (`delta.new` against the entry's
    /// term) and its epoch advanced, so it stays live without recomputation.
    /// Entries on other columns are untouched (their epochs never moved);
    /// entries that were already stale stay stale and will recompute lazily
    /// on next use. Returns the number of bitmaps repaired.
    pub fn apply_delta(&mut self, delta: &CellDelta) -> u64 {
        let mut repaired = 0;
        for ((col, shape), entry) in self.map.iter_mut() {
            if *col != delta.column || entry.epoch != delta.prev_epoch {
                continue;
            }
            // The bit-level contract: NULL rows are always clear, for every
            // term kind — mirroring `compute_term_bitmap`'s null mask.
            if shape_eval(shape, &delta.new) {
                entry.bitmap.set(delta.row);
            } else {
                entry.bitmap.unset(delta.row);
            }
            entry.epoch = delta.epoch;
            repaired += 1;
        }
        self.repairs += repaired;
        repaired
    }

    /// Drops every cached bitmap (structural-change fallback: row count or
    /// column layout of the join changed, so per-bit repair is meaningless).
    /// Counts one invalidation per dropped entry.
    pub fn invalidate_all(&mut self) {
        self.invalidations += self.map.len() as u64;
        self.map.clear();
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (bitmaps computed) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Single-bit repairs applied by [`Self::apply_delta`] so far.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Entries invalidated (recomputed after an epoch mismatch, or dropped
    /// by [`Self::invalidate_all`]) so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Number of distinct term bitmaps currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// `Term::eval` with the attribute erased: evaluates a [`TermShape`] against
/// one attribute value, with identical SQL semantics (NULL never satisfies
/// any term kind; membership uses `Value` equality).
fn shape_eval(shape: &TermShape, value: &Value) -> bool {
    if value.is_null() {
        return false;
    }
    match shape {
        TermShape::Compare(op, TaggedLiteral(_, lit)) => !lit.is_null() && op.eval(value, lit),
        TermShape::In(lits) => lits.iter().any(|TaggedLiteral(_, v)| v == value),
        TermShape::NotIn(lits) => !lits.iter().any(|TaggedLiteral(_, v)| v == value),
    }
}

/// Whether `op` is satisfied by operands comparing as `ord`.
#[inline]
fn op_matches(op: ComparisonOp, ord: Ordering) -> bool {
    match op {
        ComparisonOp::Eq => ord == Ordering::Equal,
        ComparisonOp::Ne => ord != Ordering::Equal,
        ComparisonOp::Lt => ord == Ordering::Less,
        ComparisonOp::Le => ord != Ordering::Greater,
        ComparisonOp::Gt => ord == Ordering::Greater,
        ComparisonOp::Ge => ord != Ordering::Less,
    }
}

/// Computes the selection bitmap of one term over one column, uncached.
///
/// Bit `r` is set iff `term.eval(value of row r)` — NULL rows are always
/// clear, for every term kind.
pub fn compute_term_bitmap(columnar: &ColumnarJoin, col: usize, term: &Term) -> Bitmap {
    let rows = columnar.len();
    let column = columnar.column(col);
    let mut bitmap = match (&column.data, term) {
        // Comparisons against a NULL literal are never satisfied.
        (_, Term::Compare { value, .. }) if value.is_null() => Bitmap::new(rows),
        (ColumnData::Int(v), Term::Compare { op, value, .. }) => int_compare(v, *op, value),
        (ColumnData::Float(v), Term::Compare { op, value, .. }) => float_compare(v, *op, value),
        (ColumnData::Str { codes, dict }, Term::Compare { op, value, .. }) => {
            str_compare(codes, dict, *op, value, rows)
        }
        (ColumnData::Str { codes, dict }, Term::In { values, .. }) => {
            str_membership(codes, dict, values, false, rows)
        }
        (ColumnData::Str { codes, dict }, Term::NotIn { values, .. }) => {
            str_membership(codes, dict, values, true, rows)
        }
        // Boolean columns: evaluate the term once per truth value, then map.
        (ColumnData::Bool(v), term) => {
            let when = [
                term.eval(&Value::Bool(false)),
                term.eval(&Value::Bool(true)),
            ];
            let mut b = Bitmap::new(rows);
            for (r, &x) in v.iter().enumerate() {
                if when[usize::from(x)] {
                    b.set(r);
                }
            }
            b
        }
        // Numeric membership: stack-allocated Value per row, exact semantics.
        (ColumnData::Int(v), term) => {
            let mut b = Bitmap::new(rows);
            for (r, &x) in v.iter().enumerate() {
                if term.eval(&Value::Int(x)) {
                    b.set(r);
                }
            }
            b
        }
        (ColumnData::Float(v), term) => {
            let mut b = Bitmap::new(rows);
            for (r, &x) in v.iter().enumerate() {
                if term.eval(&Value::Float(x)) {
                    b.set(r);
                }
            }
            b
        }
        // Mixed fallback: the row evaluator, one value at a time.
        (ColumnData::Mixed(v), term) => {
            let mut b = Bitmap::new(rows);
            for (r, x) in v.iter().enumerate() {
                if term.eval(x) {
                    b.set(r);
                }
            }
            b
        }
    };
    bitmap.and_not_assign(&column.nulls);
    bitmap
}

/// `i64` column vs. literal, mirroring `Value::cmp`.
fn int_compare(v: &[i64], op: ComparisonOp, lit: &Value) -> Bitmap {
    let rows = v.len();
    match lit {
        Value::Int(b) => {
            let b = *b;
            fill_by(rows, |r| op_matches(op, v[r].cmp(&b)))
        }
        Value::Float(f) if f.is_nan() => constant_fill(rows, op_matches(op, Ordering::Less)),
        Value::Float(f) => {
            let f = *f;
            fill_by(rows, |r| {
                op_matches(op, (v[r] as f64).partial_cmp(&f).unwrap_or(Ordering::Equal))
            })
        }
        // Variant-rank constant folds: numeric < Text, numeric > Bool.
        Value::Text(_) => constant_fill(rows, op_matches(op, Ordering::Less)),
        Value::Bool(_) => constant_fill(rows, op_matches(op, Ordering::Greater)),
        Value::Null => Bitmap::new(rows),
    }
}

/// `f64` column vs. literal, mirroring `Value::cmp` (NaN sorts greatest and
/// equals itself).
fn float_compare(v: &[f64], op: ComparisonOp, lit: &Value) -> Bitmap {
    let rows = v.len();
    match lit {
        Value::Float(f) => {
            let f = *f;
            fill_by(rows, |r| op_matches(op, float_total_cmp(v[r], f)))
        }
        Value::Int(b) => {
            let b = *b as f64;
            fill_by(rows, |r| {
                let ord = if v[r].is_nan() {
                    Ordering::Greater
                } else {
                    v[r].partial_cmp(&b).unwrap_or(Ordering::Equal)
                };
                op_matches(op, ord)
            })
        }
        Value::Text(_) => constant_fill(rows, op_matches(op, Ordering::Less)),
        Value::Bool(_) => constant_fill(rows, op_matches(op, Ordering::Greater)),
        Value::Null => Bitmap::new(rows),
    }
}

/// Dictionary-coded column vs. literal: one binary search in the sorted
/// dictionary, then an integer range test per code.
fn str_compare(
    codes: &[u32],
    dict: &[String],
    op: ComparisonOp,
    lit: &Value,
    rows: usize,
) -> Bitmap {
    let Value::Text(s) = lit else {
        // Text sorts after every other variant.
        return constant_fill(rows, op_matches(op, Ordering::Greater));
    };
    let probe = dict.binary_search_by(|d| d.as_str().cmp(s.as_str()));
    // `lo` = number of dictionary entries strictly below the literal;
    // `hit` = the literal's own code, when present.
    let (lo, hit) = match probe {
        Ok(p) => (p as u32, Some(p as u32)),
        Err(p) => (p as u32, None),
    };
    match op {
        ComparisonOp::Eq => match hit {
            Some(h) => fill_by(rows, |r| codes[r] == h),
            None => Bitmap::new(rows),
        },
        ComparisonOp::Ne => match hit {
            Some(h) => fill_by(rows, |r| codes[r] != h),
            None => Bitmap::all_set(rows),
        },
        ComparisonOp::Lt => fill_by(rows, |r| codes[r] < lo),
        ComparisonOp::Le => match hit {
            Some(h) => fill_by(rows, |r| codes[r] <= h),
            None => fill_by(rows, |r| codes[r] < lo),
        },
        ComparisonOp::Gt => match hit {
            Some(h) => fill_by(rows, |r| codes[r] > h),
            None => fill_by(rows, |r| codes[r] >= lo),
        },
        ComparisonOp::Ge => fill_by(rows, |r| codes[r] >= lo),
    }
}

/// `IN` / `NOT IN` over a dictionary-coded column: resolve each (textual)
/// member to its code once, then test codes against the member set.
fn str_membership(
    codes: &[u32],
    dict: &[String],
    values: &[Value],
    negate: bool,
    rows: usize,
) -> Bitmap {
    if dict.is_empty() {
        // Every row is NULL (a non-NULL row would have populated the
        // dictionary), so the null mask clears the whole bitmap anyway —
        // and codes hold the placeholder 0, which must not index `member`.
        return Bitmap::new(rows);
    }
    let mut member = vec![false; dict.len()];
    for v in values {
        // Only textual members can equal a text value under the total order.
        if let Value::Text(s) = v {
            if let Ok(p) = dict.binary_search_by(|d| d.as_str().cmp(s.as_str())) {
                member[p] = true;
            }
        }
    }
    fill_by(rows, |r| member[codes[r] as usize] != negate)
}

fn fill_by(rows: usize, f: impl Fn(usize) -> bool) -> Bitmap {
    let mut b = Bitmap::new(rows);
    for r in 0..rows {
        if f(r) {
            b.set(r);
        }
    }
    b
}

fn constant_fill(rows: usize, value: bool) -> Bitmap {
    if value {
        Bitmap::all_set(rows)
    } else {
        Bitmap::new(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::BoundQuery;
    use crate::predicate::{Conjunct, DnfPredicate};
    use crate::spj::SpjQuery;
    use qfe_relation::{
        foreign_key_join, tuple, ColumnDef, DataType, Database, Table, TableSchema, Tuple,
    };

    fn setup() -> (qfe_relation::JoinedRelation, ColumnarJoin) {
        let t = Table::with_rows(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::nullable("score", DataType::Float),
                    ColumnDef::nullable("n", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["id"])
            .unwrap(),
            vec![
                tuple![1i64, "bob", 1.5, 10i64],
                Tuple::new(vec![
                    Value::Int(2),
                    Value::Text("alice".into()),
                    Value::Null,
                    Value::Int(20),
                ]),
                tuple![3i64, "carol", 2.0, 10i64],
                Tuple::new(vec![
                    Value::Int(4),
                    Value::Text("dan".into()),
                    Value::Float(f64::NAN),
                    Value::Null,
                ]),
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(t).unwrap();
        let join = foreign_key_join(&db, &["T".to_string()]).unwrap();
        let columnar = ColumnarJoin::from_join(&join);
        (join, columnar)
    }

    /// Every term bitmap must agree bit-for-bit with `Term::eval` on the row
    /// values — across operators, types, NULLs, NaN, and dictionary misses.
    #[test]
    fn term_bitmaps_agree_with_row_evaluation() {
        let (join, columnar) = setup();
        let ops = [
            ComparisonOp::Eq,
            ComparisonOp::Ne,
            ComparisonOp::Lt,
            ComparisonOp::Le,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
        ];
        let literals: Vec<Value> = vec![
            Value::Int(10),
            Value::Int(15),
            Value::Float(1.5),
            Value::Float(f64::NAN),
            Value::Text("bob".into()),
            Value::Text("bz".into()), // dictionary miss
            Value::Bool(true),
            Value::Null,
        ];
        let mut terms: Vec<Term> = Vec::new();
        for op in ops {
            for lit in &literals {
                terms.push(Term::Compare {
                    attribute: "x".into(),
                    op,
                    value: lit.clone(),
                });
            }
        }
        terms.push(Term::is_in("x", vec!["bob".into(), "dan".into()]));
        terms.push(Term::not_in("x", vec!["bob".into()]));
        terms.push(Term::is_in("x", vec![Value::Int(10), Value::Float(1.5)]));
        terms.push(Term::not_in("x", vec![Value::Int(10)]));

        for col in 0..join.arity() {
            for term in &terms {
                let bitmap = compute_term_bitmap(&columnar, col, term);
                for (r, jr) in join.rows().iter().enumerate() {
                    let v = jr.tuple.get(col).cloned().unwrap_or(Value::Null);
                    assert_eq!(
                        bitmap.get(r),
                        term.eval(&v),
                        "col {col} row {r} term {term} value {v:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_hits_on_repeated_terms_and_invalidates_on_patch() {
        let (join, mut columnar) = setup();
        let mut cache = TermBitmapCache::new();
        let term = Term::eq("name", "bob");
        let col = join.resolve_column("name").unwrap();
        let first = cache.term_bitmap(&columnar, col, &term).clone();
        assert_eq!(cache.misses(), 1);
        let second = cache.term_bitmap(&columnar, col, &term).clone();
        assert_eq!(cache.hits(), 1);
        assert_eq!(first, second);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());

        // A patch bumps the column's epoch: without a delta repair, the
        // cached entry recomputes (counted as a miss + invalidation).
        columnar.patch_cell(0, col, &Value::Text("eve".into()));
        let third = cache.term_bitmap(&columnar, col, &term).clone();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.invalidations(), 1);
        assert!(third.is_zero(), "bob no longer appears");
    }

    #[test]
    fn apply_delta_repairs_patched_column_and_keeps_others_live() {
        let (join, mut columnar) = setup();
        let mut cache = TermBitmapCache::new();
        let name_col = join.resolve_column("name").unwrap();
        let score_col = join.resolve_column("score").unwrap();
        let name_term = Term::eq("name", "bob");
        let score_term = Term::compare("score", ComparisonOp::Le, 1.75f64);
        let _ = cache.term_bitmap(&columnar, name_col, &name_term);
        let _ = cache.term_bitmap(&columnar, score_col, &score_term);
        assert_eq!(cache.misses(), 2);

        // Patch one score cell and repair: the score entry flips one bit,
        // the name entry is untouched, and both subsequent lookups are hits.
        let delta = columnar.patch_cell(2, score_col, &Value::Float(0.5));
        assert_eq!(cache.apply_delta(&delta), 1);
        assert_eq!(cache.repairs(), 1);
        let repaired = cache.term_bitmap(&columnar, score_col, &score_term).clone();
        let _ = cache.term_bitmap(&columnar, name_col, &name_term);
        assert_eq!(cache.hits(), 2, "both entries stay live after the repair");
        assert_eq!(cache.misses(), 2);
        assert_eq!(
            repaired,
            compute_term_bitmap(&columnar, score_col, &score_term)
        );
        assert!(repaired.get(2), "2.0 -> 0.5 now satisfies score <= 1.75");

        // A NULL patch must clear the bit (NULL never satisfies any term).
        let delta = columnar.patch_cell(2, score_col, &Value::Null);
        assert_eq!(cache.apply_delta(&delta), 1);
        let repaired = cache.term_bitmap(&columnar, score_col, &score_term).clone();
        assert!(!repaired.get(2));
        assert_eq!(
            repaired,
            compute_term_bitmap(&columnar, score_col, &score_term)
        );

        // invalidate_all drops everything (structural fallback).
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert_eq!(cache.invalidations(), 2);
    }

    #[test]
    fn membership_on_an_all_null_text_column_is_empty_not_a_panic() {
        // An all-NULL text column has an empty dictionary while its codes
        // hold the placeholder 0 — IN/NOT IN must select nothing (SQL NULL
        // semantics), not index out of bounds.
        let t = Table::with_rows(
            TableSchema::new(
                "N",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::nullable("tag", DataType::Text),
                ],
            )
            .unwrap()
            .with_primary_key(&["id"])
            .unwrap(),
            vec![
                Tuple::new(vec![Value::Int(1), Value::Null]),
                Tuple::new(vec![Value::Int(2), Value::Null]),
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(t).unwrap();
        let join = foreign_key_join(&db, &["N".to_string()]).unwrap();
        let columnar = ColumnarJoin::from_join(&join);
        let col = join.resolve_column("tag").unwrap();
        for term in [
            Term::is_in("tag", vec!["x".into()]),
            Term::not_in("tag", vec!["x".into()]),
            Term::eq("tag", "x"),
        ] {
            let bitmap = compute_term_bitmap(&columnar, col, &term);
            assert!(bitmap.is_zero(), "{term}: NULL rows never match");
        }
    }

    #[test]
    fn cache_distinguishes_value_equal_int_and_float_literals() {
        // Int(2^53 + 1) and Float(2^53) compare Value-equal (the cross-type
        // order converts through f64, which rounds), yet they select
        // different rows of an Int column — the cache key must keep them
        // apart.
        let big = (1i64 << 53) + 1;
        let twin = Value::Float((1i64 << 53) as f64);
        assert_eq!(Value::Int(big), twin, "premise: Value-equal literals");
        let t = Table::with_rows(
            TableSchema::new(
                "B",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("n", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["id"])
            .unwrap(),
            vec![tuple![1i64, 1i64 << 53], tuple![2i64, big]],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(t).unwrap();
        let join = foreign_key_join(&db, &["B".to_string()]).unwrap();
        let columnar = ColumnarJoin::from_join(&join);
        let col = join.resolve_column("n").unwrap();
        let mut cache = TermBitmapCache::new();

        let exact = Term::Compare {
            attribute: "n".into(),
            op: ComparisonOp::Eq,
            value: Value::Int(big),
        };
        let rounded = Term::Compare {
            attribute: "n".into(),
            op: ComparisonOp::Eq,
            value: twin,
        };
        let b_exact = cache.term_bitmap(&columnar, col, &exact).clone();
        let b_rounded = cache.term_bitmap(&columnar, col, &rounded).clone();
        assert_eq!(cache.misses(), 2, "distinct cache entries");
        assert_ne!(b_exact, b_rounded);
        for (r, jr) in join.rows().iter().enumerate() {
            let v = jr.tuple.get(col).unwrap();
            assert_eq!(b_exact.get(r), exact.eval(v));
            assert_eq!(b_rounded.get(r), rounded.eval(v));
        }
    }

    #[test]
    fn cache_invalidates_across_distinct_mirrors() {
        // Generations are process-unique: two mirrors of even the *same*
        // join never share one, so a cache warmed on the first cannot serve
        // stale bitmaps for the second.
        let (join, columnar_a) = setup();
        let columnar_b = ColumnarJoin::from_join(&join);
        assert_ne!(columnar_a.generation(), columnar_b.generation());
        let mut cache = TermBitmapCache::new();
        let term = Term::eq("name", "bob");
        let col = join.resolve_column("name").unwrap();
        let _ = cache.term_bitmap(&columnar_a, col, &term);
        assert_eq!(cache.misses(), 1);
        let _ = cache.term_bitmap(&columnar_b, col, &term);
        assert_eq!(cache.misses(), 2, "distinct mirror must invalidate");
    }

    #[test]
    fn selection_bitmap_assembles_dnf_from_cached_terms() {
        let (join, columnar) = setup();
        let mut cache = TermBitmapCache::new();
        let query = SpjQuery::new(
            vec!["T"],
            vec!["name"],
            DnfPredicate::new(vec![
                Conjunct::new(vec![
                    Term::compare("n", ComparisonOp::Ge, 10i64),
                    Term::compare("score", ComparisonOp::Le, 1.75f64),
                ]),
                Conjunct::new(vec![Term::eq("name", "carol")]),
            ]),
        );
        let bound = BoundQuery::bind(&query, &join).unwrap();
        let bitmap = bound.selection_bitmap(&columnar, &mut cache);
        for (r, jr) in join.rows().iter().enumerate() {
            assert_eq!(bitmap.get(r), bound.matches_row(&jr.tuple), "row {r}");
        }
        // Re-evaluating hits the cache for all three terms.
        let before = cache.hits();
        let _ = bound.selection_bitmap(&columnar, &mut cache);
        assert_eq!(cache.hits(), before + 3);
    }

    #[test]
    fn always_true_predicate_selects_every_row_including_nulls() {
        let (join, columnar) = setup();
        let mut cache = TermBitmapCache::new();
        let query = SpjQuery::new(vec!["T"], vec!["name"], DnfPredicate::always_true());
        let bound = BoundQuery::bind(&query, &join).unwrap();
        let bitmap = bound.selection_bitmap(&columnar, &mut cache);
        assert_eq!(bitmap.count_ones(), join.len());
    }
}
