//! Content addressing for wire payloads.
//!
//! The snapshot store keys immutable bulk payloads (the example pair
//! `(D, R)` of a QFE workload) by the hash of their serialized form, so any
//! number of parked sessions on the same workload reference one stored copy.
//! The hash only needs to distinguish workloads within one deployment's
//! store — it is not a cryptographic commitment — so a fast self-contained
//! 128-bit FNV-1a variant suffices (the build environment has no access to
//! crates.io, hence no SHA implementation to reach for).

/// 64-bit FNV-1a over `bytes`, parameterized by the offset basis so two
/// independent lanes can be combined into a 128-bit digest.
fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Hex digest of a 128-bit content hash of `text`.
///
/// Two FNV-1a lanes: the standard offset basis, and the standard basis
/// re-seeded with the input length (so the lanes disagree on permuted
/// inputs that collide in one lane). Deterministic across processes and
/// platforms — the property the content-addressed store relies on.
pub fn content_hash(text: &str) -> String {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    let bytes = text.as_bytes();
    let lo = fnv1a64(bytes, OFFSET_BASIS);
    let hi = fnv1a64(
        bytes,
        OFFSET_BASIS ^ (bytes.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    format!("{hi:016x}{lo:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_and_hex() {
        let h = content_hash("hello");
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(h, content_hash("hello"), "same input, same digest");
    }

    #[test]
    fn distinct_inputs_get_distinct_digests() {
        let inputs = ["", "a", "b", "ab", "ba", "hello", "hello ", "{\"x\":1}"];
        let digests: Vec<String> = inputs.iter().map(|s| content_hash(s)).collect();
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
