//! The serialization traits and error type.

use std::fmt;

use crate::json::Json;

/// Serialization failure: a value cannot be represented, or (much more
/// commonly) JSON being deserialized does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    message: String,
}

impl WireError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }

    /// Prefixes the error with surrounding context (outermost first).
    pub fn context(mut self, context: impl fmt::Display) -> Self {
        self.message = format!("{context}: {}", self.message);
        self
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// Convenience result alias for this crate.
pub type WireResult<T> = std::result::Result<T, WireError>;

/// Conversion into the wire representation.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;

    /// Renders `self` directly to JSON text.
    fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

/// Conversion from the wire representation.
pub trait FromJson: Sized {
    /// Reconstructs a value from its JSON representation.
    fn from_json(json: &Json) -> WireResult<Self>;

    /// Parses JSON text and reconstructs a value from it.
    fn from_json_str(text: &str) -> WireResult<Self> {
        Self::from_json(&Json::parse(text)?)
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> WireResult<Self> {
        json.as_array()?
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.context(format!("[{i}]"))))
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> WireResult<Self> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> WireResult<Self> {
        Ok(json.as_str()?.to_string())
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl FromJson for usize {
    fn from_json(json: &Json) -> WireResult<Self> {
        json.as_usize()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> WireResult<Self> {
        json.as_bool()
    }
}

impl ToJson for std::time::Duration {
    fn to_json(&self) -> Json {
        Json::object([
            ("secs", Json::Int(self.as_secs() as i64)),
            ("nanos", Json::Int(self.subsec_nanos() as i64)),
        ])
    }
}

impl FromJson for std::time::Duration {
    fn from_json(json: &Json) -> WireResult<Self> {
        let secs = json.field("secs")?.as_i64()?;
        let nanos = json.field("nanos")?.as_i64()?;
        if secs < 0 || !(0..1_000_000_000).contains(&nanos) {
            return Err(WireError::new("invalid duration"));
        }
        Ok(std::time::Duration::new(secs as u64, nanos as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn blanket_impls_roundtrip() {
        let v = vec!["a".to_string(), "b".to_string()];
        assert_eq!(Vec::<String>::from_json(&v.to_json()).unwrap(), v);
        let none: Option<String> = None;
        assert_eq!(Option::<String>::from_json(&none.to_json()).unwrap(), none);
        let some = Some("x".to_string());
        assert_eq!(Option::<String>::from_json(&some.to_json()).unwrap(), some);
        assert_eq!(usize::from_json(&7usize.to_json()).unwrap(), 7);
        assert!(bool::from_json(&true.to_json()).unwrap());
        let d = Duration::new(3, 141_592_653);
        assert_eq!(Duration::from_json(&d.to_json()).unwrap(), d);
    }

    #[test]
    fn from_json_str_parses_and_converts() {
        assert_eq!(
            Vec::<usize>::from_json_str("[1,2,3]").unwrap(),
            vec![1, 2, 3]
        );
        let err = Vec::<usize>::from_json_str(r#"[1,"x"]"#).unwrap_err();
        assert!(err.to_string().contains("[1]"));
    }

    #[test]
    fn duration_rejects_bad_shapes() {
        assert!(Duration::from_json_str(r#"{"secs":-1,"nanos":0}"#).is_err());
        assert!(Duration::from_json_str(r#"{"secs":1,"nanos":2000000000}"#).is_err());
        assert!(Duration::from_json_str("3").is_err());
    }

    #[test]
    fn error_context_prefixes() {
        let e = WireError::new("inner").context("outer");
        assert_eq!(e.to_string(), "wire error: outer: inner");
    }
}
