//! The JSON parser.

use crate::json::Json;
use crate::traits::{WireError, WireResult};

impl Json {
    /// Parses JSON text (with the `NaN` / `inf` / `-inf` float extension).
    ///
    /// The whole input must be one value; trailing non-whitespace is an
    /// error. Numbers without `.`, exponent, or non-finite token parse as
    /// [`Json::Int`]; everything else numeric parses as [`Json::Float`].
    pub fn parse(text: &str) -> WireResult<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

/// Maximum container nesting the parser accepts. Recursive descent uses the
/// thread stack, so unbounded nesting in a hostile snapshot would abort the
/// process with a stack overflow instead of returning an error.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> WireError {
        WireError::new(format!("{message} (at byte {})", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> WireResult<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> WireResult<Json> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Json::Float(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Json::Float(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(Json::Float(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn nested(&mut self, inner: fn(&mut Parser<'a>) -> WireResult<Json>) -> WireResult<Json> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("too deeply nested"));
        }
        self.depth += 1;
        let value = inner(self);
        self.depth -= 1;
        value
    }

    fn object(&mut self) -> WireResult<Json> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> WireResult<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> WireResult<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs for characters beyond the BMP.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_keyword("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> WireResult<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> WireResult<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.error("invalid float literal"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.error("invalid integer literal"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(j: &Json) {
        let text = j.render();
        let parsed = Json::parse(&text).unwrap();
        match (j, &parsed) {
            // NaN != NaN under PartialEq; compare via render instead.
            _ if text.contains("NaN") => assert_eq!(parsed.render(), text),
            _ => assert_eq!(&parsed, j),
        }
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("inf").unwrap(), Json::Float(f64::INFINITY));
        assert_eq!(Json::parse("-inf").unwrap(), Json::Float(f64::NEG_INFINITY));
        assert!(matches!(Json::parse("NaN").unwrap(), Json::Float(f) if f.is_nan()));
        assert_eq!(
            Json::parse(r#""hi\nthere""#).unwrap(),
            Json::from("hi\nthere")
        );
        assert_eq!(Json::parse(r#""\u0041""#).unwrap(), Json::from("A"));
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap(), Json::from("😀"));
    }

    #[test]
    fn parses_containers() {
        let j = Json::parse(r#"{"a": [1, 2.0, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Object(vec![]));
    }

    #[test]
    fn deep_nesting_is_rejected_not_fatal() {
        // Within the limit: fine.
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        // Past the limit: a clean error instead of a stack overflow.
        let too_deep = "[".repeat(100_000);
        let err = Json::parse(&too_deep).unwrap_err();
        assert!(err.to_string().contains("too deeply nested"));
        let objects = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&objects).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "\"unterminated",
            "1 2",
            "01a",
            "--1",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn roundtrips_tricky_values() {
        for j in [
            Json::Float(0.1),
            Json::Float(1.0),
            Json::Float(-1.5e-300),
            Json::Float(f64::NAN),
            Json::Float(f64::INFINITY),
            Json::Int(i64::MIN),
            Json::Int(i64::MAX),
            Json::from("quote\" slash\\ newline\n tab\t unicode→ €"),
            Json::object([("k", Json::Array(vec![Json::Null, Json::Int(0)]))]),
        ] {
            roundtrip(&j);
        }
    }

    #[test]
    fn int_float_distinction_survives() {
        assert_eq!(Json::parse("3").unwrap(), Json::Int(3));
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(Json::Int(3).render(), "3");
        assert_eq!(Json::Float(3.0).render(), "3.0");
    }
}
