//! The JSON value model and renderer.

use std::fmt;

use crate::traits::{WireError, WireResult};

/// A JSON value.
///
/// Integers and floats are separate variants — the relational `Value` type
/// distinguishes them, and the distinction must survive a round trip. The
/// renderer keeps them apart syntactically: floats always carry a decimal
/// point, an exponent, or are one of the non-finite tokens.
///
/// Objects preserve insertion order (no sorting, no deduplication), so
/// rendering is deterministic and snapshots diff cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (no fractional part in the rendering).
    Int(i64),
    /// Floating-point number (always rendered distinguishably from `Int`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object: ordered key-value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting each item with [`crate::ToJson`].
    pub fn array<T: crate::ToJson, I: IntoIterator<Item = T>>(items: I) -> Json {
        Json::Array(items.into_iter().map(|v| v.to_json()).collect())
    }

    /// Looks up a key in an object. Returns `None` for missing keys and for
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required object field, with a descriptive error.
    pub fn field(&self, key: &str) -> WireResult<&Json> {
        self.get(key)
            .ok_or_else(|| WireError::new(format!("missing field `{key}` in {}", self.kind())))
    }

    /// The integer value, widening errors with the expected kind.
    pub fn as_i64(&self) -> WireResult<i64> {
        match self {
            Json::Int(i) => Ok(*i),
            other => Err(other.type_error("integer")),
        }
    }

    /// The integer value as a `usize`.
    pub fn as_usize(&self) -> WireResult<usize> {
        let i = self.as_i64()?;
        usize::try_from(i).map_err(|_| WireError::new(format!("integer {i} is not a valid usize")))
    }

    /// The numeric value (`Int` widens to `f64`).
    pub fn as_f64(&self) -> WireResult<f64> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(f) => Ok(*f),
            other => Err(other.type_error("number")),
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> WireResult<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(other.type_error("boolean")),
        }
    }

    /// The string value.
    pub fn as_str(&self) -> WireResult<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(other.type_error("string")),
        }
    }

    /// The array elements.
    pub fn as_array(&self) -> WireResult<&[Json]> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(other.type_error("array")),
        }
    }

    /// The object entries.
    pub fn as_object(&self) -> WireResult<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Ok(pairs),
            other => Err(other.type_error("object")),
        }
    }

    /// A short name for the value's kind (used in error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Int(_) => "integer",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    fn type_error(&self, expected: &str) -> WireError {
        WireError::new(format!("expected {expected}, found {}", self.kind()))
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::Float(f) => render_float(*f, out),
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders a float so it can never be confused with an integer: Rust's `{:?}`
/// gives the shortest representation that round-trips, and always includes a
/// `.` or an exponent for finite values ("1.0", "2.5e-10"). Non-finite values
/// become the bare tokens `NaN`, `inf`, `-inf` (the parser's JSON extension).
fn render_float(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f.is_infinite() {
        out.push_str(if f > 0.0 { "inf" } else { "-inf" });
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{f:?}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Float(1.0).render(), "1.0");
        assert_eq!(Json::Float(0.1).render(), "0.1");
        assert_eq!(Json::Float(f64::NAN).render(), "NaN");
        assert_eq!(Json::Float(f64::INFINITY).render(), "inf");
        assert_eq!(Json::Float(f64::NEG_INFINITY).render(), "-inf");
        assert_eq!(Json::from("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_containers_in_order() {
        let j = Json::object([
            ("b", Json::Int(1)),
            ("a", Json::Array(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(j.render(), r#"{"b":1,"a":[null,false]}"#);
        assert_eq!(j.to_string(), j.render());
    }

    #[test]
    fn accessors_and_errors() {
        let j = Json::object([("x", Json::Int(3))]);
        assert_eq!(j.field("x").unwrap().as_i64().unwrap(), 3);
        assert_eq!(j.field("x").unwrap().as_usize().unwrap(), 3);
        assert_eq!(j.field("x").unwrap().as_f64().unwrap(), 3.0);
        assert!(j
            .field("y")
            .unwrap_err()
            .to_string()
            .contains("missing field `y`"));
        assert!(j.field("x").unwrap().as_str().is_err());
        assert!(Json::Int(-1).as_usize().is_err());
        assert!(Json::Null.as_array().is_err());
        assert!(Json::Null.as_object().is_err());
        assert!(Json::Null.as_bool().is_err());
        assert_eq!(Json::Float(2.5).as_f64().unwrap(), 2.5);
        assert!(Json::Str("s".into()).get("k").is_none());
    }
}
