//! # qfe-wire — serialization layer for externalizable session state
//!
//! QFE sessions must be able to leave the process: the sans-IO engine in
//! `qfe-core` snapshots its full state (`SessionSnapshot`) so a feedback
//! session can be persisted mid-round, shipped to another machine, and
//! resumed. This crate provides the wire format: a small JSON value model
//! ([`Json`]), a renderer and parser, and the [`ToJson`] / [`FromJson`]
//! traits the workspace types implement. (The build environment has no
//! access to crates.io, so this self-contained layer stands in for serde.)
//!
//! The format is standard JSON with one extension: the non-finite floats
//! `NaN`, `inf` and `-inf` are rendered and parsed as bare tokens, because
//! the relational [`Value`] domain is totally ordered and may contain them.
//! Floats are rendered with Rust's shortest round-trip formatting, so a
//! parse-render cycle is lossless.
//!
//! ## Example
//!
//! ```
//! use qfe_wire::{Json, ToJson};
//!
//! let j = Json::object([
//!     ("name", Json::from("Alice")),
//!     ("salary", Json::Int(3700)),
//! ]);
//! let text = j.render();
//! assert_eq!(text, r#"{"name":"Alice","salary":3700}"#);
//! assert_eq!(Json::parse(&text).unwrap(), j);
//! ```
//!
//! [`Value`]: https://docs.rs/qfe-relation

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod json;
mod parse;
mod traits;

pub use hash::content_hash;
pub use json::Json;
pub use traits::{FromJson, ToJson, WireError, WireResult};
