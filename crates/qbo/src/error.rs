//! Error type for candidate-query generation.

use std::fmt;

use qfe_query::QueryError;
use qfe_relation::RelationError;

/// Errors raised by the query generator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum QboError {
    /// An underlying query evaluation failed.
    Query(QueryError),
    /// An underlying relational operation failed.
    Relation(RelationError),
    /// No projection of any candidate join can produce the example result.
    NoProjection,
    /// No candidate query reproduces the example result under the configured
    /// search bounds.
    NoCandidates,
    /// The example result is empty; reverse engineering needs at least one
    /// output row to constrain the search.
    EmptyResult,
}

impl fmt::Display for QboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QboError::Query(e) => write!(f, "{e}"),
            QboError::Relation(e) => write!(f, "{e}"),
            QboError::NoProjection => {
                write!(
                    f,
                    "no projection over any foreign-key join matches the example result"
                )
            }
            QboError::NoCandidates => write!(
                f,
                "no candidate query reproduces the example result within the configured bounds"
            ),
            QboError::EmptyResult => {
                write!(
                    f,
                    "the example result is empty; provide at least one output row"
                )
            }
        }
    }
}

impl std::error::Error for QboError {}

impl From<QueryError> for QboError {
    fn from(e: QueryError) -> Self {
        QboError::Query(e)
    }
}

impl From<RelationError> for QboError {
    fn from(e: RelationError) -> Self {
        QboError::Relation(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, QboError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(QboError::NoProjection.to_string().contains("no projection"));
        assert!(QboError::NoCandidates.to_string().contains("no candidate"));
        assert!(QboError::EmptyResult.to_string().contains("empty"));
        let e: QboError = QueryError::NoTables.into();
        assert!(matches!(e, QboError::Query(_)));
        let e: QboError = RelationError::UnknownTable { table: "T".into() }.into();
        assert!(matches!(e, QboError::Relation(_)));
    }
}
