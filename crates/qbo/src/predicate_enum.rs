//! Enumeration of candidate selection predicates.
//!
//! Given the joined relation, a projection and the example result, the rows
//! of the join split into *positives* (rows that must be selected to produce
//! the result) and *negatives* (rows that must not be).  This module
//! enumerates DNF predicates that select exactly the positive rows, bounded
//! by the generator configuration: single-attribute terms, tight ranges,
//! multi-attribute conjunctions and (as a fallback) greedy disjunctive
//! covers.

use std::collections::{BTreeMap, BTreeSet};

use qfe_query::{ComparisonOp, Conjunct, DnfPredicate, QueryResult, Term};
use qfe_relation::{bag_equal_rows, DataType, JoinedRelation, Value};

use crate::config::QboConfig;

/// The positive/negative split of the join's rows w.r.t. a projection and an
/// example result.
#[derive(Debug, Clone)]
pub struct RowSplit {
    /// Join-row indices that must be selected.
    pub positives: Vec<usize>,
    /// Join-row indices that must not be selected.
    pub negatives: Vec<usize>,
}

/// Splits the join's rows into positives and negatives.
///
/// A row is positive when its projection appears in the result. Returns
/// `None` when selecting *all* positive rows does not reproduce the result as
/// a bag — in that case no selection-only predicate over this projection can
/// work with the "select every matching row" strategy this generator uses.
pub fn split_rows(
    join: &JoinedRelation,
    projection_idx: &[usize],
    result: &QueryResult,
) -> Option<RowSplit> {
    let wanted: BTreeSet<_> = result.rows().iter().cloned().collect();
    let mut positives = Vec::new();
    let mut negatives = Vec::new();
    let mut projected_positives = Vec::new();
    for (i, row) in join.rows().iter().enumerate() {
        let projected = row.tuple.project(projection_idx);
        if wanted.contains(&projected) {
            projected_positives.push(projected);
            positives.push(i);
        } else {
            negatives.push(i);
        }
    }
    if positives.is_empty() {
        return None;
    }
    if !bag_equal_rows(&projected_positives, result.rows()) {
        return None;
    }
    Some(RowSplit {
        positives,
        negatives,
    })
}

/// Attribute-name resolution for predicate construction: maps every join
/// column to the reference string used in generated predicates (bare column
/// name when unambiguous, otherwise `Table.column`) and provides value
/// lookup for evaluation.
#[derive(Debug, Clone)]
pub struct AttributeSpace {
    refs: Vec<String>,
    by_ref: BTreeMap<String, usize>,
    types: Vec<DataType>,
}

impl AttributeSpace {
    /// Builds the attribute space of a join.
    pub fn new(join: &JoinedRelation) -> Self {
        let mut bare_counts: BTreeMap<&str, usize> = BTreeMap::new();
        for c in join.columns() {
            *bare_counts.entry(c.column.as_str()).or_insert(0) += 1;
        }
        let mut refs = Vec::with_capacity(join.arity());
        let mut by_ref = BTreeMap::new();
        let mut types = Vec::with_capacity(join.arity());
        for (i, c) in join.columns().iter().enumerate() {
            let r = if bare_counts[c.column.as_str()] == 1 {
                c.column.clone()
            } else {
                c.qualified_name()
            };
            by_ref.insert(r.clone(), i);
            by_ref.insert(c.qualified_name(), i);
            refs.push(r);
            types.push(c.data_type);
        }
        AttributeSpace {
            refs,
            by_ref,
            types,
        }
    }

    /// The reference string for column `idx`.
    pub fn reference(&self, idx: usize) -> &str {
        &self.refs[idx]
    }

    /// The column index behind a reference string.
    pub fn resolve(&self, reference: &str) -> Option<usize> {
        self.by_ref.get(reference).copied()
    }

    /// The column's data type.
    pub fn data_type(&self, idx: usize) -> DataType {
        self.types[idx]
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// True if there are no columns.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Evaluates a DNF predicate on one join row.
    pub fn matches(&self, join: &JoinedRelation, row: usize, pred: &DnfPredicate) -> bool {
        let tuple = &join.rows()[row].tuple;
        let lookup = |name: &str| -> Value {
            self.resolve(name)
                .and_then(|i| tuple.get(i).cloned())
                .unwrap_or(Value::Null)
        };
        pred.eval(&lookup)
    }

    /// True when `pred` selects exactly the positive rows of `split`.
    pub fn selects_exactly(
        &self,
        join: &JoinedRelation,
        split: &RowSplit,
        pred: &DnfPredicate,
    ) -> bool {
        split.positives.iter().all(|&r| self.matches(join, r, pred))
            && !split.negatives.iter().any(|&r| self.matches(join, r, pred))
    }
}

/// Per-attribute analysis of the positive/negative value distributions.
struct AttributeAnalysis {
    col: usize,
    /// Conjuncts over this attribute alone that select all positives and no
    /// negatives.
    exact: Vec<Vec<Term>>,
    /// Terms over this attribute that select all positives (possibly some
    /// negatives) — building blocks for multi-attribute conjunctions.
    covering: Vec<Term>,
    /// How many negatives the tightest covering conjunct excludes.
    discrimination: usize,
}

fn analyze_attribute(
    join: &JoinedRelation,
    space: &AttributeSpace,
    split: &RowSplit,
    col: usize,
    config: &QboConfig,
) -> Option<AttributeAnalysis> {
    let value_of = |row: usize| {
        join.rows()[row]
            .tuple
            .get(col)
            .cloned()
            .unwrap_or(Value::Null)
    };
    let pos_vals: BTreeSet<Value> = split.positives.iter().map(|&r| value_of(r)).collect();
    let neg_vals: BTreeSet<Value> = split.negatives.iter().map(|&r| value_of(r)).collect();
    if pos_vals.iter().any(Value::is_null) {
        return None; // NULL-valued positives cannot be captured by comparisons
    }
    let attr = space.reference(col).to_string();
    let numeric = space.data_type(col).is_numeric();

    let mut exact: Vec<Vec<Term>> = Vec::new();
    let mut covering: Vec<Term> = Vec::new();

    if numeric {
        let min_pos = pos_vals.iter().next().cloned().unwrap();
        let max_pos = pos_vals.iter().next_back().cloned().unwrap();
        let negs_nonnull: Vec<&Value> = neg_vals.iter().filter(|v| !v.is_null()).collect();
        let min_neg_above = negs_nonnull
            .iter()
            .filter(|v| ***v > max_pos)
            .min()
            .cloned();
        let max_neg_below = negs_nonnull
            .iter()
            .filter(|v| ***v < min_pos)
            .max()
            .cloned();
        let neg_le_max_pos = negs_nonnull.iter().any(|v| **v <= max_pos);
        let neg_ge_min_pos = negs_nonnull.iter().any(|v| **v >= min_pos);
        let neg_inside_range = negs_nonnull
            .iter()
            .any(|v| **v >= min_pos && **v <= max_pos);

        // Upper-bounded predicates: all positives ≤ max_pos, valid when no
        // negative is ≤ max_pos.
        if !neg_le_max_pos {
            exact.push(vec![Term::compare(
                &attr,
                ComparisonOp::Le,
                max_pos.clone(),
            )]);
            if let Some(nn) = &min_neg_above {
                exact.push(vec![Term::compare(&attr, ComparisonOp::Lt, (*nn).clone())]);
            }
        }
        // Lower-bounded predicates.
        if !neg_ge_min_pos {
            exact.push(vec![Term::compare(
                &attr,
                ComparisonOp::Ge,
                min_pos.clone(),
            )]);
            if let Some(nn) = &max_neg_below {
                exact.push(vec![Term::compare(&attr, ComparisonOp::Gt, (*nn).clone())]);
            }
        }
        // Two-sided range.
        if exact.is_empty() && !neg_inside_range {
            exact.push(vec![
                Term::compare(&attr, ComparisonOp::Ge, min_pos.clone()),
                Term::compare(&attr, ComparisonOp::Le, max_pos.clone()),
            ]);
        }
        // Single positive value: equality.
        if pos_vals.len() == 1 && !neg_vals.contains(&min_pos) {
            exact.push(vec![Term::eq(&attr, min_pos.clone())]);
        }

        // Covering terms (tightest bounds containing every positive).
        covering.push(Term::compare(&attr, ComparisonOp::Ge, min_pos.clone()));
        covering.push(Term::compare(&attr, ComparisonOp::Le, max_pos.clone()));
        if pos_vals.len() == 1 {
            covering.push(Term::eq(&attr, min_pos));
        }
    } else {
        // Categorical attribute.
        let disjoint = pos_vals.intersection(&neg_vals).next().is_none();
        if disjoint {
            if pos_vals.len() == 1 {
                exact.push(vec![Term::eq(
                    &attr,
                    pos_vals.iter().next().cloned().unwrap(),
                )]);
            } else if pos_vals.len() <= config.max_in_list {
                exact.push(vec![Term::is_in(&attr, pos_vals.iter().cloned().collect())]);
            }
            if !neg_vals.is_empty() && neg_vals.len() <= config.max_in_list {
                exact.push(vec![Term::not_in(
                    &attr,
                    neg_vals.iter().cloned().collect(),
                )]);
            }
        }
        if pos_vals.len() == 1 {
            covering.push(Term::eq(&attr, pos_vals.iter().next().cloned().unwrap()));
        } else if pos_vals.len() <= config.max_in_list {
            covering.push(Term::is_in(&attr, pos_vals.iter().cloned().collect()));
        }
    }

    // Discrimination: how many negatives the tightest covering conjunct
    // excludes (0 when there are no covering terms).
    let discrimination = if covering.is_empty() {
        0
    } else {
        let tight = DnfPredicate::conjunction(covering.clone());
        split
            .negatives
            .iter()
            .filter(|&&r| !space.matches(join, r, &tight))
            .count()
    };

    Some(AttributeAnalysis {
        col,
        exact,
        covering,
        discrimination,
    })
}

/// Enumerates candidate predicates that select exactly the positive rows.
///
/// The returned predicates are deduplicated and capped at
/// `config.max_candidates`; every one of them satisfies
/// [`AttributeSpace::selects_exactly`] (callers re-verify against the real
/// evaluator anyway).
pub fn enumerate_predicates(
    join: &JoinedRelation,
    space: &AttributeSpace,
    split: &RowSplit,
    config: &QboConfig,
) -> Vec<DnfPredicate> {
    let mut analyses: Vec<AttributeAnalysis> = (0..join.arity())
        .filter_map(|col| analyze_attribute(join, space, split, col, config))
        .collect();

    let mut out: Vec<DnfPredicate> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut push = |pred: DnfPredicate, out: &mut Vec<DnfPredicate>| {
        if out.len() >= config.max_candidates {
            return;
        }
        let key = pred.to_string();
        if seen.insert(key) {
            out.push(pred);
        }
    };

    // The trivial predicate: when there are no negatives at all, selecting
    // everything is a valid (and the simplest) candidate.
    if split.negatives.is_empty() {
        push(DnfPredicate::always_true(), &mut out);
    }

    // 1. Single-attribute exact conjuncts.
    for a in &analyses {
        for conjunct in &a.exact {
            if conjunct.len() <= config.max_terms_per_conjunct {
                push(DnfPredicate::conjunction(conjunct.clone()), &mut out);
            }
        }
    }

    // 2. Multi-attribute conjunctions of covering terms.
    //    Rank attributes by discrimination, keep the useful ones.
    analyses.sort_by(|a, b| {
        b.discrimination
            .cmp(&a.discrimination)
            .then(a.col.cmp(&b.col))
    });
    let useful: Vec<&AttributeAnalysis> = analyses
        .iter()
        .filter(|a| a.discrimination > 0 && !a.covering.is_empty())
        .take(8)
        .collect();
    let max_attrs = config.max_selection_attributes.min(useful.len());
    if max_attrs >= 2 {
        // Enumerate attribute subsets of size 2..=max_attrs.
        let n = useful.len();
        for mask in 1u32..(1 << n.min(16)) {
            let size = mask.count_ones() as usize;
            if !(2..=max_attrs).contains(&size) {
                continue;
            }
            if out.len() >= config.max_candidates {
                break;
            }
            let chosen: Vec<&AttributeAnalysis> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| useful[i])
                .collect();
            // Cartesian product of each chosen attribute's covering terms,
            // taking one term per attribute (plus, for numeric attributes,
            // the two-sided combination).
            let per_attr_blocks: Vec<Vec<Vec<Term>>> = chosen
                .iter()
                .map(|a| {
                    let mut blocks: Vec<Vec<Term>> =
                        a.covering.iter().map(|t| vec![t.clone()]).collect();
                    if a.covering.len() == 2 {
                        blocks.push(a.covering.clone()); // both bounds
                    }
                    blocks
                })
                .collect();
            let mut combos: Vec<Vec<Term>> = vec![Vec::new()];
            for blocks in &per_attr_blocks {
                let mut next = Vec::new();
                for partial in &combos {
                    for block in blocks {
                        let mut ext = partial.clone();
                        ext.extend(block.iter().cloned());
                        if ext.len() <= config.max_terms_per_conjunct {
                            next.push(ext);
                        }
                    }
                }
                combos = next;
                if combos.len() > 256 {
                    combos.truncate(256);
                }
            }
            for terms in combos {
                if terms.is_empty() {
                    continue;
                }
                let pred = DnfPredicate::conjunction(terms);
                if space.selects_exactly(join, split, &pred) {
                    push(pred, &mut out);
                }
            }
        }
    }

    // 3. Greedy disjunctive cover fallback (also adds diversity when allowed).
    if config.max_disjuncts >= 2 {
        if let Some(pred) = greedy_disjunctive_cover(join, space, split, config) {
            if space.selects_exactly(join, split, &pred) {
                push(pred, &mut out);
            }
        }
    }

    out
}

/// Builds a DNF predicate as a greedy cover of the positive rows by "pure"
/// conjuncts (conjuncts that match no negative row).  Returns `None` when the
/// positives cannot be covered within the configured number of disjuncts.
fn greedy_disjunctive_cover(
    join: &JoinedRelation,
    space: &AttributeSpace,
    split: &RowSplit,
    config: &QboConfig,
) -> Option<DnfPredicate> {
    // Candidate pure conjuncts: per categorical attribute, equality with each
    // positive value that no negative shares; per numeric attribute, maximal
    // positive-only intervals.
    let mut pure: Vec<(Conjunct, BTreeSet<usize>)> = Vec::new();
    for col in 0..join.arity() {
        let attr = space.reference(col).to_string();
        let value_of = |row: usize| {
            join.rows()[row]
                .tuple
                .get(col)
                .cloned()
                .unwrap_or(Value::Null)
        };
        let neg_vals: BTreeSet<Value> = split.negatives.iter().map(|&r| value_of(r)).collect();
        if space.data_type(col).is_numeric() {
            // Intervals between consecutive positive values not containing
            // any negative value.
            let mut pos_sorted: Vec<Value> = split
                .positives
                .iter()
                .map(|&r| value_of(r))
                .filter(|v| !v.is_null())
                .collect();
            pos_sorted.sort();
            pos_sorted.dedup();
            let mut i = 0usize;
            while i < pos_sorted.len() {
                // Grow a run [i, j) such that no negative lies within
                // [pos_sorted[i], pos_sorted[j-1]].
                let mut j = i + 1;
                while j < pos_sorted.len()
                    && !neg_vals
                        .iter()
                        .any(|nv| !nv.is_null() && *nv >= pos_sorted[i] && *nv <= pos_sorted[j])
                {
                    j += 1;
                }
                let lo = pos_sorted[i].clone();
                let hi = pos_sorted[j - 1].clone();
                if !neg_vals
                    .iter()
                    .any(|nv| !nv.is_null() && *nv >= lo && *nv <= hi)
                {
                    let conjunct = if lo == hi {
                        Conjunct::new(vec![Term::eq(&attr, lo.clone())])
                    } else {
                        Conjunct::new(vec![
                            Term::compare(&attr, ComparisonOp::Ge, lo.clone()),
                            Term::compare(&attr, ComparisonOp::Le, hi.clone()),
                        ])
                    };
                    let covered: BTreeSet<usize> = split
                        .positives
                        .iter()
                        .filter(|&&r| {
                            let v = value_of(r);
                            !v.is_null() && v >= lo && v <= hi
                        })
                        .copied()
                        .collect();
                    if !covered.is_empty() {
                        pure.push((conjunct, covered));
                    }
                }
                i = j;
            }
        } else {
            let mut by_value: BTreeMap<Value, BTreeSet<usize>> = BTreeMap::new();
            for &r in &split.positives {
                by_value.entry(value_of(r)).or_default().insert(r);
            }
            for (v, covered) in by_value {
                if v.is_null() || neg_vals.contains(&v) {
                    continue;
                }
                pure.push((Conjunct::new(vec![Term::eq(&attr, v)]), covered));
            }
        }
    }
    if pure.is_empty() {
        return None;
    }

    // Greedy cover.
    let all_pos: BTreeSet<usize> = split.positives.iter().copied().collect();
    let mut uncovered = all_pos;
    let mut chosen: Vec<Conjunct> = Vec::new();
    while !uncovered.is_empty() {
        if chosen.len() >= config.max_disjuncts {
            return None;
        }
        let best = pure
            .iter()
            .max_by_key(|(_, covered)| covered.intersection(&uncovered).count())?;
        let gain = best.1.intersection(&uncovered).count();
        if gain == 0 {
            return None;
        }
        for r in &best.1 {
            uncovered.remove(r);
        }
        chosen.push(best.0.clone());
    }
    Some(DnfPredicate::new(chosen))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_relation::{
        foreign_key_join, tuple, ColumnDef, DataType, Database, Table, TableSchema,
    };

    fn employee_join() -> (JoinedRelation, AttributeSpace) {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        let join = foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let space = AttributeSpace::new(&join);
        (join, space)
    }

    fn bob_darren_result() -> QueryResult {
        QueryResult::new(
            vec!["name".to_string()],
            vec![tuple!["Bob"], tuple!["Darren"]],
        )
    }

    #[test]
    fn attribute_space_resolution() {
        let (join, space) = employee_join();
        assert_eq!(space.len(), 5);
        assert!(!space.is_empty());
        // Single table: bare names are unambiguous.
        assert_eq!(space.reference(4), "salary");
        assert_eq!(space.resolve("salary"), Some(4));
        assert_eq!(space.resolve("Employee.salary"), Some(4));
        assert_eq!(space.resolve("unknown"), None);
        assert_eq!(space.data_type(1), DataType::Text);
        assert!(space.matches(&join, 1, &DnfPredicate::single(Term::eq("name", "Bob"))));
    }

    #[test]
    fn split_rows_identifies_positive_rows() {
        let (join, _space) = employee_join();
        let proj = vec![join.resolve_column("name").unwrap()];
        let split = split_rows(&join, &proj, &bob_darren_result()).unwrap();
        assert_eq!(split.positives, vec![1, 3]);
        assert_eq!(split.negatives, vec![0, 2]);
    }

    #[test]
    fn split_rows_rejects_unmatchable_results() {
        let (join, _space) = employee_join();
        let proj = vec![join.resolve_column("name").unwrap()];
        // "Nobody" is not producible.
        let r = QueryResult::new(vec!["name".to_string()], vec![tuple!["Nobody"]]);
        assert!(split_rows(&join, &proj, &r).is_none());
        // Duplicate "Bob" cannot be produced by a selection (only one Bob row).
        let r = QueryResult::new(vec!["name".to_string()], vec![tuple!["Bob"], tuple!["Bob"]]);
        assert!(split_rows(&join, &proj, &r).is_none());
    }

    #[test]
    fn enumeration_finds_the_three_example_1_1_candidates() {
        let (join, space) = employee_join();
        let proj = vec![join.resolve_column("name").unwrap()];
        let split = split_rows(&join, &proj, &bob_darren_result()).unwrap();
        let preds = enumerate_predicates(&join, &space, &split, &QboConfig::default());
        let rendered: Vec<String> = preds.iter().map(|p| p.to_string()).collect();
        // The three candidates of Example 1.1 must all be discovered:
        assert!(rendered.iter().any(|s| s == "gender = 'M'"), "{rendered:?}");
        assert!(rendered.iter().any(|s| s == "dept = 'IT'"), "{rendered:?}");
        assert!(
            rendered.iter().any(|s| s.contains("salary >")),
            "{rendered:?}"
        );
        // Every enumerated predicate selects exactly the positives.
        for p in &preds {
            assert!(space.selects_exactly(&join, &split, p), "{p}");
        }
    }

    #[test]
    fn enumeration_handles_no_negatives() {
        let (join, space) = employee_join();
        let proj = vec![join.resolve_column("name").unwrap()];
        let all = QueryResult::new(
            vec!["name".to_string()],
            vec![
                tuple!["Alice"],
                tuple!["Bob"],
                tuple!["Celina"],
                tuple!["Darren"],
            ],
        );
        let split = split_rows(&join, &proj, &all).unwrap();
        assert!(split.negatives.is_empty());
        let preds = enumerate_predicates(&join, &space, &split, &QboConfig::default());
        assert!(preds.iter().any(DnfPredicate::is_always_true));
    }

    #[test]
    fn disjunctive_cover_is_generated_when_needed() {
        // Result {Alice, Darren}: no single-attribute predicate separates
        // them from {Bob, Celina} on this data, so the disjunctive cover
        // fallback must produce a valid (multi-disjunct) predicate.
        let (join, space) = employee_join();
        let proj = vec![join.resolve_column("name").unwrap()];
        let r = QueryResult::new(
            vec!["name".to_string()],
            vec![tuple!["Alice"], tuple!["Darren"]],
        );
        let split = split_rows(&join, &proj, &r).unwrap();
        let preds = enumerate_predicates(&join, &space, &split, &QboConfig::default());
        assert!(!preds.is_empty());
        for p in &preds {
            assert!(space.selects_exactly(&join, &split, p), "{p}");
        }
        assert!(preds.iter().any(|p| p.conjuncts().len() >= 2));
    }

    #[test]
    fn candidate_cap_is_respected() {
        let (join, space) = employee_join();
        let proj = vec![join.resolve_column("name").unwrap()];
        let split = split_rows(&join, &proj, &bob_darren_result()).unwrap();
        let config = QboConfig {
            max_candidates: 2,
            ..QboConfig::default()
        };
        let preds = enumerate_predicates(&join, &space, &split, &config);
        assert!(preds.len() <= 2);
    }
}
