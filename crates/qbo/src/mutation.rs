//! Growing a candidate set by mutating predicate constants.
//!
//! Section 7.6 of the paper: "we generated 61 additional candidate queries
//! from the initial candidate queries by modifying their selection predicate
//! constants."  [`mutate_constants`] reproduces that mechanism: numeric
//! constants in comparison terms are shifted to neighbouring values of the
//! attribute's active domain (and to midpoints between them) and the mutated
//! query is kept only when it still reproduces the original result on `D`.

use std::collections::BTreeSet;

use qfe_query::{evaluate, ComparisonOp, Conjunct, DnfPredicate, QueryResult, SpjQuery, Term};
use qfe_relation::{foreign_key_join, Database, Value};

use crate::error::Result;

/// Generates up to `extra` additional candidates from `base` by mutating the
/// numeric constants of their predicates. Every returned query `Q` satisfies
/// `Q(D) = R` and differs (as SQL text) from every base query and every other
/// returned query.
pub fn mutate_constants(
    db: &Database,
    result: &QueryResult,
    base: &[SpjQuery],
    extra: usize,
) -> Result<Vec<SpjQuery>> {
    let mut seen: BTreeSet<String> = base.iter().map(|q| q.to_string()).collect();
    let mut out: Vec<SpjQuery> = Vec::new();

    'outer: for query in base {
        let join = match foreign_key_join(db, &query.tables) {
            Ok(j) => j,
            Err(_) => continue,
        };
        // Candidate replacement constants per attribute: the attribute's
        // active domain plus midpoints between consecutive numeric values.
        for (ci, conjunct) in query.predicate.conjuncts().iter().enumerate() {
            for (ti, term) in conjunct.terms().iter().enumerate() {
                let Term::Compare {
                    attribute,
                    op,
                    value,
                } = term
                else {
                    continue;
                };
                if !value.is_numeric() {
                    continue;
                }
                let Ok(col) = join.resolve_column(attribute) else {
                    continue;
                };
                let mut alternatives: Vec<Value> = Vec::new();
                let domain = join.active_domain(col);
                for window in domain.windows(2) {
                    if let (Some(a), Some(b)) = (window[0].as_f64(), window[1].as_f64()) {
                        alternatives.push(Value::Float((a + b) / 2.0));
                    }
                }
                alternatives.extend(domain);
                for alt in alternatives {
                    if &alt == value {
                        continue;
                    }
                    let mutated = replace_term(
                        query,
                        ci,
                        ti,
                        Term::Compare {
                            attribute: attribute.clone(),
                            op: *op,
                            value: alt,
                        },
                    );
                    let sql = mutated.to_string();
                    if seen.contains(&sql) {
                        continue;
                    }
                    if let Ok(r) = evaluate(&mutated, db) {
                        if r.bag_equal(result) {
                            seen.insert(sql);
                            out.push(mutated);
                            if out.len() >= extra {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Also mutate comparison operators between adjacent strict/non-strict forms
/// (`<` ↔ `<=`, `>` ↔ `>=`) when the relaxation preserves the result.
pub fn mutate_operators(
    db: &Database,
    result: &QueryResult,
    base: &[SpjQuery],
    extra: usize,
) -> Result<Vec<SpjQuery>> {
    let mut seen: BTreeSet<String> = base.iter().map(|q| q.to_string()).collect();
    let mut out = Vec::new();
    'outer: for query in base {
        for (ci, conjunct) in query.predicate.conjuncts().iter().enumerate() {
            for (ti, term) in conjunct.terms().iter().enumerate() {
                let Term::Compare {
                    attribute,
                    op,
                    value,
                } = term
                else {
                    continue;
                };
                let flipped = match op {
                    ComparisonOp::Lt => ComparisonOp::Le,
                    ComparisonOp::Le => ComparisonOp::Lt,
                    ComparisonOp::Gt => ComparisonOp::Ge,
                    ComparisonOp::Ge => ComparisonOp::Gt,
                    _ => continue,
                };
                let mutated = replace_term(
                    query,
                    ci,
                    ti,
                    Term::Compare {
                        attribute: attribute.clone(),
                        op: flipped,
                        value: value.clone(),
                    },
                );
                let sql = mutated.to_string();
                if seen.contains(&sql) {
                    continue;
                }
                if let Ok(r) = evaluate(&mutated, db) {
                    if r.bag_equal(result) {
                        seen.insert(sql);
                        out.push(mutated);
                        if out.len() >= extra {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Grows `base` to (up to) `target_total` verified candidates by applying
/// constant and operator mutations, mirroring the Table 6 experimental setup.
pub fn grow_candidates(
    db: &Database,
    result: &QueryResult,
    base: &[SpjQuery],
    target_total: usize,
) -> Result<Vec<SpjQuery>> {
    let mut all = base.to_vec();
    if all.len() >= target_total {
        all.truncate(target_total);
        return Ok(all);
    }
    let extra = target_total - all.len();
    let by_constants = mutate_constants(db, result, &all, extra)?;
    all.extend(by_constants);
    if all.len() < target_total {
        let by_ops = mutate_operators(db, result, &all, target_total - all.len())?;
        all.extend(by_ops);
    }
    // Second-generation constant mutations (mutations of mutations) if still
    // short of the target.
    if all.len() < target_total {
        let more = mutate_constants(db, result, &all, target_total - all.len())?;
        all.extend(more);
    }
    Ok(all)
}

fn replace_term(
    query: &SpjQuery,
    conjunct_idx: usize,
    term_idx: usize,
    new_term: Term,
) -> SpjQuery {
    let mut conjuncts: Vec<Conjunct> = query.predicate.conjuncts().to_vec();
    let mut terms: Vec<Term> = conjuncts[conjunct_idx].terms().to_vec();
    terms[term_idx] = new_term;
    conjuncts[conjunct_idx] = Conjunct::new(terms);
    let mut q = query.clone();
    q.label = None; // mutated queries are new, unlabeled candidates
    q.predicate = DnfPredicate::new(conjuncts);
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_relation::{tuple, ColumnDef, DataType, Table, TableSchema};

    fn db() -> Database {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", 3700i64],
                tuple![2i64, "Bob", 4200i64],
                tuple![3i64, "Celina", 3000i64],
                tuple![4i64, "Darren", 5000i64],
            ],
        )
        .unwrap();
        let mut d = Database::new();
        d.add_table(employee).unwrap();
        d
    }

    fn base_query() -> SpjQuery {
        SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::single(Term::compare("salary", ComparisonOp::Gt, 4000i64)),
        )
    }

    fn result(db: &Database) -> QueryResult {
        evaluate(&base_query(), db).unwrap()
    }

    #[test]
    fn constant_mutations_preserve_the_result() {
        let db = db();
        let r = result(&db);
        let mutated = mutate_constants(&db, &r, &[base_query()], 10).unwrap();
        assert!(!mutated.is_empty());
        for q in &mutated {
            assert!(evaluate(q, &db).unwrap().bag_equal(&r), "{q}");
            assert_ne!(q.to_string(), base_query().to_string());
        }
    }

    #[test]
    fn operator_mutations_preserve_the_result() {
        let db = db();
        // salary >= 4200 is equivalent to salary > 4000 on this data; the
        // strict/non-strict flip of >= 4200 (to > 4200) changes the result and
        // must be rejected, whereas > 3700 -> >= 3700 changes it too. Use a
        // base where the flip is harmless: salary > 4100 -> >= 4100 keeps R.
        let base = SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::single(Term::compare("salary", ComparisonOp::Gt, 4100i64)),
        );
        let r = evaluate(&base, &db).unwrap();
        let mutated = mutate_operators(&db, &r, &[base], 10).unwrap();
        assert_eq!(mutated.len(), 1);
        assert!(evaluate(&mutated[0], &db).unwrap().bag_equal(&r));
    }

    #[test]
    fn grow_candidates_reaches_target_or_exhausts_mutations() {
        let db = db();
        let r = result(&db);
        let grown = grow_candidates(&db, &r, &[base_query()], 6).unwrap();
        assert!(grown.len() > 1);
        assert!(grown.len() <= 6);
        // All distinct and all correct.
        let mut sqls: Vec<String> = grown.iter().map(|q| q.to_string()).collect();
        let n = sqls.len();
        sqls.sort();
        sqls.dedup();
        assert_eq!(n, sqls.len());
        for q in &grown {
            assert!(evaluate(q, &db).unwrap().bag_equal(&r));
        }
    }

    #[test]
    fn grow_candidates_truncates_oversized_base() {
        let db = db();
        let r = result(&db);
        let grown = grow_candidates(&db, &r, &[base_query(), base_query()], 1).unwrap();
        assert_eq!(grown.len(), 1);
    }
}
