//! Growing a candidate set by mutating predicate constants.
//!
//! Section 7.6 of the paper: "we generated 61 additional candidate queries
//! from the initial candidate queries by modifying their selection predicate
//! constants."  [`mutate_constants`] reproduces that mechanism: numeric
//! constants in comparison terms are shifted to neighbouring values of the
//! attribute's active domain (and to midpoints between them) and the mutated
//! query is kept only when it still reproduces the original result on `D`.

use std::collections::{BTreeMap, BTreeSet};

use qfe_query::{evaluate, ComparisonOp, Conjunct, DnfPredicate, QueryResult, SpjQuery, Term};
use qfe_relation::{foreign_key_join, Database, JoinedRelation, Value};

use crate::error::Result;
use crate::verify::BatchVerifier;

/// Lazily built per-join-signature state shared by every mutation of queries
/// over the same tables: the foreign-key join plus (in columnar mode) a
/// [`BatchVerifier`] whose term-bitmap cache carries across the whole
/// mutation frontier — a mutation perturbs one term, so every other term of
/// the mutated predicate is a cache hit.
struct JoinVerifiers<'a> {
    db: &'a Database,
    result: &'a QueryResult,
    columnar: bool,
    by_tables: BTreeMap<Vec<String>, Option<(JoinedRelation, Option<BatchVerifier>)>>,
}

impl<'a> JoinVerifiers<'a> {
    fn new(db: &'a Database, result: &'a QueryResult, columnar: bool) -> Self {
        JoinVerifiers {
            db,
            result,
            columnar,
            by_tables: BTreeMap::new(),
        }
    }

    /// The join (and verifier, in columnar mode) for `tables`; `None` when
    /// the join cannot be computed.
    fn entry(&mut self, tables: &[String]) -> Option<&mut (JoinedRelation, Option<BatchVerifier>)> {
        let (db, result, columnar) = (self.db, self.result, self.columnar);
        self.by_tables
            .entry(tables.to_vec())
            .or_insert_with(|| {
                foreign_key_join(db, tables).ok().map(|join| {
                    let verifier = columnar.then(|| BatchVerifier::new(&join, result));
                    (join, verifier)
                })
            })
            .as_mut()
    }

    /// Whether `mutated` reproduces the expected result — through the shared
    /// columnar verifier, or the row evaluator in row mode.
    fn verify(
        join: &JoinedRelation,
        verifier: &mut Option<BatchVerifier>,
        db: &Database,
        result: &QueryResult,
        mutated: &SpjQuery,
    ) -> bool {
        match verifier {
            Some(v) => v.verify(join, mutated),
            None => evaluate(mutated, db)
                .map(|r| r.bag_equal(result))
                .unwrap_or(false),
        }
    }
}

/// Generates up to `extra` additional candidates from `base` by mutating the
/// numeric constants of their predicates. Every returned query `Q` satisfies
/// `Q(D) = R` and differs (as SQL text) from every base query and every other
/// returned query.
pub fn mutate_constants(
    db: &Database,
    result: &QueryResult,
    base: &[SpjQuery],
    extra: usize,
) -> Result<Vec<SpjQuery>> {
    mutate_constants_mode(db, result, base, extra, true)
}

/// [`mutate_constants`] with the verification path pinned: `columnar = false`
/// re-evaluates every mutation row-at-a-time (benchmark baseline /
/// differential testing). Both modes accept byte-identical candidate sets.
pub fn mutate_constants_mode(
    db: &Database,
    result: &QueryResult,
    base: &[SpjQuery],
    extra: usize,
    columnar: bool,
) -> Result<Vec<SpjQuery>> {
    let mut seen: BTreeSet<String> = base.iter().map(|q| q.to_string()).collect();
    let mut out: Vec<SpjQuery> = Vec::new();
    let mut verifiers = JoinVerifiers::new(db, result, columnar);

    'outer: for query in base {
        let Some((join, verifier)) = verifiers.entry(&query.tables) else {
            continue;
        };
        // Candidate replacement constants per attribute: the attribute's
        // active domain plus midpoints between consecutive numeric values.
        for (ci, conjunct) in query.predicate.conjuncts().iter().enumerate() {
            for (ti, term) in conjunct.terms().iter().enumerate() {
                let Term::Compare {
                    attribute,
                    op,
                    value,
                } = term
                else {
                    continue;
                };
                if !value.is_numeric() {
                    continue;
                }
                let Ok(col) = join.resolve_column(attribute) else {
                    continue;
                };
                let mut alternatives: Vec<Value> = Vec::new();
                let domain = join.active_domain(col);
                for window in domain.windows(2) {
                    if let (Some(a), Some(b)) = (window[0].as_f64(), window[1].as_f64()) {
                        alternatives.push(Value::Float((a + b) / 2.0));
                    }
                }
                alternatives.extend(domain);
                for alt in alternatives {
                    if &alt == value {
                        continue;
                    }
                    let mutated = replace_term(
                        query,
                        ci,
                        ti,
                        Term::Compare {
                            attribute: attribute.clone(),
                            op: *op,
                            value: alt,
                        },
                    );
                    let sql = mutated.to_string();
                    if seen.contains(&sql) {
                        continue;
                    }
                    if JoinVerifiers::verify(join, verifier, db, result, &mutated) {
                        seen.insert(sql);
                        out.push(mutated);
                        if out.len() >= extra {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Also mutate comparison operators between adjacent strict/non-strict forms
/// (`<` ↔ `<=`, `>` ↔ `>=`) when the relaxation preserves the result.
pub fn mutate_operators(
    db: &Database,
    result: &QueryResult,
    base: &[SpjQuery],
    extra: usize,
) -> Result<Vec<SpjQuery>> {
    mutate_operators_mode(db, result, base, extra, true)
}

/// [`mutate_operators`] with the verification path pinned (see
/// [`mutate_constants_mode`]).
pub fn mutate_operators_mode(
    db: &Database,
    result: &QueryResult,
    base: &[SpjQuery],
    extra: usize,
    columnar: bool,
) -> Result<Vec<SpjQuery>> {
    let mut seen: BTreeSet<String> = base.iter().map(|q| q.to_string()).collect();
    let mut out = Vec::new();
    let mut verifiers = JoinVerifiers::new(db, result, columnar);
    'outer: for query in base {
        // Operator mutation needs no join of its own; only the columnar path
        // builds (and caches) one to verify against. Row mode evaluates each
        // mutation directly, as the pre-columnar baseline did.
        let mut entry = None;
        if columnar {
            match verifiers.entry(&query.tables) {
                Some(e) => entry = Some(e),
                None => continue,
            }
        }
        for (ci, conjunct) in query.predicate.conjuncts().iter().enumerate() {
            for (ti, term) in conjunct.terms().iter().enumerate() {
                let Term::Compare {
                    attribute,
                    op,
                    value,
                } = term
                else {
                    continue;
                };
                let flipped = match op {
                    ComparisonOp::Lt => ComparisonOp::Le,
                    ComparisonOp::Le => ComparisonOp::Lt,
                    ComparisonOp::Gt => ComparisonOp::Ge,
                    ComparisonOp::Ge => ComparisonOp::Gt,
                    _ => continue,
                };
                let mutated = replace_term(
                    query,
                    ci,
                    ti,
                    Term::Compare {
                        attribute: attribute.clone(),
                        op: flipped,
                        value: value.clone(),
                    },
                );
                let sql = mutated.to_string();
                if seen.contains(&sql) {
                    continue;
                }
                let verified = match &mut entry {
                    Some((join, verifier)) => {
                        JoinVerifiers::verify(join, verifier, db, result, &mutated)
                    }
                    None => evaluate(&mutated, db)
                        .map(|r| r.bag_equal(result))
                        .unwrap_or(false),
                };
                if verified {
                    seen.insert(sql);
                    out.push(mutated);
                    if out.len() >= extra {
                        break 'outer;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Grows `base` to (up to) `target_total` verified candidates by applying
/// constant and operator mutations, mirroring the Table 6 experimental setup.
pub fn grow_candidates(
    db: &Database,
    result: &QueryResult,
    base: &[SpjQuery],
    target_total: usize,
) -> Result<Vec<SpjQuery>> {
    grow_candidates_mode(db, result, base, target_total, true)
}

/// [`grow_candidates`] with the verification path pinned: `columnar = false`
/// re-evaluates every mutation row-at-a-time against a freshly computed join
/// (the pre-columnar behaviour — kept as the benchmark baseline and for
/// differential testing). Both modes return byte-identical candidate sets.
pub fn grow_candidates_mode(
    db: &Database,
    result: &QueryResult,
    base: &[SpjQuery],
    target_total: usize,
    columnar: bool,
) -> Result<Vec<SpjQuery>> {
    let mut all = base.to_vec();
    if all.len() >= target_total {
        all.truncate(target_total);
        return Ok(all);
    }
    let extra = target_total - all.len();
    let by_constants = mutate_constants_mode(db, result, &all, extra, columnar)?;
    all.extend(by_constants);
    if all.len() < target_total {
        let by_ops = mutate_operators_mode(db, result, &all, target_total - all.len(), columnar)?;
        all.extend(by_ops);
    }
    // Second-generation constant mutations (mutations of mutations) if still
    // short of the target.
    if all.len() < target_total {
        let more = mutate_constants_mode(db, result, &all, target_total - all.len(), columnar)?;
        all.extend(more);
    }
    Ok(all)
}

fn replace_term(
    query: &SpjQuery,
    conjunct_idx: usize,
    term_idx: usize,
    new_term: Term,
) -> SpjQuery {
    let mut conjuncts: Vec<Conjunct> = query.predicate.conjuncts().to_vec();
    let mut terms: Vec<Term> = conjuncts[conjunct_idx].terms().to_vec();
    terms[term_idx] = new_term;
    conjuncts[conjunct_idx] = Conjunct::new(terms);
    let mut q = query.clone();
    q.label = None; // mutated queries are new, unlabeled candidates
    q.predicate = DnfPredicate::new(conjuncts);
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_relation::{tuple, ColumnDef, DataType, Table, TableSchema};

    fn db() -> Database {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", 3700i64],
                tuple![2i64, "Bob", 4200i64],
                tuple![3i64, "Celina", 3000i64],
                tuple![4i64, "Darren", 5000i64],
            ],
        )
        .unwrap();
        let mut d = Database::new();
        d.add_table(employee).unwrap();
        d
    }

    fn base_query() -> SpjQuery {
        SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::single(Term::compare("salary", ComparisonOp::Gt, 4000i64)),
        )
    }

    fn result(db: &Database) -> QueryResult {
        evaluate(&base_query(), db).unwrap()
    }

    #[test]
    fn constant_mutations_preserve_the_result() {
        let db = db();
        let r = result(&db);
        let mutated = mutate_constants(&db, &r, &[base_query()], 10).unwrap();
        assert!(!mutated.is_empty());
        for q in &mutated {
            assert!(evaluate(q, &db).unwrap().bag_equal(&r), "{q}");
            assert_ne!(q.to_string(), base_query().to_string());
        }
    }

    #[test]
    fn operator_mutations_preserve_the_result() {
        let db = db();
        // salary >= 4200 is equivalent to salary > 4000 on this data; the
        // strict/non-strict flip of >= 4200 (to > 4200) changes the result and
        // must be rejected, whereas > 3700 -> >= 3700 changes it too. Use a
        // base where the flip is harmless: salary > 4100 -> >= 4100 keeps R.
        let base = SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::single(Term::compare("salary", ComparisonOp::Gt, 4100i64)),
        );
        let r = evaluate(&base, &db).unwrap();
        let mutated = mutate_operators(&db, &r, &[base], 10).unwrap();
        assert_eq!(mutated.len(), 1);
        assert!(evaluate(&mutated[0], &db).unwrap().bag_equal(&r));
    }

    #[test]
    fn grow_candidates_reaches_target_or_exhausts_mutations() {
        let db = db();
        let r = result(&db);
        let grown = grow_candidates(&db, &r, &[base_query()], 6).unwrap();
        assert!(grown.len() > 1);
        assert!(grown.len() <= 6);
        // All distinct and all correct.
        let mut sqls: Vec<String> = grown.iter().map(|q| q.to_string()).collect();
        let n = sqls.len();
        sqls.sort();
        sqls.dedup();
        assert_eq!(n, sqls.len());
        for q in &grown {
            assert!(evaluate(q, &db).unwrap().bag_equal(&r));
        }
    }

    #[test]
    fn grow_candidates_truncates_oversized_base() {
        let db = db();
        let r = result(&db);
        let grown = grow_candidates(&db, &r, &[base_query(), base_query()], 1).unwrap();
        assert_eq!(grown.len(), 1);
    }
}
