//! # qfe-qbo — candidate-query generation for the QFE reproduction
//!
//! QFE's first stage (Section 4 of the paper) reverse engineers a set of
//! candidate SPJ queries `QC` from the user's example database-result pair
//! `(D, R)`: every `Q ∈ QC` satisfies `Q(D) = R`.  The paper reuses the QBO
//! system of Tran et al. for this; this crate is the from-scratch substitute.
//!
//! The generator enumerates connected join schemas over the database's
//! foreign-key graph, infers candidate projections from the result (by name,
//! falling back to value containment), enumerates selection predicates that
//! separate the joined rows that must be returned from those that must not,
//! and verifies every candidate by evaluation.  [`grow_candidates`]
//! additionally grows a candidate set by perturbing predicate constants — the
//! mechanism the paper uses to scale the candidate count in its Table 6
//! experiment.
//!
//! Verification is *batched*: every candidate enumerated on a join is checked
//! through one [`BatchVerifier`] — a columnar mirror of the join
//! (`qfe_relation::ColumnarJoin`) plus a shared per-(column, op, literal)
//! term-bitmap cache — so a candidate's selection is bitmap algebra over
//! mostly cached bitmaps, wrong-cardinality candidates are rejected without
//! materializing rows, and signature-equal candidates (same projection,
//! same selection bitmap) replay a cached verdict. [`verify_batch`] exposes
//! the same machinery for an externally built frontier (e.g. the constant
//! mutations of [`grow_candidates`], which share one verifier per join
//! schema).
//!
//! ## Example
//!
//! ```
//! use qfe_qbo::QueryGenerator;
//! use qfe_query::{evaluate, parse_sql};
//! use qfe_relation::{tuple, ColumnDef, Database, DataType, Table, TableSchema};
//!
//! let mut db = Database::new();
//! db.add_table(
//!     Table::with_rows(
//!         TableSchema::new(
//!             "Employee",
//!             vec![
//!                 ColumnDef::new("name", DataType::Text),
//!                 ColumnDef::new("dept", DataType::Text),
//!                 ColumnDef::new("salary", DataType::Int),
//!             ],
//!         )
//!         .unwrap(),
//!         vec![
//!             tuple!["Alice", "Sales", 3700i64],
//!             tuple!["Bob", "IT", 4200i64],
//!             tuple!["Darren", "IT", 5000i64],
//!         ],
//!     )
//!     .unwrap(),
//! )
//! .unwrap();
//!
//! let target = parse_sql("SELECT name FROM Employee WHERE salary > 4000").unwrap();
//! let example_result = evaluate(&target, &db).unwrap();
//! let candidates = QueryGenerator::default().generate(&db, &example_result).unwrap();
//! assert!(candidates.len() >= 2); // several queries explain the example
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod generator;
mod join_enum;
mod mutation;
mod predicate_enum;
mod projection;
mod verify;

pub use config::QboConfig;
pub use error::{QboError, Result};
pub use generator::QueryGenerator;
pub use join_enum::connected_table_subsets;
pub use mutation::{
    grow_candidates, grow_candidates_mode, mutate_constants, mutate_constants_mode,
    mutate_operators, mutate_operators_mode,
};
pub use predicate_enum::{enumerate_predicates, split_rows, AttributeSpace, RowSplit};
pub use projection::candidate_projections;
pub use verify::{verify_batch, BatchVerifier, VerifyStats};
