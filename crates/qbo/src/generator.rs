//! The candidate-query generator (the paper's Query Generator module).

use qfe_query::{evaluate_on_join, QueryResult, SpjQuery};
use qfe_relation::{foreign_key_join, Database};

use crate::config::QboConfig;
use crate::error::{QboError, Result};
use crate::join_enum::connected_table_subsets;
use crate::predicate_enum::{enumerate_predicates, split_rows, AttributeSpace};
use crate::projection::candidate_projections;
use crate::verify::{BatchVerifier, VerifyStats};

/// Generates candidate SPJ queries `Q` with `Q(D) = R` from an example
/// database-result pair `(D, R)` — the role the paper delegates to the QBO
/// system of Tran et al. (Section 4).
///
/// The generator enumerates connected join schemas, infers projections,
/// enumerates selection predicates that separate the join's rows into the
/// required positives/negatives and finally *verifies* every candidate by
/// evaluating it against `D` (only verified candidates are returned).
#[derive(Debug, Clone, Default)]
pub struct QueryGenerator {
    config: QboConfig,
}

impl QueryGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: QboConfig) -> Self {
        QueryGenerator { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &QboConfig {
        &self.config
    }

    /// Generates candidate queries for the example pair `(db, result)`.
    ///
    /// Candidates are deduplicated (by their rendered SQL) and capped at
    /// `config.max_candidates`. Returns [`QboError::NoCandidates`] when the
    /// search space contains no verified candidate.
    pub fn generate(&self, db: &Database, result: &QueryResult) -> Result<Vec<SpjQuery>> {
        self.generate_with_stats(db, result).map(|(c, _)| c)
    }

    /// [`Self::generate`] plus the verification counters (candidates checked,
    /// signature-cache replays, rows scanned) — the raw material for the
    /// `qbo-batch` bench scenario.
    pub fn generate_with_stats(
        &self,
        db: &Database,
        result: &QueryResult,
    ) -> Result<(Vec<SpjQuery>, VerifyStats)> {
        if result.is_empty() {
            return Err(QboError::EmptyResult);
        }
        let mut candidates: Vec<SpjQuery> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        let mut saw_projection = false;
        let mut stats = VerifyStats::default();

        for tables in connected_table_subsets(db, self.config.max_join_tables) {
            if candidates.len() >= self.config.max_candidates {
                break;
            }
            let join = match foreign_key_join(db, &tables) {
                Ok(j) => j,
                Err(_) => continue,
            };
            if join.is_empty() {
                continue;
            }
            // One columnar mirror + term-bitmap cache serves every candidate
            // enumerated on this join (built lazily: joins without a usable
            // projection never pay for it).
            let mut verifier: Option<BatchVerifier> = None;
            let space = AttributeSpace::new(&join);
            for projection in
                candidate_projections(&join, result, self.config.infer_projection_by_values)
            {
                // Resolve the projection for the split.
                let proj_idx: Option<Vec<usize>> = projection
                    .iter()
                    .map(|c| join.resolve_column(c).ok())
                    .collect();
                let Some(proj_idx) = proj_idx else { continue };
                saw_projection = true;
                let Some(split) = split_rows(&join, &proj_idx, result) else {
                    continue;
                };
                for predicate in enumerate_predicates(&join, &space, &split, &self.config) {
                    if candidates.len() >= self.config.max_candidates {
                        break;
                    }
                    let query = SpjQuery::new(tables.clone(), projection.clone(), predicate);
                    // Verify against the real evaluator (defence in depth: the
                    // enumeration already checked row membership).
                    let verified = if self.config.columnar_verify {
                        verifier
                            .get_or_insert_with(|| BatchVerifier::new(&join, result))
                            .verify(&join, &query)
                    } else {
                        stats.candidates_checked += 1;
                        stats.rows_scanned += join.len() as u64;
                        matches!(
                            evaluate_on_join(&query, &join), Ok(r) if r.bag_equal(result))
                    };
                    if verified {
                        let key = query.to_string();
                        if seen.insert(key) {
                            candidates.push(query);
                        }
                    }
                }
            }
            if let Some(v) = &verifier {
                stats.absorb(&v.stats());
            }
        }

        if candidates.is_empty() {
            return Err(if saw_projection {
                QboError::NoCandidates
            } else {
                QboError::NoProjection
            });
        }
        // Deterministic order: simple queries first, then lexicographic.
        candidates.sort_by(|a, b| {
            a.complexity()
                .cmp(&b.complexity())
                .then_with(|| a.to_string().cmp(&b.to_string()))
        });
        Ok((candidates, stats))
    }

    /// Generates candidates and guarantees that `target` (which must satisfy
    /// `target(D) = R`) is among them, appending it if the bounded search
    /// missed it. This mirrors the paper's experimental setup where "the
    /// target query in an experiment could be Q or one of the candidate
    /// queries generated from (D, R)".
    pub fn generate_including(
        &self,
        db: &Database,
        result: &QueryResult,
        target: &SpjQuery,
    ) -> Result<Vec<SpjQuery>> {
        let mut candidates = match self.generate(db, result) {
            Ok(c) => c,
            Err(QboError::NoCandidates) | Err(QboError::NoProjection) => Vec::new(),
            Err(e) => return Err(e),
        };
        let target_sql = target.to_string();
        let target_result = qfe_query::evaluate(target, db)?;
        if !target_result.bag_equal(result) {
            return Err(QboError::NoCandidates);
        }
        if !candidates.iter().any(|q| q.to_string() == target_sql) {
            candidates.insert(0, target.clone());
        }
        Ok(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::{evaluate, ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{tuple, ColumnDef, DataType, ForeignKey, Table, TableSchema};

    fn employee_db() -> Database {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        db
    }

    fn bob_darren() -> QueryResult {
        QueryResult::new(
            vec!["name".to_string()],
            vec![tuple!["Bob"], tuple!["Darren"]],
        )
    }

    #[test]
    fn every_generated_candidate_reproduces_the_example_result() {
        let db = employee_db();
        let result = bob_darren();
        let candidates = QueryGenerator::default().generate(&db, &result).unwrap();
        assert!(
            candidates.len() >= 3,
            "found {} candidates",
            candidates.len()
        );
        for q in &candidates {
            let r = evaluate(q, &db).unwrap();
            assert!(r.bag_equal(&result), "candidate {q} does not reproduce R");
        }
    }

    #[test]
    fn example_1_1_candidates_are_found() {
        let db = employee_db();
        let candidates = QueryGenerator::default()
            .generate(&db, &bob_darren())
            .unwrap();
        let rendered: Vec<String> = candidates.iter().map(|q| q.to_string()).collect();
        assert!(
            rendered.iter().any(|s| s.contains("gender = 'M'")),
            "{rendered:#?}"
        );
        assert!(
            rendered.iter().any(|s| s.contains("dept = 'IT'")),
            "{rendered:#?}"
        );
        assert!(
            rendered.iter().any(|s| s.contains("salary >")),
            "{rendered:#?}"
        );
    }

    #[test]
    fn candidates_are_deduplicated_and_ordered() {
        let db = employee_db();
        let candidates = QueryGenerator::default()
            .generate(&db, &bob_darren())
            .unwrap();
        let mut sqls: Vec<String> = candidates.iter().map(|q| q.to_string()).collect();
        let before = sqls.len();
        sqls.dedup();
        assert_eq!(before, sqls.len());
        // Ordered by complexity (number of tables + terms) non-decreasing.
        let complexities: Vec<usize> = candidates.iter().map(|q| q.complexity()).collect();
        let mut sorted = complexities.clone();
        sorted.sort();
        assert_eq!(complexities, sorted);
    }

    #[test]
    fn empty_result_is_rejected() {
        let db = employee_db();
        let empty = QueryResult::empty(vec!["name".to_string()]);
        assert!(matches!(
            QueryGenerator::default().generate(&db, &empty).unwrap_err(),
            QboError::EmptyResult
        ));
    }

    #[test]
    fn unproducible_result_yields_no_projection_or_candidates() {
        let db = employee_db();
        let impossible = QueryResult::new(vec!["name".to_string()], vec![tuple![12345i64]]);
        let err = QueryGenerator::default()
            .generate(&db, &impossible)
            .unwrap_err();
        assert!(matches!(
            err,
            QboError::NoProjection | QboError::NoCandidates
        ));
    }

    #[test]
    fn generate_including_appends_missing_target() {
        let db = employee_db();
        let result = bob_darren();
        // A redundant but correct target query the bounded search would not
        // produce verbatim.
        let target = SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::conjunction(vec![
                Term::eq("gender", "M"),
                Term::compare("salary", ComparisonOp::Gt, 1000i64),
            ]),
        )
        .with_label("target");
        let candidates = QueryGenerator::default()
            .generate_including(&db, &result, &target)
            .unwrap();
        assert!(candidates
            .iter()
            .any(|q| q.label.as_deref() == Some("target")));
        // A target that does not reproduce R is rejected.
        let wrong = SpjQuery::new(
            vec!["Employee"],
            vec!["name"],
            DnfPredicate::single(Term::eq("gender", "F")),
        );
        assert!(QueryGenerator::default()
            .generate_including(&db, &result, &wrong)
            .is_err());
    }

    #[test]
    fn multi_table_generation_over_foreign_keys() {
        // Dept(did, dname) and Emp(eid, did, level): result needs columns from
        // Emp but the separating predicate is on Dept.dname.
        let dept = Table::with_rows(
            TableSchema::new(
                "Dept",
                vec![
                    ColumnDef::new("did", DataType::Int),
                    ColumnDef::new("dname", DataType::Text),
                ],
            )
            .unwrap()
            .with_primary_key(&["did"])
            .unwrap(),
            vec![tuple![1i64, "IT"], tuple![2i64, "Sales"]],
        )
        .unwrap();
        let emp = Table::with_rows(
            TableSchema::new(
                "Emp",
                vec![
                    ColumnDef::new("eid", DataType::Int),
                    ColumnDef::new("did", DataType::Int),
                    ColumnDef::new("level", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["eid"])
            .unwrap(),
            vec![
                tuple![10i64, 1i64, 3i64],
                tuple![11i64, 1i64, 4i64],
                tuple![12i64, 2i64, 3i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(dept).unwrap();
        db.add_table(emp).unwrap();
        db.add_foreign_key(ForeignKey::new("Emp", "did", "Dept", "did"))
            .unwrap();

        let result = QueryResult::new(vec!["eid".to_string()], vec![tuple![10i64], tuple![11i64]]);
        let candidates = QueryGenerator::new(QboConfig::exhaustive())
            .generate(&db, &result)
            .unwrap();
        assert!(!candidates.is_empty());
        // At least one candidate must join both tables and select on dname,
        // and at least one candidate must stay within Emp (eid <= 11 etc.).
        assert!(candidates.iter().any(|q| q.tables.len() == 2));
        assert!(candidates.iter().any(|q| q.tables.len() == 1));
        for q in &candidates {
            assert!(evaluate(q, &db).unwrap().bag_equal(&result));
        }
    }
}
