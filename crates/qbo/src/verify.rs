//! Batched candidate verification over a columnar join.
//!
//! QBO's generate-and-verify pass is the hottest loop of candidate
//! generation: every enumerated predicate becomes a query that must be
//! checked against `Q(D) = R`, and constant mutation multiplies the frontier
//! further. Evaluating each candidate row-at-a-time re-touches every joined
//! row per query.
//!
//! [`BatchVerifier`] verifies the whole frontier against **one**
//! [`ColumnarJoin`]:
//!
//! * each candidate's selection runs as bitmap algebra over the shared
//!   per-(column, op, literal) [`TermBitmapCache`] — the frontier's queries
//!   overwhelmingly share terms (the enumeration derives them from the same
//!   per-attribute analyses; constant mutation perturbs one term at a time),
//!   so most candidates touch no row data at all;
//! * candidates whose selection bitmap has the wrong cardinality are rejected
//!   without materializing a single projected row (bag equality needs equal
//!   cardinality);
//! * results are **deduplicated by projection-bitmap signature**: two
//!   candidates with the same (projection columns, distinct flag, selection
//!   bitmap) produce the same result, so the verdict is computed once and
//!   replayed for every signature-equal candidate.
//!
//! The verdicts are exactly those of
//! [`evaluate_on_join`](qfe_query::evaluate_on_join) followed by
//! [`QueryResult::bag_equal`] — property tests in the workspace root enforce
//! the equivalence on randomized schemas and predicates.

use std::collections::HashMap;

use qfe_query::{BoundQuery, QueryResult, SpjQuery, TermBitmapCache};
use qfe_relation::{Bitmap, CellDelta, ColumnarJoin, JoinedRelation, Value};

/// Counters describing what a [`BatchVerifier`] did — the raw material for
/// the `qbo-batch` bench scenario (candidates/sec, rows scanned).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Candidates checked (including signature-cache replays).
    pub candidates_checked: u64,
    /// Candidates that verified (`Q(D) = R`).
    pub verified: u64,
    /// Verdicts replayed from the projection-bitmap-signature cache.
    pub signature_hits: u64,
    /// Candidates rejected on selection cardinality alone (no rows
    /// materialized).
    pub cardinality_rejects: u64,
    /// Joined rows touched: full column scans for term-bitmap misses plus
    /// selected rows materialized for bag comparison.
    pub rows_scanned: u64,
    /// Term bitmaps served from the cache.
    pub term_bitmap_hits: u64,
    /// Term bitmaps computed (one typed column scan each).
    pub term_bitmap_misses: u64,
    /// Cached term bitmaps repaired in place after a cell patch (one bit
    /// flipped per repair instead of a column scan).
    pub term_bitmap_repairs: u64,
    /// Cached term bitmaps invalidated (stale-epoch recomputes plus wholesale
    /// drops on structural changes).
    pub term_bitmap_invalidations: u64,
}

impl VerifyStats {
    /// Merges another stats block into this one.
    pub fn absorb(&mut self, other: &VerifyStats) {
        self.candidates_checked += other.candidates_checked;
        self.verified += other.verified;
        self.signature_hits += other.signature_hits;
        self.cardinality_rejects += other.cardinality_rejects;
        self.rows_scanned += other.rows_scanned;
        self.term_bitmap_hits += other.term_bitmap_hits;
        self.term_bitmap_misses += other.term_bitmap_misses;
        self.term_bitmap_repairs += other.term_bitmap_repairs;
        self.term_bitmap_invalidations += other.term_bitmap_invalidations;
    }
}

/// The result-determining signature of a candidate on a fixed join: two
/// candidates with equal signatures produce byte-identical results.
type ResultSignature = (Vec<usize>, bool, Bitmap);

/// Verifies many candidate queries against one `(join, expected)` pair. See
/// the module docs.
#[derive(Debug)]
pub struct BatchVerifier {
    columnar: ColumnarJoin,
    cache: TermBitmapCache,
    expected: QueryResult,
    verdicts: HashMap<ResultSignature, bool>,
    stats: VerifyStats,
}

impl BatchVerifier {
    /// Builds a verifier for `join`, checking candidates against `expected`.
    ///
    /// The columnar mirror is built here, once; every subsequent
    /// [`Self::verify`] call runs on bitmaps.
    pub fn new(join: &JoinedRelation, expected: &QueryResult) -> BatchVerifier {
        BatchVerifier {
            columnar: ColumnarJoin::from_join(join),
            cache: TermBitmapCache::new(),
            expected: expected.clone(),
            verdicts: HashMap::new(),
            stats: VerifyStats::default(),
        }
    }

    /// Whether `query` (bound against `join`, the join this verifier was
    /// built from) reproduces the expected result.
    ///
    /// Exactly `evaluate_on_join(query, join)?.bag_equal(expected)`, with a
    /// query that fails to bind counting as unverified.
    pub fn verify(&mut self, join: &JoinedRelation, query: &SpjQuery) -> bool {
        self.stats.candidates_checked += 1;
        let Ok(bound) = BoundQuery::bind(query, join) else {
            return false;
        };
        let misses_before = self.cache.misses();
        let bitmap = bound.selection_bitmap(&self.columnar, &mut self.cache);
        self.stats.rows_scanned +=
            (self.cache.misses() - misses_before) * self.columnar.len() as u64;

        let selected = bitmap.count_ones();
        if !bound.is_distinct() && selected != self.expected.len() {
            // Bag equality requires equal cardinality: reject without
            // materializing anything. (A distinct query's cardinality only
            // emerges after deduplication.)
            self.stats.cardinality_rejects += 1;
            return false;
        }
        let signature: ResultSignature = (
            bound.projection_indices().to_vec(),
            bound.is_distinct(),
            bitmap,
        );
        if let Some(&verdict) = self.verdicts.get(&signature) {
            self.stats.signature_hits += 1;
            if verdict {
                self.stats.verified += 1;
            }
            return verdict;
        }
        self.stats.rows_scanned += selected as u64;
        let result = bound.materialize_selection(join, &signature.2);
        let verdict = result.bag_equal(&self.expected);
        self.verdicts.insert(signature, verdict);
        if verdict {
            self.stats.verified += 1;
        }
        verdict
    }

    /// Verifies a whole frontier in order; `out[i]` is the verdict of
    /// `queries[i]`.
    pub fn verify_batch(&mut self, join: &JoinedRelation, queries: &[SpjQuery]) -> Vec<bool> {
        queries.iter().map(|q| self.verify(join, q)).collect()
    }

    /// The counters accumulated so far. The term-bitmap counters are read off
    /// the live cache, so repairs applied by [`Self::apply_cell_patch`] show
    /// up here too.
    pub fn stats(&self) -> VerifyStats {
        let mut stats = self.stats;
        stats.term_bitmap_hits = self.cache.hits();
        stats.term_bitmap_misses = self.cache.misses();
        stats.term_bitmap_repairs = self.cache.repairs();
        stats.term_bitmap_invalidations = self.cache.invalidations();
        stats
    }

    /// Applies a single-cell edit to the verifier's columnar mirror and
    /// repairs its caches in place.
    ///
    /// The term-bitmap cache flips the one changed bit in every cached bitmap
    /// on the patched column (wholesale invalidation if the patch restructured
    /// the column), and cached verdicts whose projection reads the patched
    /// column are dropped — every other verdict stays valid because its
    /// signature pins the selected rows and its projected columns are
    /// untouched.
    ///
    /// The caller must apply the same edit to the [`JoinedRelation`] it passes
    /// to subsequent [`Self::verify`] calls; `row` and `column` are indices
    /// into that join.
    pub fn apply_cell_patch(&mut self, row: usize, column: usize, value: &Value) -> CellDelta {
        let delta = self.columnar.patch_cell(row, column, value);
        if delta.restructured {
            self.cache.invalidate_all();
        } else {
            self.cache.apply_delta(&delta);
        }
        self.verdicts
            .retain(|(proj, _, _), _| !proj.contains(&delta.column));
        delta
    }

    /// Re-verifies only the candidates that `delta` (from
    /// [`Self::apply_cell_patch`]) can affect; `prior[i]` must be the verdict
    /// of `queries[i]` on the pre-patch state.
    ///
    /// A candidate is unaffected exactly when none of its terms resolves to
    /// the patched column and its projection excludes it: its selection
    /// bitmap and materialized result are then byte-identical to before, so
    /// the prior verdict is replayed without touching the join. Returns the
    /// post-patch verdicts and how many candidates were actually re-verified.
    pub fn reverify_after_patch(
        &mut self,
        join: &JoinedRelation,
        queries: &[SpjQuery],
        prior: &[bool],
        delta: &CellDelta,
    ) -> (Vec<bool>, usize) {
        debug_assert_eq!(queries.len(), prior.len());
        let mut verdicts = Vec::with_capacity(queries.len());
        let mut reverified = 0usize;
        for (query, &was) in queries.iter().zip(prior) {
            let Ok(bound) = BoundQuery::bind(query, join) else {
                // Unbindable before and after: unverified either way.
                verdicts.push(false);
                continue;
            };
            let affected =
                bound.projection_indices().contains(&delta.column)
                    || query.predicate.all_terms().iter().any(|term| {
                        join.resolve_column(term.attribute()).ok() == Some(delta.column)
                    });
            if affected {
                reverified += 1;
                verdicts.push(self.verify(join, query));
            } else {
                verdicts.push(was);
            }
        }
        (verdicts, reverified)
    }

    /// The expected result candidates are checked against.
    pub fn expected(&self) -> &QueryResult {
        &self.expected
    }

    /// Number of distinct result signatures resolved so far.
    pub fn distinct_signatures(&self) -> usize {
        self.verdicts.len()
    }
}

/// Verifies the whole `queries` frontier against one columnar mirror of
/// `join`: `out[i]` is `true` iff `queries[i]` reproduces `expected` on the
/// join. One [`BatchVerifier`] (one [`ColumnarJoin`] build, one shared term
/// cache) serves the entire batch.
pub fn verify_batch(
    join: &JoinedRelation,
    queries: &[SpjQuery],
    expected: &QueryResult,
) -> Vec<bool> {
    BatchVerifier::new(join, expected).verify_batch(join, queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_query::{evaluate_on_join, ComparisonOp, DnfPredicate, Term};
    use qfe_relation::{
        foreign_key_join, tuple, ColumnDef, DataType, Database, Table, TableSchema,
    };

    fn employee_db() -> Database {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("gender", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "F", "Sales", 3700i64],
                tuple![2i64, "Bob", "M", "IT", 4200i64],
                tuple![3i64, "Celina", "F", "Service", 3000i64],
                tuple![4i64, "Darren", "M", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        db
    }

    fn q(pred: DnfPredicate) -> SpjQuery {
        SpjQuery::new(vec!["Employee"], vec!["name"], pred)
    }

    #[test]
    fn verdicts_match_the_row_evaluator() {
        let db = employee_db();
        let join = foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let queries = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
            q(DnfPredicate::single(Term::eq("gender", "F"))),
            q(DnfPredicate::always_true()),
            // Unknown attribute: must count as unverified, not error.
            q(DnfPredicate::single(Term::eq("wage", 1i64))),
        ];
        let expected = evaluate_on_join(&queries[0], &join).unwrap();
        let verdicts = verify_batch(&join, &queries, &expected);
        for (query, &v) in queries.iter().zip(&verdicts) {
            let row_verdict = evaluate_on_join(query, &join)
                .map(|r| r.bag_equal(&expected))
                .unwrap_or(false);
            assert_eq!(v, row_verdict, "{query}");
        }
        assert_eq!(verdicts, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn signature_cache_replays_equal_results() {
        let db = employee_db();
        let join = foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let expected =
            evaluate_on_join(&q(DnfPredicate::single(Term::eq("gender", "M"))), &join).unwrap();
        let mut verifier = BatchVerifier::new(&join, &expected);
        // Three distinct predicates selecting the same rows: one
        // materialization, two signature replays.
        let frontier = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Ge,
                4200i64,
            ))),
        ];
        let verdicts = verifier.verify_batch(&join, &frontier);
        assert_eq!(verdicts, vec![true, true, true]);
        assert_eq!(verifier.distinct_signatures(), 1);
        let stats = verifier.stats();
        assert_eq!(stats.signature_hits, 2);
        assert_eq!(stats.candidates_checked, 3);
        assert_eq!(stats.verified, 3);
        // Re-verifying hits the term cache: no new column scans.
        let scans_before = stats.term_bitmap_misses;
        let _ = verifier.verify_batch(&join, &frontier);
        assert_eq!(verifier.stats().term_bitmap_misses, scans_before);
    }

    #[test]
    fn cardinality_mismatch_rejects_without_materializing() {
        let db = employee_db();
        let join = foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let expected =
            evaluate_on_join(&q(DnfPredicate::single(Term::eq("gender", "M"))), &join).unwrap();
        let mut verifier = BatchVerifier::new(&join, &expected);
        assert!(!verifier.verify(&join, &q(DnfPredicate::always_true())));
        assert_eq!(verifier.stats().cardinality_rejects, 1);
        assert_eq!(verifier.distinct_signatures(), 0);
    }

    #[test]
    fn patched_verifier_matches_fresh_verification() {
        let db = employee_db();
        let mut join = foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let expected =
            evaluate_on_join(&q(DnfPredicate::single(Term::eq("gender", "M"))), &join).unwrap();
        let frontier = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
            q(DnfPredicate::single(Term::eq("dept", "IT"))),
            q(DnfPredicate::single(Term::eq("gender", "F"))),
            q(DnfPredicate::single(Term::eq("wage", 1i64))),
        ];
        let mut verifier = BatchVerifier::new(&join, &expected);
        let prior = verifier.verify_batch(&join, &frontier);
        assert_eq!(prior, vec![true, true, true, false, false]);

        // Demote Bob's salary below the > 4000 threshold: the salary
        // candidate must flip, everything else must replay its prior verdict.
        let salary_col = join.resolve_column("salary").unwrap();
        let bob_row = 1;
        let delta = verifier.apply_cell_patch(bob_row, salary_col, &Value::Int(3900));
        assert_eq!(delta.column, salary_col);
        assert_eq!(delta.old, Value::Int(4200));
        assert!(!delta.restructured);
        join.patch_cell(bob_row, salary_col, Value::Int(3900));

        let (verdicts, reverified) =
            verifier.reverify_after_patch(&join, &frontier, &prior, &delta);
        // Only the salary candidate touches the patched column.
        assert_eq!(reverified, 1);
        assert_eq!(verdicts, vec![true, false, true, false, false]);
        // The narrowed verdicts equal a from-scratch batch on the patched join.
        assert_eq!(verdicts, verify_batch(&join, &frontier, &expected));
        let stats = verifier.stats();
        assert!(stats.term_bitmap_repairs > 0, "{stats:?}");
    }

    #[test]
    fn restructuring_patch_invalidates_and_stays_correct() {
        let db = employee_db();
        let mut join = foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let expected =
            evaluate_on_join(&q(DnfPredicate::single(Term::eq("gender", "M"))), &join).unwrap();
        let frontier = vec![
            q(DnfPredicate::single(Term::eq("gender", "M"))),
            q(DnfPredicate::single(Term::compare(
                "salary",
                ComparisonOp::Gt,
                4000i64,
            ))),
        ];
        let mut verifier = BatchVerifier::new(&join, &expected);
        let prior = verifier.verify_batch(&join, &frontier);
        // A type-violating patch (text into the int salary column) demotes
        // the column to the Mixed fallback: the whole cache drops, yet the
        // narrowed verdicts stay exact.
        let salary_col = join.resolve_column("salary").unwrap();
        let delta = verifier.apply_cell_patch(1, salary_col, &Value::Text("n/a".into()));
        assert!(delta.restructured);
        join.patch_cell(1, salary_col, Value::Text("n/a".into()));
        let (verdicts, _) = verifier.reverify_after_patch(&join, &frontier, &prior, &delta);
        assert_eq!(verdicts, verify_batch(&join, &frontier, &expected));
        assert!(verifier.stats().term_bitmap_invalidations > 0);
    }

    #[test]
    fn patch_drops_only_verdicts_projecting_the_column() {
        let db = employee_db();
        let join = foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let expected =
            evaluate_on_join(&q(DnfPredicate::single(Term::eq("gender", "M"))), &join).unwrap();
        let mut verifier = BatchVerifier::new(&join, &expected);
        verifier.verify(&join, &q(DnfPredicate::single(Term::eq("gender", "M"))));
        let salary_projection = SpjQuery::new(
            vec!["Employee"],
            vec!["salary"],
            DnfPredicate::single(Term::eq("gender", "M")),
        );
        verifier.verify(&join, &salary_projection);
        assert_eq!(verifier.distinct_signatures(), 2);
        let salary_col = join.resolve_column("salary").unwrap();
        verifier.apply_cell_patch(0, salary_col, &Value::Int(3701));
        // The name-projecting verdict survives; the salary-projecting one is
        // dropped because its materialization would now differ.
        assert_eq!(verifier.distinct_signatures(), 1);
    }

    #[test]
    fn distinct_queries_compare_after_deduplication() {
        let db = employee_db();
        let join = foreign_key_join(&db, &["Employee".to_string()]).unwrap();
        let set_query = SpjQuery::new(
            vec!["Employee"],
            vec!["gender"],
            DnfPredicate::always_true(),
        )
        .with_distinct(true);
        let expected = evaluate_on_join(&set_query, &join).unwrap();
        assert_eq!(expected.len(), 2);
        let mut verifier = BatchVerifier::new(&join, &expected);
        assert!(verifier.verify(&join, &set_query));
        // The bag twin (no DISTINCT) has 4 rows: rejected, and its signature
        // is distinct from the set query's.
        let bag_query = SpjQuery::new(
            vec!["Employee"],
            vec!["gender"],
            DnfPredicate::always_true(),
        );
        assert!(!verifier.verify(&join, &bag_query));
    }
}
