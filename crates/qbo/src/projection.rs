//! Inferring the projection list of candidate queries.
//!
//! The example result `R` determines the projection list `ℓ` (Section 5:
//! "since `R` determines the projection list ℓ").  When `R`'s column names
//! resolve against the candidate join those names are used directly; when
//! they do not (anonymous or renamed result columns), candidate projections
//! are inferred by value containment.

use std::collections::BTreeSet;

use qfe_query::QueryResult;
use qfe_relation::{JoinedRelation, Value};

/// Maximum number of value-inferred projection combinations to explore.
const MAX_INFERRED_PROJECTIONS: usize = 16;

/// Returns candidate projection lists (as column references resolvable
/// against `join`) that could produce `result`.
///
/// Name-based matching is attempted first; when every result column resolves
/// against the join, that single projection is returned. Otherwise (and when
/// `by_values` is set) projections are inferred by matching each result
/// column's value set against join columns of a compatible type.
pub fn candidate_projections(
    join: &JoinedRelation,
    result: &QueryResult,
    by_values: bool,
) -> Vec<Vec<String>> {
    // 1. Name-based.
    let mut named = Vec::with_capacity(result.columns().len());
    let mut all_resolved = true;
    for col in result.columns() {
        if join.resolve_column(col).is_ok() {
            named.push(col.clone());
        } else {
            all_resolved = false;
            break;
        }
    }
    if all_resolved && !named.is_empty() {
        return vec![named];
    }
    if !by_values {
        return Vec::new();
    }

    // 2. Value-based: for each result column, the join columns whose active
    //    domain is a superset of the result column's values.
    let mut per_column_candidates: Vec<Vec<usize>> = Vec::new();
    for col_pos in 0..result.arity() {
        let needed: BTreeSet<Value> = result
            .rows()
            .iter()
            .filter_map(|r| r.get(col_pos).cloned())
            .collect();
        let mut candidates = Vec::new();
        for (join_col, _meta) in join.columns().iter().enumerate() {
            let domain: BTreeSet<Value> = join.active_domain(join_col).into_iter().collect();
            if needed.is_subset(&domain) {
                candidates.push(join_col);
            }
        }
        if candidates.is_empty() {
            return Vec::new();
        }
        per_column_candidates.push(candidates);
    }

    // 3. Cartesian product, bounded, rejecting duplicate columns within one
    //    projection.
    let mut projections: Vec<Vec<String>> = Vec::new();
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    for candidates in &per_column_candidates {
        let mut next = Vec::new();
        for partial in &stack {
            for &c in candidates {
                if partial.contains(&c) {
                    continue;
                }
                let mut ext = partial.clone();
                ext.push(c);
                next.push(ext);
                if next.len() >= MAX_INFERRED_PROJECTIONS {
                    break;
                }
            }
            if next.len() >= MAX_INFERRED_PROJECTIONS {
                break;
            }
        }
        stack = next;
        if stack.is_empty() {
            return Vec::new();
        }
    }
    for combo in stack {
        projections.push(
            combo
                .into_iter()
                .map(|i| join.columns()[i].qualified_name())
                .collect(),
        );
    }
    projections
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_relation::{
        foreign_key_join, tuple, ColumnDef, DataType, Database, Table, TableSchema, Tuple,
    };

    fn employee_join() -> JoinedRelation {
        let employee = Table::with_rows(
            TableSchema::new(
                "Employee",
                vec![
                    ColumnDef::new("Eid", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("dept", DataType::Text),
                    ColumnDef::new("salary", DataType::Int),
                ],
            )
            .unwrap()
            .with_primary_key(&["Eid"])
            .unwrap(),
            vec![
                tuple![1i64, "Alice", "Sales", 3700i64],
                tuple![2i64, "Bob", "IT", 4200i64],
                tuple![4i64, "Darren", "IT", 5000i64],
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_table(employee).unwrap();
        foreign_key_join(&db, &["Employee".to_string()]).unwrap()
    }

    #[test]
    fn name_based_projection_wins_when_resolvable() {
        let join = employee_join();
        let r = QueryResult::new(vec!["name".to_string()], vec![tuple!["Bob"]]);
        let projs = candidate_projections(&join, &r, true);
        assert_eq!(projs, vec![vec!["name".to_string()]]);
    }

    #[test]
    fn value_based_projection_finds_matching_columns() {
        let join = employee_join();
        let r = QueryResult::new(
            vec!["anonymous".to_string()],
            vec![tuple!["Bob"], tuple!["Darren"]],
        );
        let projs = candidate_projections(&join, &r, true);
        assert_eq!(projs, vec![vec!["Employee.name".to_string()]]);
    }

    #[test]
    fn value_based_respects_flag_and_absence() {
        let join = employee_join();
        let r = QueryResult::new(vec!["anonymous".to_string()], vec![tuple!["Bob"]]);
        assert!(candidate_projections(&join, &r, false).is_empty());
        let r = QueryResult::new(
            vec!["anonymous".to_string()],
            vec![Tuple::new(vec![Value::Text("Nobody".into())])],
        );
        assert!(candidate_projections(&join, &r, true).is_empty());
    }

    #[test]
    fn multi_column_value_inference_avoids_reusing_a_column() {
        let join = employee_join();
        // Two columns both containing the value "IT": dept is the only source,
        // so a two-column projection cannot reuse it and must pair it with a
        // different column — there is none containing "IT", so no projection.
        let r = QueryResult::new(
            vec!["c1".to_string(), "c2".to_string()],
            vec![tuple!["IT", "IT"]],
        );
        assert!(candidate_projections(&join, &r, true).is_empty());
        // A (name, dept) pair is inferable.
        let r = QueryResult::new(
            vec!["c1".to_string(), "c2".to_string()],
            vec![tuple!["Bob", "IT"]],
        );
        let projs = candidate_projections(&join, &r, true);
        assert!(projs.contains(&vec![
            "Employee.name".to_string(),
            "Employee.dept".to_string()
        ]));
    }

    #[test]
    fn numeric_result_columns_match_numeric_join_columns() {
        let join = employee_join();
        let r = QueryResult::new(
            vec!["x".to_string()],
            vec![tuple![4200i64], tuple![5000i64]],
        );
        let projs = candidate_projections(&join, &r, true);
        assert_eq!(projs, vec![vec!["Employee.salary".to_string()]]);
    }
}
