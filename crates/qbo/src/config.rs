//! Configuration of the candidate-query generator.

/// Bounds on the search space of the QBO-style query generator.
///
/// The paper (Section 4) notes that QBO "provides several configuration
/// parameters to control the search space for equivalent candidate queries,
/// such as the maximum number of selection-predicate attributes, the maximum
/// number of joined relations, the maximum number of selection predicates in
/// each conjunct, etc." and that the authors "configured QBO to generate as
/// many candidate queries as possible". These knobs mirror that interface.
#[derive(Debug, Clone, PartialEq)]
pub struct QboConfig {
    /// Maximum number of relations in a candidate query's join.
    pub max_join_tables: usize,
    /// Maximum number of *distinct* attributes used in selection predicates.
    pub max_selection_attributes: usize,
    /// Maximum number of terms in a single conjunct.
    pub max_terms_per_conjunct: usize,
    /// Maximum number of disjuncts in a DNF predicate.
    pub max_disjuncts: usize,
    /// Hard cap on the number of candidate queries returned.
    pub max_candidates: usize,
    /// Maximum size of an `IN` list synthesized for a categorical attribute.
    pub max_in_list: usize,
    /// Whether to try inferring the projection by value matching when the
    /// result's column names do not resolve against the join.
    pub infer_projection_by_values: bool,
    /// Whether candidate verification runs through the columnar
    /// [`BatchVerifier`](crate::BatchVerifier) (bitmap algebra over a shared
    /// term cache) instead of row-at-a-time evaluation. The two paths accept
    /// byte-identical candidate sets; the row path exists for benchmarking
    /// and differential testing.
    pub columnar_verify: bool,
}

impl Default for QboConfig {
    fn default() -> Self {
        QboConfig {
            max_join_tables: 3,
            max_selection_attributes: 3,
            max_terms_per_conjunct: 4,
            max_disjuncts: 3,
            max_candidates: 64,
            max_in_list: 6,
            infer_projection_by_values: true,
            columnar_verify: true,
        }
    }
}

impl QboConfig {
    /// A generous configuration that favours recall over speed — the setting
    /// the paper used ("generate as many candidate queries as possible").
    pub fn exhaustive() -> Self {
        QboConfig {
            max_join_tables: 4,
            max_selection_attributes: 4,
            max_terms_per_conjunct: 6,
            max_disjuncts: 4,
            max_candidates: 256,
            max_in_list: 10,
            infer_projection_by_values: true,
            columnar_verify: true,
        }
    }

    /// A conservative configuration (few attributes, no disjunctions) — the
    /// paper's footnote 2 suggests starting conservatively and relaxing.
    pub fn conservative() -> Self {
        QboConfig {
            max_join_tables: 2,
            max_selection_attributes: 2,
            max_terms_per_conjunct: 2,
            max_disjuncts: 1,
            max_candidates: 16,
            max_in_list: 4,
            infer_projection_by_values: false,
            columnar_verify: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_between_conservative_and_exhaustive() {
        let d = QboConfig::default();
        let c = QboConfig::conservative();
        let e = QboConfig::exhaustive();
        assert!(c.max_candidates <= d.max_candidates);
        assert!(d.max_candidates <= e.max_candidates);
        assert!(c.max_disjuncts <= d.max_disjuncts);
        assert!(d.max_join_tables <= e.max_join_tables);
    }

    #[test]
    fn configs_are_cloneable_and_comparable() {
        let a = QboConfig::default();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, QboConfig::exhaustive());
    }
}
