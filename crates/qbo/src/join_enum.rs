//! Enumeration of candidate join schemas.
//!
//! A candidate query joins a subset of the database's relations along
//! foreign keys; the subset must be connected in the foreign-key graph for
//! the join to be meaningful. This module enumerates those connected subsets
//! in increasing size.

use qfe_relation::Database;

/// Enumerates the connected subsets of the database's foreign-key graph, up
/// to `max_tables` tables per subset. Subsets are returned in increasing
/// size, each sorted by table name, and the whole list is deterministic.
pub fn connected_table_subsets(db: &Database, max_tables: usize) -> Vec<Vec<String>> {
    let names: Vec<String> = db.table_names().iter().map(|s| s.to_string()).collect();
    let n = names.len();
    let connected = |subset: &[usize]| -> bool {
        if subset.len() <= 1 {
            return true;
        }
        // BFS over foreign keys restricted to the subset.
        let mut visited = vec![false; subset.len()];
        let mut stack = vec![0usize];
        visited[0] = true;
        while let Some(i) = stack.pop() {
            for (j, vis) in visited.iter_mut().enumerate() {
                if !*vis
                    && !db
                        .foreign_keys_between(&names[subset[i]], &names[subset[j]])
                        .is_empty()
                {
                    *vis = true;
                    stack.push(j);
                }
            }
        }
        visited.into_iter().all(|v| v)
    };

    let mut result: Vec<Vec<String>> = Vec::new();
    // Enumerate all subsets via bitmask (databases here have a handful of
    // tables); keep connected ones within the size bound.
    let limit = 1usize << n.min(16);
    let mut by_size: Vec<Vec<Vec<String>>> = vec![Vec::new(); max_tables + 1];
    for mask in 1..limit {
        let subset: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        if subset.is_empty() || subset.len() > max_tables {
            continue;
        }
        if connected(&subset) {
            by_size[subset.len()].push(subset.iter().map(|&i| names[i].clone()).collect());
        }
    }
    for bucket in by_size.into_iter().skip(1) {
        result.extend(bucket);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_relation::{tuple, ColumnDef, DataType, ForeignKey, Table, TableSchema};

    fn chain_db() -> Database {
        // A - B - C chain plus isolated D.
        let mk = |name: &str| {
            Table::with_rows(
                TableSchema::new(
                    name,
                    vec![
                        ColumnDef::new("id", DataType::Int),
                        ColumnDef::new("ref", DataType::Int),
                    ],
                )
                .unwrap()
                .with_primary_key(&["id"])
                .unwrap(),
                vec![tuple![1i64, 1i64]],
            )
            .unwrap()
        };
        let mut db = Database::new();
        for n in ["A", "B", "C", "D"] {
            db.add_table(mk(n)).unwrap();
        }
        db.add_foreign_key(ForeignKey::new("B", "ref", "A", "id"))
            .unwrap();
        db.add_foreign_key(ForeignKey::new("C", "ref", "B", "id"))
            .unwrap();
        db
    }

    #[test]
    fn singletons_always_included() {
        let db = chain_db();
        let subsets = connected_table_subsets(&db, 1);
        assert_eq!(subsets.len(), 4);
        assert!(subsets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn only_connected_pairs_and_triples() {
        let db = chain_db();
        let subsets = connected_table_subsets(&db, 3);
        // size 1: 4; size 2: AB, BC (AC and anything with D are not connected);
        // size 3: ABC only.
        let pairs: Vec<_> = subsets.iter().filter(|s| s.len() == 2).collect();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&&vec!["A".to_string(), "B".to_string()]));
        assert!(pairs.contains(&&vec!["B".to_string(), "C".to_string()]));
        let triples: Vec<_> = subsets.iter().filter(|s| s.len() == 3).collect();
        assert_eq!(
            triples,
            vec![&vec!["A".to_string(), "B".to_string(), "C".to_string()]]
        );
    }

    #[test]
    fn results_ordered_by_size() {
        let db = chain_db();
        let subsets = connected_table_subsets(&db, 3);
        let sizes: Vec<usize> = subsets.iter().map(Vec::len).collect();
        let mut sorted = sizes.clone();
        sorted.sort();
        assert_eq!(sizes, sorted);
    }
}
