//! The single-file append-only log store.
//!
//! One log file holds every record; an in-memory index built by scanning the
//! log at open maps each live key to the byte range of its body. Writes are
//! appends (cheap, crash-friendly: a torn trailing record is truncated away
//! at the next open), reads seek into the file — a parked
//! session occupies no heap beyond its index entry.
//!
//! Record format, one per line:
//!
//! ```text
//! kind <TAB> key <TAB> c=<checksum> <TAB> body <LF>
//! ```
//!
//! `kind` is `p` (parked session), `w` (workload payload) or `d` (session
//! tombstone, body `-`). The checksum is a 128-bit content hash over
//! `kind\tkey\tbody`, so a record whose bytes rot on disk — or whose key
//! and body were spliced together by a partial overwrite — is detected and
//! **quarantined** instead of being served: at open a failing record is
//! dropped from the index (the previous version of the key, if any, stays
//! live), and on every read the body is re-verified so post-open corruption
//! fails just that record, never the host. Records written before the
//! checksum era (three fields, no `c=`) are still readable, just unverified.
//!
//! Bodies are compact `qfe-wire` JSON, which escapes every control
//! character, so a body never contains a literal tab or newline and the
//! framing is unambiguous. Replaced and deleted records stay in the file as
//! garbage; the index only tracks the latest state, and [`LogStore::fsck`]
//! reports how much of the file is garbage, what was quarantined, and what
//! is live.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use qfe_wire::content_hash;

use crate::fsck::{FsckReport, QuarantinedRecord};
use crate::store::{SnapshotStore, StoreError, StoreResult};

/// Index entry: body byte range plus the record checksum (empty for
/// pre-checksum records, which are served unverified).
type Span = (u64, usize, String);

/// Checksum over the identity and content of a record — binding the kind
/// and key prevents a spliced record (valid body under the wrong key) from
/// verifying.
fn record_checksum(kind: &str, key: &str, body: &str) -> String {
    content_hash(&format!("{kind}\t{key}\t{body}"))
}

/// What one scan of the log text produced.
#[derive(Debug, Default)]
struct Scan {
    sessions: HashMap<String, Span>,
    workloads: HashMap<String, Span>,
    /// Full line byte range per live key, for garbage accounting:
    /// `(namespace, key) → line length`.
    live_lines: HashMap<(u8, String), u64>,
    quarantined: Vec<QuarantinedRecord>,
    records: usize,
    torn_at: Option<u64>,
}

/// Parses the whole log text into an index, quarantining every record whose
/// checksum fails. Later records win; a quarantined record does *not*
/// supersede the previous version of its key — serving the last good
/// version beats serving nothing.
fn scan_log(text: &str) -> Scan {
    let mut scan = Scan::default();
    let mut offset = 0u64;
    for line in text.split_inclusive('\n') {
        let line_start = offset;
        offset += line.len() as u64;
        if !line.ends_with('\n') {
            // Torn trailing record — a crash mid-append. The caller
            // truncates it so the next append starts on a fresh line.
            scan.torn_at = Some(line_start);
            break;
        }
        let record = &line[..line.len() - 1];
        let parts: Vec<&str> = record.splitn(4, '\t').collect();
        let (kind, key, checksum, body, body_offset) = match parts.as_slice() {
            [kind, key, sum, body] if sum.starts_with("c=") => {
                let body_offset =
                    line_start + (kind.len() + 1 + key.len() + 1 + sum.len() + 1) as u64;
                (*kind, *key, &sum[2..], *body, body_offset)
            }
            // Pre-checksum record: kind, key, body (body has no tabs, so a
            // three-way split is exact).
            [kind, key, body] => {
                let body_offset = line_start + (kind.len() + 1 + key.len() + 1) as u64;
                (*kind, *key, "", *body, body_offset)
            }
            // Malformed line (hand-edited file): skip it rather than
            // refuse to open — later records may still be fine.
            _ => continue,
        };
        scan.records += 1;
        if !checksum.is_empty() && record_checksum(kind, key, body) != checksum {
            scan.quarantined.push(QuarantinedRecord {
                namespace: if kind == "w" { "workloads" } else { "sessions" }.to_string(),
                key: key.to_string(),
                location: format!("offset {line_start}"),
                reason: "checksum mismatch".to_string(),
            });
            continue;
        }
        let span = (body_offset, body.len(), checksum.to_string());
        match kind {
            "p" => {
                scan.sessions.insert(key.to_string(), span);
                scan.live_lines
                    .insert((0, key.to_string()), line.len() as u64);
            }
            // Content-addressed: the first write of a hash wins.
            "w" if !scan.workloads.contains_key(key) => {
                scan.workloads.insert(key.to_string(), span);
                scan.live_lines
                    .insert((1, key.to_string()), line.len() as u64);
            }
            "d" => {
                scan.sessions.remove(key);
                scan.live_lines.remove(&(0, key.to_string()));
            }
            _ => {}
        }
    }
    scan
}

#[derive(Debug)]
struct LogInner {
    file: File,
    /// Key → body span for live parked sessions.
    sessions: HashMap<String, Span>,
    /// Hash → body span for stored workloads.
    workloads: HashMap<String, Span>,
    /// Records dropped from the index because their bytes fail
    /// verification — at open or on a later read.
    quarantined: Vec<QuarantinedRecord>,
    /// End-of-file offset where the next record will land.
    end: u64,
}

/// [`SnapshotStore`] backed by one append-only log file.
#[derive(Debug)]
pub struct LogStore {
    path: PathBuf,
    inner: Mutex<LogInner>,
}

impl LogStore {
    /// Opens (or creates) the log at `path` and rebuilds the index by
    /// scanning it. A torn trailing record — a crash mid-append — is
    /// truncated away so subsequent appends start on a fresh line; a record
    /// whose checksum fails is quarantined (see [`LogStore::fsck`]).
    pub fn open(path: impl AsRef<Path>) -> StoreResult<LogStore> {
        let path = path.as_ref().to_path_buf();
        let ctx = || format!("open log {}", path.display());
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| StoreError::new(ctx(), e))?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::new(ctx(), e))?;
        let mut text = String::new();
        file.seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::new(ctx(), e))?;
        file.read_to_string(&mut text)
            .map_err(|e| StoreError::new(ctx(), e))?;

        let scan = scan_log(&text);
        let mut end = text.len() as u64;
        if let Some(torn_start) = scan.torn_at {
            file.set_len(torn_start)
                .map_err(|e| StoreError::new(ctx(), e))?;
            end = torn_start;
        }
        Ok(LogStore {
            path,
            inner: Mutex::new(LogInner {
                file,
                sessions: scan.sessions,
                workloads: scan.workloads,
                quarantined: scan.quarantined,
                end,
            }),
        })
    }

    /// The path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records quarantined so far — at open or by read-time verification.
    pub fn quarantined(&self) -> Vec<QuarantinedRecord> {
        self.inner
            .lock()
            .expect("log store lock poisoned")
            .quarantined
            .clone()
    }

    /// Rescans the whole log, re-verifying every record checksum, and
    /// repairs the in-memory index to the verified state: damaged records
    /// are quarantined (later reads are clean misses, or serve the previous
    /// good version of the key). Returns the recovery report.
    pub fn fsck(&self) -> StoreResult<FsckReport> {
        let ctx = || format!("fsck log {}", self.path.display());
        let mut inner = self.inner.lock().expect("log store lock poisoned");
        let mut text = String::new();
        inner
            .file
            .seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::new(ctx(), e))?;
        inner
            .file
            .read_to_string(&mut text)
            .map_err(|e| StoreError::new(ctx(), e))?;
        let scan = scan_log(&text);
        let live_bytes: u64 = scan.live_lines.values().sum();
        let torn_bytes = scan
            .torn_at
            .map(|start| text.len() as u64 - start)
            .unwrap_or(0);
        let report = FsckReport {
            backend: "log",
            records_scanned: scan.records,
            live_sessions: scan.sessions.len(),
            live_workloads: scan.workloads.len(),
            quarantined: scan.quarantined.clone(),
            torn_tail_bytes: torn_bytes,
            garbage_bytes: (text.len() as u64).saturating_sub(live_bytes + torn_bytes),
            reclaimed_tmp_files: 0,
        };
        inner.sessions = scan.sessions;
        inner.workloads = scan.workloads;
        inner.quarantined = scan.quarantined;
        Ok(report)
    }

    fn check_key(&self, context: &str, key: &str) -> StoreResult<()> {
        if key.is_empty() || key.contains('\t') || key.contains('\n') {
            return Err(StoreError::new(
                format!("{context} {}", self.path.display()),
                format!("invalid key {key:?}: must be non-empty without tab/newline"),
            ));
        }
        Ok(())
    }

    fn append(
        &self,
        inner: &mut LogInner,
        context: &str,
        kind: &str,
        key: &str,
        body: &str,
    ) -> StoreResult<Span> {
        if body.contains('\n') || body.contains('\t') {
            return Err(StoreError::new(
                context.to_string(),
                "record body may not contain raw tab/newline (wire JSON escapes them)",
            ));
        }
        let checksum = record_checksum(kind, key, body);
        let record = format!("{kind}\t{key}\tc={checksum}\t{body}\n");
        inner
            .file
            .write_all(record.as_bytes())
            .map_err(|e| StoreError::new(context.to_string(), e))?;
        let body_offset =
            inner.end + (kind.len() + 1 + key.len() + 1 + 2 + checksum.len() + 1) as u64;
        inner.end += record.len() as u64;
        Ok((body_offset, body.len(), checksum))
    }

    /// Reads a record body and verifies it against the indexed checksum. A
    /// mismatch — the bytes changed under us since the index was built —
    /// quarantines the record (subsequent reads are clean misses) and fails
    /// only this call.
    fn read_verified(
        &self,
        inner: &mut LogInner,
        context: &str,
        kind: &str,
        key: &str,
        span: &Span,
    ) -> StoreResult<String> {
        let (offset, len, checksum) = span;
        inner
            .file
            .seek(SeekFrom::Start(*offset))
            .map_err(|e| StoreError::new(context.to_string(), e))?;
        let mut buf = vec![0u8; *len];
        inner
            .file
            .read_exact(&mut buf)
            .map_err(|e| StoreError::new(context.to_string(), e))?;
        let body = String::from_utf8(buf)
            .map_err(|e| StoreError::new(context.to_string(), format!("record not UTF-8: {e}")))?;
        if !checksum.is_empty() && record_checksum(kind, key, &body) != *checksum {
            let namespace = if kind == "w" { "workloads" } else { "sessions" };
            inner.quarantined.push(QuarantinedRecord {
                namespace: namespace.to_string(),
                key: key.to_string(),
                location: format!("offset {offset}"),
                reason: "checksum mismatch on read".to_string(),
            });
            if kind == "w" {
                inner.workloads.remove(key);
            } else {
                inner.sessions.remove(key);
            }
            return Err(StoreError::new(
                context.to_string(),
                "record checksum mismatch (quarantined)",
            ));
        }
        Ok(body)
    }
}

impl SnapshotStore for LogStore {
    fn put_session(&self, key: &str, text: &str) -> StoreResult<()> {
        let context = format!("put_session {key}");
        self.check_key(&context, key)?;
        let mut inner = self.inner.lock().expect("log store lock poisoned");
        let span = self.append(&mut inner, &context, "p", key, text)?;
        inner.sessions.insert(key.to_string(), span);
        Ok(())
    }

    fn get_session(&self, key: &str) -> StoreResult<Option<String>> {
        let context = format!("get_session {key}");
        let mut inner = self.inner.lock().expect("log store lock poisoned");
        match inner.sessions.get(key).cloned() {
            None => Ok(None),
            Some(span) => Ok(Some(
                self.read_verified(&mut inner, &context, "p", key, &span)?,
            )),
        }
    }

    fn remove_session(&self, key: &str) -> StoreResult<bool> {
        let context = format!("remove_session {key}");
        self.check_key(&context, key)?;
        let mut inner = self.inner.lock().expect("log store lock poisoned");
        if inner.sessions.remove(key).is_none() {
            return Ok(false);
        }
        self.append(&mut inner, &context, "d", key, "-")?;
        Ok(true)
    }

    fn session_keys(&self) -> StoreResult<Vec<String>> {
        let inner = self.inner.lock().expect("log store lock poisoned");
        let mut keys: Vec<String> = inner.sessions.keys().cloned().collect();
        keys.sort();
        Ok(keys)
    }

    fn put_workload(&self, hash: &str, text: &str) -> StoreResult<()> {
        let context = format!("put_workload {hash}");
        self.check_key(&context, hash)?;
        let mut inner = self.inner.lock().expect("log store lock poisoned");
        if inner.workloads.contains_key(hash) {
            return Ok(()); // content-addressed: identical by construction
        }
        let span = self.append(&mut inner, &context, "w", hash, text)?;
        inner.workloads.insert(hash.to_string(), span);
        Ok(())
    }

    fn get_workload(&self, hash: &str) -> StoreResult<Option<String>> {
        let context = format!("get_workload {hash}");
        let mut inner = self.inner.lock().expect("log store lock poisoned");
        match inner.workloads.get(hash).cloned() {
            None => Ok(None),
            Some(span) => Ok(Some(
                self.read_verified(&mut inner, &context, "w", hash, &span)?,
            )),
        }
    }

    fn has_workload(&self, hash: &str) -> StoreResult<bool> {
        let inner = self.inner.lock().expect("log store lock poisoned");
        Ok(inner.workloads.contains_key(hash))
    }

    fn workload_hashes(&self) -> StoreResult<Vec<String>> {
        let inner = self.inner.lock().expect("log store lock poisoned");
        let mut hashes: Vec<String> = inner.workloads.keys().cloned().collect();
        hashes.sort();
        Ok(hashes)
    }

    fn backend_name(&self) -> &'static str {
        "log"
    }

    fn fsck(&self) -> StoreResult<FsckReport> {
        LogStore::fsck(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qfe-snapstore-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("store.log")
    }

    #[test]
    fn log_survives_reopen() {
        let path = temp_log("reopen");
        {
            let store = LogStore::open(&path).unwrap();
            store.put_session("s1", "{\"v\":1}").unwrap();
            store.put_session("s2", "{\"v\":2}").unwrap();
            store.put_session("s1", "{\"v\":3}").unwrap(); // replace
            store.put_workload("abc", "{\"w\":true}").unwrap();
            assert!(store.remove_session("s2").unwrap());
        }
        // A fresh handle on the same path — a "process restart" — sees the
        // latest state: s1 replaced, s2 tombstoned, workload intact.
        let store = LogStore::open(&path).unwrap();
        assert_eq!(store.get_session("s1").unwrap().unwrap(), "{\"v\":3}");
        assert_eq!(store.get_session("s2").unwrap(), None);
        assert_eq!(store.session_keys().unwrap(), vec!["s1"]);
        assert_eq!(store.get_workload("abc").unwrap().unwrap(), "{\"w\":true}");
        assert_eq!(store.workload_hashes().unwrap(), vec!["abc"]);
        assert_eq!(store.path(), path.as_path());
        assert_eq!(store.backend_name(), "log");
    }

    #[test]
    fn torn_trailing_record_is_neutralized() {
        let path = temp_log("torn");
        {
            let store = LogStore::open(&path).unwrap();
            store.put_session("s1", "{\"v\":1}").unwrap();
        }
        // Simulate a crash mid-append: a record without the trailing newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"p\ts2\t{\"v\":2").unwrap();
        }
        let store = LogStore::open(&path).unwrap();
        assert_eq!(store.get_session("s1").unwrap().unwrap(), "{\"v\":1}");
        assert_eq!(
            store.get_session("s2").unwrap(),
            None,
            "torn record ignored"
        );
        // New appends land on a fresh line, not glued to the torn record.
        store.put_session("s3", "{\"v\":3}").unwrap();
        let reopened = LogStore::open(&path).unwrap();
        assert_eq!(reopened.get_session("s3").unwrap().unwrap(), "{\"v\":3}");
        assert_eq!(reopened.session_keys().unwrap(), vec!["s1", "s3"]);
    }

    #[test]
    fn keys_and_bodies_are_validated() {
        let path = temp_log("validate");
        let store = LogStore::open(&path).unwrap();
        assert!(store.put_session("has\ttab", "{}").is_err());
        assert!(store.put_session("", "{}").is_err());
        let err = store.put_session("ok", "line\nbreak").unwrap_err();
        assert!(err.to_string().contains("put_session ok"));
        assert!(!store.remove_session("missing").unwrap());
    }

    #[test]
    fn workload_put_is_idempotent_across_reopen() {
        let path = temp_log("workload");
        {
            let store = LogStore::open(&path).unwrap();
            store.put_workload("h1", "payload").unwrap();
            store.put_workload("h1", "ignored").unwrap();
        }
        let store = LogStore::open(&path).unwrap();
        assert_eq!(store.get_workload("h1").unwrap().unwrap(), "payload");
        store.put_workload("h1", "still-ignored").unwrap();
        assert_eq!(store.get_workload("h1").unwrap().unwrap(), "payload");
        assert!(store.has_workload("h1").unwrap());
        assert!(!store.has_workload("h2").unwrap());
    }

    /// Flips one byte inside the *body* of the record holding `needle`.
    fn corrupt_body_byte(path: &Path, needle: &str) {
        let mut bytes = std::fs::read(path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let at = text.find(needle).expect("needle present in log");
        bytes[at] ^= 0x20; // flip case / perturb the byte
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn corruption_at_open_quarantines_only_the_damaged_record() {
        let path = temp_log("open-quarantine");
        {
            let store = LogStore::open(&path).unwrap();
            store.put_session("good", "{\"v\":\"keepme\"}").unwrap();
            store.put_session("bad", "{\"v\":\"rotten\"}").unwrap();
        }
        corrupt_body_byte(&path, "rotten");
        let store = LogStore::open(&path).unwrap();
        // The damaged record is quarantined: a clean miss, not an error, and
        // the undamaged record still serves.
        assert_eq!(store.get_session("bad").unwrap(), None);
        assert_eq!(
            store.get_session("good").unwrap().unwrap(),
            "{\"v\":\"keepme\"}"
        );
        let quarantined = store.quarantined();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].key, "bad");
        assert!(quarantined[0].reason.contains("checksum"));
    }

    #[test]
    fn corrupt_replacement_falls_back_to_last_good_version() {
        let path = temp_log("last-good");
        {
            let store = LogStore::open(&path).unwrap();
            store.put_session("s1", "{\"v\":\"first\"}").unwrap();
            store.put_session("s1", "{\"v\":\"second\"}").unwrap();
        }
        corrupt_body_byte(&path, "second");
        // The corrupt replacement is quarantined; the previous good version
        // of the key is served instead of nothing.
        let store = LogStore::open(&path).unwrap();
        assert_eq!(
            store.get_session("s1").unwrap().unwrap(),
            "{\"v\":\"first\"}"
        );
        assert_eq!(store.quarantined().len(), 1);
    }

    #[test]
    fn read_path_verifies_checksums_and_fails_one_record() {
        let path = temp_log("read-verify");
        let store = LogStore::open(&path).unwrap();
        store.put_session("s1", "{\"v\":\"alpha\"}").unwrap();
        store.put_session("s2", "{\"v\":\"betaa\"}").unwrap();
        // Corrupt s1's body *after* the index was built: only read-time
        // verification can catch this.
        corrupt_body_byte(&path, "alpha");
        let err = store.get_session("s1").unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // The record self-quarantined: the next read is a clean miss, and
        // the sibling record is untouched.
        assert_eq!(store.get_session("s1").unwrap(), None);
        assert_eq!(
            store.get_session("s2").unwrap().unwrap(),
            "{\"v\":\"betaa\"}"
        );
        assert_eq!(store.quarantined().len(), 1);
        assert!(store.quarantined()[0].reason.contains("on read"));
    }

    #[test]
    fn fsck_reports_garbage_quarantine_and_live_counts() {
        let path = temp_log("fsck");
        let store = LogStore::open(&path).unwrap();
        store.put_session("s1", "{\"v\":1}").unwrap();
        store.put_session("s1", "{\"v\":2}").unwrap(); // supersedes → garbage
        store.put_session("s2", "{\"v\":\"target\"}").unwrap();
        store.put_workload("w1", "{\"w\":1}").unwrap();
        store.remove_session("s1").unwrap(); // tombstone + garbage
        let clean = store.fsck().unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.backend, "log");
        assert_eq!(clean.live_sessions, 1);
        assert_eq!(clean.live_workloads, 1);
        assert_eq!(clean.records_scanned, 5);
        assert!(clean.garbage_bytes > 0, "superseded records are garbage");

        // Rot a live record on disk; fsck quarantines it and repairs the
        // index so the next read is a clean miss.
        corrupt_body_byte(&path, "target");
        let report = store.fsck().unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].key, "s2");
        assert_eq!(report.live_sessions, 0);
        assert_eq!(store.get_session("s2").unwrap(), None);
        assert!(report.to_string().contains("sessions/s2"));
    }

    #[test]
    fn legacy_records_without_checksums_still_serve() {
        let path = temp_log("legacy");
        std::fs::write(&path, "p\told\t{\"v\":\"legacy\"}\n").unwrap();
        let store = LogStore::open(&path).unwrap();
        assert_eq!(
            store.get_session("old").unwrap().unwrap(),
            "{\"v\":\"legacy\"}"
        );
        // New writes get checksums; both formats coexist in one file.
        store.put_session("new", "{\"v\":\"fresh\"}").unwrap();
        let reopened = LogStore::open(&path).unwrap();
        assert_eq!(reopened.session_keys().unwrap(), vec!["new", "old"]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\tc="), "new records carry checksums");
    }
}
