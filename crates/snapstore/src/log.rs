//! The single-file append-only log store.
//!
//! One log file holds every record; an in-memory index built by scanning the
//! log at open maps each live key to the byte range of its body. Writes are
//! appends (cheap, crash-friendly: a torn trailing record is truncated away
//! at the next open), reads seek into the file — a parked
//! session occupies no heap beyond its index entry.
//!
//! Record format, one per line:
//!
//! ```text
//! kind <TAB> key <TAB> body <LF>
//! ```
//!
//! `kind` is `p` (parked session), `w` (workload payload) or `d` (session
//! tombstone, body `-`). Bodies are compact `qfe-wire` JSON, which escapes
//! every control character, so a body never contains a literal tab or
//! newline and the framing is unambiguous. Replaced and deleted records stay
//! in the file as garbage; the index only tracks the latest state.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::store::{SnapshotStore, StoreError, StoreResult};

#[derive(Debug)]
struct LogInner {
    file: File,
    /// Key → (body offset, body length) for live parked sessions.
    sessions: HashMap<String, (u64, usize)>,
    /// Hash → (body offset, body length) for stored workloads.
    workloads: HashMap<String, (u64, usize)>,
    /// End-of-file offset where the next record will land.
    end: u64,
}

/// [`SnapshotStore`] backed by one append-only log file.
#[derive(Debug)]
pub struct LogStore {
    path: PathBuf,
    inner: Mutex<LogInner>,
}

impl LogStore {
    /// Opens (or creates) the log at `path` and rebuilds the index by
    /// scanning it. A torn trailing record — a crash mid-append — is
    /// truncated away so subsequent appends start on a fresh line.
    pub fn open(path: impl AsRef<Path>) -> StoreResult<LogStore> {
        let path = path.as_ref().to_path_buf();
        let ctx = || format!("open log {}", path.display());
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| StoreError::new(ctx(), e))?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::new(ctx(), e))?;
        let mut text = String::new();
        file.seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::new(ctx(), e))?;
        file.read_to_string(&mut text)
            .map_err(|e| StoreError::new(ctx(), e))?;

        let mut sessions = HashMap::new();
        let mut workloads = HashMap::new();
        let mut offset = 0u64;
        let mut torn_at = None;
        for line in text.split_inclusive('\n') {
            let line_start = offset;
            offset += line.len() as u64;
            if !line.ends_with('\n') {
                // Torn trailing record — a crash mid-append. Truncating it
                // below keeps the next append from concatenating onto the
                // garbage, and keeps a later open from mistaking the
                // newline-terminated garbage for a real record.
                torn_at = Some(line_start);
                break;
            }
            let record = &line[..line.len() - 1];
            let mut parts = record.splitn(3, '\t');
            let (kind, key, body) = match (parts.next(), parts.next(), parts.next()) {
                (Some(k), Some(key), Some(body)) => (k, key, body),
                // Malformed line (hand-edited file): skip it rather than
                // refuse to open — later records may still be fine.
                _ => continue,
            };
            let body_offset = line_start + (kind.len() + 1 + key.len() + 1) as u64;
            match kind {
                "p" => {
                    sessions.insert(key.to_string(), (body_offset, body.len()));
                }
                "w" => {
                    workloads
                        .entry(key.to_string())
                        .or_insert((body_offset, body.len()));
                }
                "d" => {
                    sessions.remove(key);
                }
                _ => {}
            }
        }
        let mut end = text.len() as u64;
        if let Some(torn_start) = torn_at {
            file.set_len(torn_start)
                .map_err(|e| StoreError::new(ctx(), e))?;
            end = torn_start;
        }
        Ok(LogStore {
            path,
            inner: Mutex::new(LogInner {
                file,
                sessions,
                workloads,
                end,
            }),
        })
    }

    /// The path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn check_key(&self, context: &str, key: &str) -> StoreResult<()> {
        if key.is_empty() || key.contains('\t') || key.contains('\n') {
            return Err(StoreError::new(
                format!("{context} {}", self.path.display()),
                format!("invalid key {key:?}: must be non-empty without tab/newline"),
            ));
        }
        Ok(())
    }

    fn append(
        &self,
        inner: &mut LogInner,
        context: &str,
        kind: &str,
        key: &str,
        body: &str,
    ) -> StoreResult<(u64, usize)> {
        if body.contains('\n') || body.contains('\t') {
            return Err(StoreError::new(
                context.to_string(),
                "record body may not contain raw tab/newline (wire JSON escapes them)",
            ));
        }
        let record = format!("{kind}\t{key}\t{body}\n");
        inner
            .file
            .write_all(record.as_bytes())
            .map_err(|e| StoreError::new(context.to_string(), e))?;
        let body_offset = inner.end + (kind.len() + 1 + key.len() + 1) as u64;
        inner.end += record.len() as u64;
        Ok((body_offset, body.len()))
    }

    fn read_at(
        &self,
        inner: &mut LogInner,
        context: &str,
        span: (u64, usize),
    ) -> StoreResult<String> {
        let (offset, len) = span;
        inner
            .file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::new(context.to_string(), e))?;
        let mut buf = vec![0u8; len];
        inner
            .file
            .read_exact(&mut buf)
            .map_err(|e| StoreError::new(context.to_string(), e))?;
        String::from_utf8(buf)
            .map_err(|e| StoreError::new(context.to_string(), format!("record not UTF-8: {e}")))
    }
}

impl SnapshotStore for LogStore {
    fn put_session(&self, key: &str, text: &str) -> StoreResult<()> {
        let context = format!("put_session {key}");
        self.check_key(&context, key)?;
        let mut inner = self.inner.lock().expect("log store lock poisoned");
        let span = self.append(&mut inner, &context, "p", key, text)?;
        inner.sessions.insert(key.to_string(), span);
        Ok(())
    }

    fn get_session(&self, key: &str) -> StoreResult<Option<String>> {
        let context = format!("get_session {key}");
        let mut inner = self.inner.lock().expect("log store lock poisoned");
        match inner.sessions.get(key).copied() {
            None => Ok(None),
            Some(span) => Ok(Some(self.read_at(&mut inner, &context, span)?)),
        }
    }

    fn remove_session(&self, key: &str) -> StoreResult<bool> {
        let context = format!("remove_session {key}");
        self.check_key(&context, key)?;
        let mut inner = self.inner.lock().expect("log store lock poisoned");
        if inner.sessions.remove(key).is_none() {
            return Ok(false);
        }
        self.append(&mut inner, &context, "d", key, "-")?;
        Ok(true)
    }

    fn session_keys(&self) -> StoreResult<Vec<String>> {
        let inner = self.inner.lock().expect("log store lock poisoned");
        let mut keys: Vec<String> = inner.sessions.keys().cloned().collect();
        keys.sort();
        Ok(keys)
    }

    fn put_workload(&self, hash: &str, text: &str) -> StoreResult<()> {
        let context = format!("put_workload {hash}");
        self.check_key(&context, hash)?;
        let mut inner = self.inner.lock().expect("log store lock poisoned");
        if inner.workloads.contains_key(hash) {
            return Ok(()); // content-addressed: identical by construction
        }
        let span = self.append(&mut inner, &context, "w", hash, text)?;
        inner.workloads.insert(hash.to_string(), span);
        Ok(())
    }

    fn get_workload(&self, hash: &str) -> StoreResult<Option<String>> {
        let context = format!("get_workload {hash}");
        let mut inner = self.inner.lock().expect("log store lock poisoned");
        match inner.workloads.get(hash).copied() {
            None => Ok(None),
            Some(span) => Ok(Some(self.read_at(&mut inner, &context, span)?)),
        }
    }

    fn has_workload(&self, hash: &str) -> StoreResult<bool> {
        let inner = self.inner.lock().expect("log store lock poisoned");
        Ok(inner.workloads.contains_key(hash))
    }

    fn workload_hashes(&self) -> StoreResult<Vec<String>> {
        let inner = self.inner.lock().expect("log store lock poisoned");
        let mut hashes: Vec<String> = inner.workloads.keys().cloned().collect();
        hashes.sort();
        Ok(hashes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qfe-snapstore-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("store.log")
    }

    #[test]
    fn log_survives_reopen() {
        let path = temp_log("reopen");
        {
            let store = LogStore::open(&path).unwrap();
            store.put_session("s1", "{\"v\":1}").unwrap();
            store.put_session("s2", "{\"v\":2}").unwrap();
            store.put_session("s1", "{\"v\":3}").unwrap(); // replace
            store.put_workload("abc", "{\"w\":true}").unwrap();
            assert!(store.remove_session("s2").unwrap());
        }
        // A fresh handle on the same path — a "process restart" — sees the
        // latest state: s1 replaced, s2 tombstoned, workload intact.
        let store = LogStore::open(&path).unwrap();
        assert_eq!(store.get_session("s1").unwrap().unwrap(), "{\"v\":3}");
        assert_eq!(store.get_session("s2").unwrap(), None);
        assert_eq!(store.session_keys().unwrap(), vec!["s1"]);
        assert_eq!(store.get_workload("abc").unwrap().unwrap(), "{\"w\":true}");
        assert_eq!(store.workload_hashes().unwrap(), vec!["abc"]);
        assert_eq!(store.path(), path.as_path());
    }

    #[test]
    fn torn_trailing_record_is_neutralized() {
        let path = temp_log("torn");
        {
            let store = LogStore::open(&path).unwrap();
            store.put_session("s1", "{\"v\":1}").unwrap();
        }
        // Simulate a crash mid-append: a record without the trailing newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"p\ts2\t{\"v\":2").unwrap();
        }
        let store = LogStore::open(&path).unwrap();
        assert_eq!(store.get_session("s1").unwrap().unwrap(), "{\"v\":1}");
        assert_eq!(
            store.get_session("s2").unwrap(),
            None,
            "torn record ignored"
        );
        // New appends land on a fresh line, not glued to the torn record.
        store.put_session("s3", "{\"v\":3}").unwrap();
        let reopened = LogStore::open(&path).unwrap();
        assert_eq!(reopened.get_session("s3").unwrap().unwrap(), "{\"v\":3}");
        assert_eq!(reopened.session_keys().unwrap(), vec!["s1", "s3"]);
    }

    #[test]
    fn keys_and_bodies_are_validated() {
        let path = temp_log("validate");
        let store = LogStore::open(&path).unwrap();
        assert!(store.put_session("has\ttab", "{}").is_err());
        assert!(store.put_session("", "{}").is_err());
        let err = store.put_session("ok", "line\nbreak").unwrap_err();
        assert!(err.to_string().contains("put_session ok"));
        assert!(!store.remove_session("missing").unwrap());
    }

    #[test]
    fn workload_put_is_idempotent_across_reopen() {
        let path = temp_log("workload");
        {
            let store = LogStore::open(&path).unwrap();
            store.put_workload("h1", "payload").unwrap();
            store.put_workload("h1", "ignored").unwrap();
        }
        let store = LogStore::open(&path).unwrap();
        assert_eq!(store.get_workload("h1").unwrap().unwrap(), "payload");
        store.put_workload("h1", "still-ignored").unwrap();
        assert_eq!(store.get_workload("h1").unwrap().unwrap(), "payload");
        assert!(store.has_workload("h1").unwrap());
        assert!(!store.has_workload("h2").unwrap());
    }
}
