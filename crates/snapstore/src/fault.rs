//! Deterministic fault injection for snapshot stores.
//!
//! [`FaultyStore`] wraps any [`SnapshotStore`] and injects faults scripted
//! by a serializable [`FaultPlan`]: I/O errors, torn (partial) writes,
//! stale reads, and latency. Every decision is a pure function of the plan
//! — its seed and per-rule counters — so a failing chaos run replays
//! byte-for-byte from the plan alone. This is the CI-facing half of the
//! robustness story: every failure mode the service claims to survive is
//! provoked here on purpose, under a pinned seed, instead of waiting to be
//! discovered in production.
//!
//! The wrapper stays a faithful [`SnapshotStore`]: when no rule fires, every
//! call passes straight through to the inner store.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use qfe_wire::{Json, WireError, WireResult};

use crate::fsck::FsckReport;
use crate::store::{SnapshotStore, StoreError, StoreResult};

/// What an injected fault does to the intercepted operation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Fail the operation with an injected I/O error. Writes do not reach
    /// the inner store; the caller must treat the operation as not applied.
    Error,
    /// Write only a prefix of the record body (a "torn" write) and then
    /// fail. The inner store holds a truncated record — exactly what a
    /// crash mid-write leaves behind one layer up from the file system.
    /// `keep` is the fraction of the body that lands, in `[0, 1]`.
    Torn {
        /// Fraction of the body bytes that reach the inner store.
        keep: f64,
    },
    /// Serve the *previous* value of the key instead of the current one —
    /// a replica that has not caught up. Falls through to a normal read
    /// when the key was never overwritten.
    StaleRead,
    /// Delay the operation, then let it proceed normally.
    Latency {
        /// How long the operation stalls before proceeding.
        millis: u64,
    },
}

impl FaultAction {
    fn name(&self) -> &'static str {
        match self {
            FaultAction::Error => "error",
            FaultAction::Torn { .. } => "torn",
            FaultAction::StaleRead => "stale_read",
            FaultAction::Latency { .. } => "latency",
        }
    }
}

/// When a matching operation actually triggers the rule.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultTrigger {
    /// Fire on exactly the `n`-th matching call (1-based), once.
    Nth(u64),
    /// Fire on every `n`-th matching call (the `n`-th, `2n`-th, …).
    EveryNth(u64),
    /// Fire with probability `p` per matching call, drawn deterministically
    /// from the plan seed and the match counter.
    Probability(f64),
}

/// One scripted fault: which operations it matches and what it injects.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Operation selector: an exact store-operation name
    /// (`"put_session"`, `"get_workload"`, …), a prefix glob (`"put_*"`),
    /// or `"*"` for every operation.
    pub op: String,
    /// Only operations whose key contains this substring match
    /// (`None` matches every key).
    pub key_contains: Option<String>,
    /// When a matching operation fires the rule.
    pub trigger: FaultTrigger,
    /// What the fired rule injects.
    pub action: FaultAction,
    /// Cap on total injections from this rule (`None` = unbounded).
    pub limit: Option<u64>,
}

impl FaultRule {
    fn matches(&self, op: &str, key: &str) -> bool {
        let op_ok = if self.op == "*" {
            true
        } else if let Some(prefix) = self.op.strip_suffix('*') {
            op.starts_with(prefix)
        } else {
            self.op == op
        };
        op_ok
            && self
                .key_contains
                .as_deref()
                .is_none_or(|needle| key.contains(needle))
    }
}

/// A serializable script of faults plus the seed for probabilistic rules.
///
/// The plan round-trips through `qfe-wire` JSON ([`FaultPlan::serialize`] /
/// [`FaultPlan::parse`]), so a chaos run can pin the exact fault schedule in
/// its bench artifact and CI can replay it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for [`FaultTrigger::Probability`] draws.
    pub seed: u64,
    /// The scripted rules, checked in order; the first rule that fires wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule to the plan (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Renders the plan as compact JSON.
    pub fn serialize(&self) -> String {
        self.to_json().render()
    }

    /// Parses a plan serialized by [`FaultPlan::serialize`].
    pub fn parse(text: &str) -> WireResult<FaultPlan> {
        FaultPlan::from_json(&Json::parse(text)?)
    }

    /// The plan as a `qfe-wire` JSON value.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("seed", Json::Int(self.seed as i64)),
            (
                "rules",
                Json::Array(
                    self.rules
                        .iter()
                        .map(|r| {
                            let trigger = match &r.trigger {
                                FaultTrigger::Nth(n) => Json::object([
                                    ("kind", Json::Str("nth".to_string())),
                                    ("n", Json::Int(*n as i64)),
                                ]),
                                FaultTrigger::EveryNth(n) => Json::object([
                                    ("kind", Json::Str("every_nth".to_string())),
                                    ("n", Json::Int(*n as i64)),
                                ]),
                                FaultTrigger::Probability(p) => Json::object([
                                    ("kind", Json::Str("probability".to_string())),
                                    ("p", Json::Float(*p)),
                                ]),
                            };
                            let action = match &r.action {
                                FaultAction::Error => {
                                    Json::object([("kind", Json::Str("error".to_string()))])
                                }
                                FaultAction::Torn { keep } => Json::object([
                                    ("kind", Json::Str("torn".to_string())),
                                    ("keep", Json::Float(*keep)),
                                ]),
                                FaultAction::StaleRead => {
                                    Json::object([("kind", Json::Str("stale_read".to_string()))])
                                }
                                FaultAction::Latency { millis } => Json::object([
                                    ("kind", Json::Str("latency".to_string())),
                                    ("millis", Json::Int(*millis as i64)),
                                ]),
                            };
                            Json::object([
                                ("op", Json::Str(r.op.clone())),
                                (
                                    "key_contains",
                                    match &r.key_contains {
                                        Some(s) => Json::Str(s.clone()),
                                        None => Json::Null,
                                    },
                                ),
                                ("trigger", trigger),
                                ("action", action),
                                (
                                    "limit",
                                    match r.limit {
                                        Some(n) => Json::Int(n as i64),
                                        None => Json::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Reads a plan back from its JSON form.
    pub fn from_json(json: &Json) -> WireResult<FaultPlan> {
        let seed = json.field("seed")?.as_i64()? as u64;
        let mut rules = Vec::new();
        for rule in json.field("rules")?.as_array()? {
            let op = rule.field("op")?.as_str()?.to_string();
            let key_contains = match rule.field("key_contains")? {
                Json::Null => None,
                other => Some(other.as_str()?.to_string()),
            };
            let trigger_json = rule.field("trigger")?;
            let trigger = match trigger_json.field("kind")?.as_str()? {
                "nth" => FaultTrigger::Nth(trigger_json.field("n")?.as_i64()? as u64),
                "every_nth" => FaultTrigger::EveryNth(trigger_json.field("n")?.as_i64()? as u64),
                "probability" => FaultTrigger::Probability(trigger_json.field("p")?.as_f64()?),
                other => return Err(WireError::new(format!("unknown fault trigger {other:?}"))),
            };
            let action_json = rule.field("action")?;
            let action = match action_json.field("kind")?.as_str()? {
                "error" => FaultAction::Error,
                "torn" => FaultAction::Torn {
                    keep: action_json.field("keep")?.as_f64()?,
                },
                "stale_read" => FaultAction::StaleRead,
                "latency" => FaultAction::Latency {
                    millis: action_json.field("millis")?.as_i64()? as u64,
                },
                other => return Err(WireError::new(format!("unknown fault action {other:?}"))),
            };
            let limit = match rule.field("limit")? {
                Json::Null => None,
                other => Some(other.as_i64()? as u64),
            };
            rules.push(FaultRule {
                op,
                key_contains,
                trigger,
                action,
                limit,
            });
        }
        Ok(FaultPlan { seed, rules })
    }
}

/// One fault the store actually injected, for post-run assertions and the
/// chaos bench artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The store operation that was intercepted.
    pub op: String,
    /// The key the operation addressed.
    pub key: String,
    /// The action name (`"error"`, `"torn"`, `"stale_read"`, `"latency"`).
    pub action: String,
}

/// splitmix64: the deterministic per-call random draw behind
/// [`FaultTrigger::Probability`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct FaultState {
    /// Matching-call counter per rule (drives Nth/EveryNth/Probability).
    matches: Vec<u64>,
    /// Injection counter per rule (drives `limit`).
    injections: Vec<u64>,
    /// Every fault injected so far, in order.
    log: Vec<InjectedFault>,
    /// Latest value per (namespace, key) — the "current replica".
    shadow: HashMap<(u8, String), String>,
    /// Previous value per (namespace, key) — what a stale replica serves.
    history: HashMap<(u8, String), String>,
}

const NS_SESSION: u8 = 0;
const NS_WORKLOAD: u8 = 1;

/// A [`SnapshotStore`] that injects scripted faults in front of an inner
/// store. See the module docs for the model.
#[derive(Debug)]
pub struct FaultyStore {
    inner: Arc<dyn SnapshotStore>,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl FaultyStore {
    /// Wraps `inner`, injecting the faults scripted by `plan`.
    pub fn new(inner: Arc<dyn SnapshotStore>, plan: FaultPlan) -> FaultyStore {
        let state = FaultState {
            matches: vec![0; plan.rules.len()],
            injections: vec![0; plan.rules.len()],
            ..FaultState::default()
        };
        FaultyStore {
            inner,
            plan,
            state: Mutex::new(state),
        }
    }

    /// The plan this store injects from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn SnapshotStore> {
        &self.inner
    }

    /// Every fault injected so far, in injection order.
    pub fn injected(&self) -> Vec<InjectedFault> {
        self.state.lock().expect("fault state lock").log.clone()
    }

    /// Total number of injected faults.
    pub fn injection_count(&self) -> usize {
        self.state.lock().expect("fault state lock").log.len()
    }

    /// Decides whether a rule fires for this (op, key) call, records the
    /// injection, and returns the action to apply. Latency sleeps happen
    /// outside the lock.
    fn decide(&self, op: &str, key: &str) -> Option<FaultAction> {
        let mut state = self.state.lock().expect("fault state lock");
        for (idx, rule) in self.plan.rules.iter().enumerate() {
            if !rule.matches(op, key) {
                continue;
            }
            state.matches[idx] += 1;
            let count = state.matches[idx];
            if rule.limit.is_some_and(|cap| state.injections[idx] >= cap) {
                continue;
            }
            let fires = match rule.trigger {
                FaultTrigger::Nth(n) => count == n,
                FaultTrigger::EveryNth(n) => n > 0 && count.is_multiple_of(n),
                FaultTrigger::Probability(p) => {
                    let bits = splitmix64(self.plan.seed ^ ((idx as u64) << 48) ^ count);
                    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
                }
            };
            if fires {
                state.injections[idx] += 1;
                state.log.push(InjectedFault {
                    op: op.to_string(),
                    key: key.to_string(),
                    action: rule.action.name().to_string(),
                });
                return Some(rule.action.clone());
            }
        }
        None
    }

    /// Records a successful write so later [`FaultAction::StaleRead`]s can
    /// serve the superseded value.
    fn record_write(&self, ns: u8, key: &str, text: &str) {
        let mut state = self.state.lock().expect("fault state lock");
        let slot = (ns, key.to_string());
        if let Some(old) = state.shadow.get(&slot).cloned() {
            state.history.insert(slot.clone(), old);
        }
        state.shadow.insert(slot, text.to_string());
    }

    fn stale_value(&self, ns: u8, key: &str) -> Option<String> {
        self.state
            .lock()
            .expect("fault state lock")
            .history
            .get(&(ns, key.to_string()))
            .cloned()
    }

    /// Applies a write-path fault. `Ok(true)` means the fault fully handled
    /// the call (the caller returns the error embedded in `Err` instead);
    /// `Ok(false)` means proceed with the real write.
    fn write_fault(
        &self,
        op: &str,
        ns: u8,
        key: &str,
        text: &str,
        put: &dyn Fn(&str) -> StoreResult<()>,
    ) -> StoreResult<()> {
        match self.decide(op, key) {
            None => {
                put(text)?;
                self.record_write(ns, key, text);
                Ok(())
            }
            Some(FaultAction::Error) => Err(StoreError::new(
                format!("{op} {key}"),
                "injected fault: io error",
            )),
            Some(FaultAction::Torn { keep }) => {
                let keep = keep.clamp(0.0, 1.0);
                let mut cut = (text.len() as f64 * keep).floor() as usize;
                while cut > 0 && !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                // The torn prefix reaches the inner store; the caller still
                // sees a failure, as it would after a real torn write.
                let _ = put(&text[..cut]);
                Err(StoreError::new(
                    format!("{op} {key}"),
                    format!("injected fault: torn write ({cut} of {} bytes)", text.len()),
                ))
            }
            Some(FaultAction::StaleRead) => {
                // Stale reads do not apply to writes; proceed.
                put(text)?;
                self.record_write(ns, key, text);
                Ok(())
            }
            Some(FaultAction::Latency { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                put(text)?;
                self.record_write(ns, key, text);
                Ok(())
            }
        }
    }

    /// Applies a read-path fault, returning `Some` when the fault produced
    /// the whole reply and `None` when the real read should proceed.
    fn read_fault(&self, op: &str, ns: u8, key: &str) -> Option<StoreResult<Option<String>>> {
        match self.decide(op, key)? {
            FaultAction::Error => Some(Err(StoreError::new(
                format!("{op} {key}"),
                "injected fault: io error",
            ))),
            FaultAction::StaleRead => self.stale_value(ns, key).map(|old| Ok(Some(old))),
            FaultAction::Latency { millis } => {
                std::thread::sleep(Duration::from_millis(millis));
                None
            }
            // A torn write makes no sense on a read; treat it as an error.
            FaultAction::Torn { .. } => Some(Err(StoreError::new(
                format!("{op} {key}"),
                "injected fault: torn read",
            ))),
        }
    }
}

impl SnapshotStore for FaultyStore {
    fn put_session(&self, key: &str, text: &str) -> StoreResult<()> {
        self.write_fault("put_session", NS_SESSION, key, text, &|t| {
            self.inner.put_session(key, t)
        })
    }

    fn get_session(&self, key: &str) -> StoreResult<Option<String>> {
        if let Some(reply) = self.read_fault("get_session", NS_SESSION, key) {
            return reply;
        }
        self.inner.get_session(key)
    }

    fn remove_session(&self, key: &str) -> StoreResult<bool> {
        match self.decide("remove_session", key) {
            Some(FaultAction::Error) | Some(FaultAction::Torn { .. }) => Err(StoreError::new(
                format!("remove_session {key}"),
                "injected fault: io error",
            )),
            Some(FaultAction::Latency { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                self.inner.remove_session(key)
            }
            Some(FaultAction::StaleRead) | None => self.inner.remove_session(key),
        }
    }

    fn session_keys(&self) -> StoreResult<Vec<String>> {
        match self.decide("session_keys", "") {
            Some(FaultAction::Error) => {
                Err(StoreError::new("session_keys", "injected fault: io error"))
            }
            Some(FaultAction::Latency { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                self.inner.session_keys()
            }
            _ => self.inner.session_keys(),
        }
    }

    fn put_workload(&self, hash: &str, text: &str) -> StoreResult<()> {
        self.write_fault("put_workload", NS_WORKLOAD, hash, text, &|t| {
            self.inner.put_workload(hash, t)
        })
    }

    fn get_workload(&self, hash: &str) -> StoreResult<Option<String>> {
        if let Some(reply) = self.read_fault("get_workload", NS_WORKLOAD, hash) {
            return reply;
        }
        self.inner.get_workload(hash)
    }

    fn workload_hashes(&self) -> StoreResult<Vec<String>> {
        match self.decide("workload_hashes", "") {
            Some(FaultAction::Error) => Err(StoreError::new(
                "workload_hashes",
                "injected fault: io error",
            )),
            Some(FaultAction::Latency { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                self.inner.workload_hashes()
            }
            _ => self.inner.workload_hashes(),
        }
    }

    fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }

    // Audits pass straight through: fsck is the recovery tool, and injecting
    // faults into the tool that diagnoses faults helps nobody.
    fn fsck(&self) -> StoreResult<FsckReport> {
        self.inner.fsck()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;

    fn faulty(plan: FaultPlan) -> FaultyStore {
        FaultyStore::new(Arc::new(MemoryStore::new()), plan)
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::new(42)
            .with_rule(FaultRule {
                op: "put_*".to_string(),
                key_contains: Some("s1".to_string()),
                trigger: FaultTrigger::Nth(3),
                action: FaultAction::Error,
                limit: Some(1),
            })
            .with_rule(FaultRule {
                op: "get_session".to_string(),
                key_contains: None,
                trigger: FaultTrigger::Probability(0.25),
                action: FaultAction::Latency { millis: 2 },
                limit: None,
            })
            .with_rule(FaultRule {
                op: "*".to_string(),
                key_contains: None,
                trigger: FaultTrigger::EveryNth(10),
                action: FaultAction::Torn { keep: 0.5 },
                limit: Some(4),
            });
        let text = plan.serialize();
        let back = FaultPlan::parse(&text).unwrap();
        assert_eq!(back, plan);
        assert!(FaultPlan::parse("{\"seed\":1,\"rules\":[{\"op\":\"x\"}]}").is_err());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let store = faulty(FaultPlan::new(0).with_rule(FaultRule {
            op: "put_session".to_string(),
            key_contains: None,
            trigger: FaultTrigger::Nth(2),
            action: FaultAction::Error,
            limit: None,
        }));
        assert!(store.put_session("a", "1").is_ok());
        let err = store.put_session("a", "2").unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        // The failed write never reached the inner store.
        assert_eq!(store.get_session("a").unwrap().unwrap(), "1");
        assert!(store.put_session("a", "3").is_ok());
        assert_eq!(store.injection_count(), 1);
        assert_eq!(store.injected()[0].action, "error");
    }

    #[test]
    fn torn_write_leaves_a_prefix_and_fails() {
        let store = faulty(FaultPlan::new(0).with_rule(FaultRule {
            op: "put_session".to_string(),
            key_contains: None,
            trigger: FaultTrigger::Nth(1),
            action: FaultAction::Torn { keep: 0.5 },
            limit: None,
        }));
        let err = store.put_session("k", "0123456789").unwrap_err();
        assert!(err.to_string().contains("torn write"));
        assert_eq!(store.get_session("k").unwrap().unwrap(), "01234");
    }

    #[test]
    fn stale_read_serves_the_previous_value() {
        let store = faulty(FaultPlan::new(0).with_rule(FaultRule {
            op: "get_session".to_string(),
            key_contains: None,
            trigger: FaultTrigger::Nth(2),
            action: FaultAction::StaleRead,
            limit: None,
        }));
        store.put_session("k", "v1").unwrap();
        store.put_session("k", "v2").unwrap();
        assert_eq!(store.get_session("k").unwrap().unwrap(), "v2");
        // Second read is scripted stale: the replica serves v1.
        assert_eq!(store.get_session("k").unwrap().unwrap(), "v1");
        assert_eq!(store.get_session("k").unwrap().unwrap(), "v2");
    }

    #[test]
    fn probability_schedule_is_deterministic_for_a_seed() {
        let plan = FaultPlan::new(7).with_rule(FaultRule {
            op: "get_session".to_string(),
            key_contains: None,
            trigger: FaultTrigger::Probability(0.5),
            action: FaultAction::Error,
            limit: None,
        });
        let run = |plan: &FaultPlan| {
            let store = faulty(plan.clone());
            store.put_session("k", "v").unwrap();
            (0..32)
                .map(|_| store.get_session("k").is_err())
                .collect::<Vec<bool>>()
        };
        let first = run(&plan);
        let second = run(&plan);
        assert_eq!(first, second, "same seed, same schedule");
        assert!(first.iter().any(|&e| e) && first.iter().any(|&e| !e));
        let other = run(&FaultPlan {
            seed: 8,
            ..plan.clone()
        });
        assert_ne!(first, other, "different seed, different schedule");
    }

    #[test]
    fn limits_and_key_filters_apply() {
        let store = faulty(FaultPlan::new(0).with_rule(FaultRule {
            op: "*".to_string(),
            key_contains: Some("s9".to_string()),
            trigger: FaultTrigger::EveryNth(1),
            action: FaultAction::Error,
            limit: Some(2),
        }));
        assert!(store.put_session("s1", "x").is_ok(), "key filter skips s1");
        assert!(store.put_session("s9", "x").is_err());
        assert!(store.get_session("s9").is_err());
        // Limit reached: the rule stops firing.
        assert!(store.put_session("s9", "x").is_ok());
        assert_eq!(store.injection_count(), 2);
    }

    #[test]
    fn passthrough_preserves_store_semantics() {
        let store = faulty(FaultPlan::new(0));
        store.put_session("s1", "{}").unwrap();
        store.put_workload("h", "w").unwrap();
        assert_eq!(store.session_keys().unwrap(), vec!["s1"]);
        assert_eq!(store.workload_hashes().unwrap(), vec!["h"]);
        assert!(store.has_workload("h").unwrap());
        assert!(store.remove_session("s1").unwrap());
        assert_eq!(store.backend_name(), "mem");
    }
}
