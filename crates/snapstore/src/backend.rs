//! The session-serving abstraction a service frontend routes onto.
//!
//! [`SessionBackend`] is the full session lifecycle — create, step, answer,
//! reject, park, resume, delete — plus the operational surface (occupancy
//! counts, store audit, shutdown drain), expressed as a trait so a frontend
//! does not care whether it is talking to one [`SessionHost`] or to a
//! sharded cluster of them. `qfe-server` serves an `Arc<dyn
//! SessionBackend>`; `qfe-cluster`'s router implements the same trait over
//! N shards.

use std::time::Duration;

use qfe_core::{QfeSession, Result, SessionId, SessionSnapshot, Step};

use crate::fsck::FsckReport;
use crate::host::{ParkAllReport, SessionHost};
use crate::park::ParkReceipt;
use crate::store::StoreError;

/// Everything a service frontend needs from whatever hosts its sessions.
///
/// Single-host and clustered deployments implement the same contract, with
/// the same error vocabulary: unknown ids are
/// [`QfeError::UnknownSession`](qfe_core::QfeError), store trouble is
/// [`QfeError::Store`](qfe_core::QfeError), and every call is safe from many
/// threads at once.
pub trait SessionBackend: Send + Sync + std::fmt::Debug {
    /// Starts hosting a new session.
    fn create(&self, session: &QfeSession) -> Result<SessionId>;
    /// Restores a session from a snapshot under a fresh id.
    fn restore(&self, snapshot: SessionSnapshot) -> Result<SessionId>;
    /// Advances a session, rehydrating it first if parked.
    fn step(&self, id: SessionId) -> Result<Step>;
    /// Answers a session's pending round.
    fn answer(&self, id: SessionId, choice_idx: usize) -> Result<()>;
    /// Answers with the user's reported deliberation time.
    fn answer_timed(&self, id: SessionId, choice_idx: usize, user_time: Duration) -> Result<()>;
    /// Rejects every presented result of the pending round.
    fn reject(&self, id: SessionId) -> Result<()>;
    /// Snapshots a session to the store and evicts the engine.
    fn park(&self, id: SessionId) -> Result<ParkReceipt>;
    /// Ensures a session is resident; `true` when this call rehydrated it.
    fn resume(&self, id: SessionId) -> Result<bool>;
    /// Stops hosting a session entirely (engine and stored record).
    fn evict(&self, id: SessionId) -> Result<bool>;
    /// Every hosted session id — resident and parked — ascending.
    fn session_ids(&self) -> Result<Vec<SessionId>>;
    /// Engines currently on the heap (across all shards, if sharded).
    fn resident_count(&self) -> usize;
    /// Sessions parked in the store and not resident anywhere.
    fn parked_count(&self) -> Result<usize>;
    /// Short name of the backing store (`"mem"`, `"log"`, `"dir"`, …).
    fn store_backend_name(&self) -> &'static str;
    /// Audits the backing store (see [`crate::SnapshotStore::fsck`]).
    fn fsck(&self) -> std::result::Result<FsckReport, StoreError>;
    /// Parks every resident session under an optional deadline — the
    /// graceful-shutdown sweep.
    fn park_all(&self, deadline: Option<Duration>) -> ParkAllReport;
}

impl SessionBackend for SessionHost {
    fn create(&self, session: &QfeSession) -> Result<SessionId> {
        SessionHost::create(self, session)
    }

    fn restore(&self, snapshot: SessionSnapshot) -> Result<SessionId> {
        SessionHost::restore(self, snapshot)
    }

    fn step(&self, id: SessionId) -> Result<Step> {
        SessionHost::step(self, id)
    }

    fn answer(&self, id: SessionId, choice_idx: usize) -> Result<()> {
        SessionHost::answer(self, id, choice_idx)
    }

    fn answer_timed(&self, id: SessionId, choice_idx: usize, user_time: Duration) -> Result<()> {
        SessionHost::answer_timed(self, id, choice_idx, user_time)
    }

    fn reject(&self, id: SessionId) -> Result<()> {
        SessionHost::reject(self, id)
    }

    fn park(&self, id: SessionId) -> Result<ParkReceipt> {
        SessionHost::park(self, id)
    }

    fn resume(&self, id: SessionId) -> Result<bool> {
        SessionHost::resume(self, id)
    }

    fn evict(&self, id: SessionId) -> Result<bool> {
        SessionHost::evict(self, id)
    }

    fn session_ids(&self) -> Result<Vec<SessionId>> {
        SessionHost::session_ids(self)
    }

    fn resident_count(&self) -> usize {
        SessionHost::resident_count(self)
    }

    fn parked_count(&self) -> Result<usize> {
        SessionHost::parked_count(self)
    }

    fn store_backend_name(&self) -> &'static str {
        self.store().backend_name()
    }

    fn fsck(&self) -> std::result::Result<FsckReport, StoreError> {
        self.store().fsck()
    }

    fn park_all(&self, deadline: Option<Duration>) -> ParkAllReport {
        SessionHost::park_all(self, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostConfig;
    use crate::store::MemoryStore;
    use std::sync::Arc;

    #[test]
    fn session_host_serves_the_backend_contract() {
        let host = SessionHost::open(Arc::new(MemoryStore::new()), HostConfig::default()).unwrap();
        let backend: Arc<dyn SessionBackend> = Arc::new(host);
        let (db, result, candidates, _) = qfe_datasets::example_1_1();
        let session = qfe_core::QfeSession::builder(db, result)
            .with_candidates(candidates)
            .build()
            .unwrap();
        let id = backend.create(&session).unwrap();
        assert!(matches!(backend.step(id), Ok(Step::AwaitFeedback(_))));
        backend.park(id).unwrap();
        assert_eq!(backend.resident_count(), 0);
        assert_eq!(backend.parked_count().unwrap(), 1);
        assert!(backend.resume(id).unwrap());
        assert_eq!(backend.store_backend_name(), "mem");
        let report = backend.fsck().unwrap();
        assert!(report.is_clean());
        let sweep = backend.park_all(None);
        assert_eq!(sweep.parked, 1);
        assert!(sweep.is_complete());
        assert!(backend.evict(id).unwrap());
        assert_eq!(backend.session_ids().unwrap(), Vec::new());
    }
}
