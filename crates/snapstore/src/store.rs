//! The store trait, its error type, and the in-memory implementation.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use crate::fsck::FsckReport;

/// A snapshot store operation failed. `context` names the operation and key
/// (`"get_session s7"`), `message` the underlying cause — enough for an
/// operator to locate the damaged record. Converts into
/// [`qfe_core::QfeError::Store`] at the session-host boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The operation and key that failed.
    pub context: String,
    /// The underlying cause.
    pub message: String,
}

impl StoreError {
    /// Creates an error from an operation context and a cause.
    pub fn new(context: impl Into<String>, message: impl fmt::Display) -> StoreError {
        StoreError {
            context: context.into(),
            message: message.to_string(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store error ({}): {}", self.context, self.message)
    }
}

impl std::error::Error for StoreError {}

/// Convenience result alias for this crate.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// A durable backend for parked sessions and their shared workloads.
///
/// Two keyspaces:
///
/// * **Sessions** — small mutable-by-replacement state documents, keyed by a
///   caller-chosen string (the session host uses `s<id>`). `put` overwrites,
///   `remove` deletes.
/// * **Workloads** — immutable content-addressed bulk payloads (the
///   serialized example pair `(D, R)`), keyed by the hash of their text.
///   Writing the same hash twice is a no-op: the content is identical by
///   construction, which is exactly what lets thousands of sessions share
///   one stored copy.
///
/// Implementations are `Send + Sync`; a server calls them from many worker
/// threads. All failures are reported, never panicked.
pub trait SnapshotStore: Send + Sync + fmt::Debug {
    /// Writes (or replaces) a parked session document.
    fn put_session(&self, key: &str, text: &str) -> StoreResult<()>;
    /// Reads a parked session document. `Ok(None)` when the key is absent.
    fn get_session(&self, key: &str) -> StoreResult<Option<String>>;
    /// Deletes a parked session document. `Ok(false)` when the key was
    /// absent (removing twice is not an error).
    fn remove_session(&self, key: &str) -> StoreResult<bool>;
    /// Every parked session key, in sorted order.
    fn session_keys(&self) -> StoreResult<Vec<String>>;

    /// Stores a workload payload under its content hash. A no-op when the
    /// hash is already present.
    fn put_workload(&self, hash: &str, text: &str) -> StoreResult<()>;
    /// Reads a workload payload by content hash.
    fn get_workload(&self, hash: &str) -> StoreResult<Option<String>>;
    /// True when the content hash is already stored.
    fn has_workload(&self, hash: &str) -> StoreResult<bool> {
        Ok(self.get_workload(hash)?.is_some())
    }
    /// Every stored workload hash, in sorted order.
    fn workload_hashes(&self) -> StoreResult<Vec<String>>;

    /// Short name of the backend (`"mem"`, `"log"`, `"dir"`, …) for the
    /// readiness probe and operator-facing reports.
    fn backend_name(&self) -> &'static str {
        "custom"
    }

    /// Audits the backing storage: verifies record integrity, quarantines
    /// damage, and reports what was found. Backends without durable bytes to
    /// verify (the in-memory store) report a clean pass over their live
    /// records; [`LogStore`](crate::LogStore) and
    /// [`DirStore`](crate::DirStore) run their full rescans. Exposed through
    /// the trait so operators can fsck whatever store a host happens to be
    /// configured with (`qfe-server --fsck`, `GET /admin/fsck`).
    fn fsck(&self) -> StoreResult<FsckReport> {
        Ok(FsckReport {
            backend: self.backend_name(),
            records_scanned: self.session_keys()?.len() + self.workload_hashes()?.len(),
            live_sessions: self.session_keys()?.len(),
            live_workloads: self.workload_hashes()?.len(),
            ..FsckReport::default()
        })
    }
}

/// The trivial [`SnapshotStore`]: everything in process memory.
///
/// Does not survive a restart — its role is (a) tests, and (b) pure
/// memory-pressure eviction, where parking to a compact serialized form
/// still shrinks the heap (a parked session holds JSON text instead of a
/// live engine with its generation context).
#[derive(Debug, Default)]
pub struct MemoryStore {
    sessions: Mutex<HashMap<String, String>>,
    workloads: Mutex<HashMap<String, String>>,
}

impl MemoryStore {
    /// Creates an empty in-memory store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }
}

impl SnapshotStore for MemoryStore {
    fn put_session(&self, key: &str, text: &str) -> StoreResult<()> {
        self.sessions
            .lock()
            .expect("memory store lock poisoned")
            .insert(key.to_string(), text.to_string());
        Ok(())
    }

    fn get_session(&self, key: &str) -> StoreResult<Option<String>> {
        Ok(self
            .sessions
            .lock()
            .expect("memory store lock poisoned")
            .get(key)
            .cloned())
    }

    fn remove_session(&self, key: &str) -> StoreResult<bool> {
        Ok(self
            .sessions
            .lock()
            .expect("memory store lock poisoned")
            .remove(key)
            .is_some())
    }

    fn session_keys(&self) -> StoreResult<Vec<String>> {
        let mut keys: Vec<String> = self
            .sessions
            .lock()
            .expect("memory store lock poisoned")
            .keys()
            .cloned()
            .collect();
        keys.sort();
        Ok(keys)
    }

    fn put_workload(&self, hash: &str, text: &str) -> StoreResult<()> {
        self.workloads
            .lock()
            .expect("memory store lock poisoned")
            .entry(hash.to_string())
            .or_insert_with(|| text.to_string());
        Ok(())
    }

    fn get_workload(&self, hash: &str) -> StoreResult<Option<String>> {
        Ok(self
            .workloads
            .lock()
            .expect("memory store lock poisoned")
            .get(hash)
            .cloned())
    }

    fn workload_hashes(&self) -> StoreResult<Vec<String>> {
        let mut hashes: Vec<String> = self
            .workloads
            .lock()
            .expect("memory store lock poisoned")
            .keys()
            .cloned()
            .collect();
        hashes.sort();
        Ok(hashes)
    }

    fn backend_name(&self) -> &'static str {
        "mem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_sessions_roundtrip() {
        let store = MemoryStore::new();
        assert_eq!(store.get_session("s1").unwrap(), None);
        store.put_session("s1", "{\"a\":1}").unwrap();
        store.put_session("s0", "{}").unwrap();
        assert_eq!(store.get_session("s1").unwrap().unwrap(), "{\"a\":1}");
        assert_eq!(store.session_keys().unwrap(), vec!["s0", "s1"]);
        // Replacement overwrites.
        store.put_session("s1", "{\"a\":2}").unwrap();
        assert_eq!(store.get_session("s1").unwrap().unwrap(), "{\"a\":2}");
        assert!(store.remove_session("s1").unwrap());
        assert!(!store.remove_session("s1").unwrap());
        assert_eq!(store.session_keys().unwrap(), vec!["s0"]);
    }

    #[test]
    fn memory_store_workloads_are_write_once() {
        let store = MemoryStore::new();
        assert!(!store.has_workload("abc").unwrap());
        store.put_workload("abc", "payload").unwrap();
        assert!(store.has_workload("abc").unwrap());
        // Re-putting the same hash never replaces the stored content.
        store.put_workload("abc", "different").unwrap();
        assert_eq!(store.get_workload("abc").unwrap().unwrap(), "payload");
        assert_eq!(store.workload_hashes().unwrap(), vec!["abc"]);
    }

    #[test]
    fn store_error_display_includes_context() {
        let e = StoreError::new("put_session s3", "disk full");
        assert!(e.to_string().contains("put_session s3"));
        assert!(e.to_string().contains("disk full"));
    }
}
