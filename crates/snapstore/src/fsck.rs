//! The `fsck`-style store inspection report.
//!
//! Both durable backends ([`LogStore`](crate::LogStore) and
//! [`DirStore`](crate::DirStore)) expose an `fsck()` method that rescans the
//! backing storage, verifies every per-record checksum, quarantines damaged
//! records so later reads are clean misses instead of errors, and reports
//! what it found. The report is what an operator reads after a crash or a
//! disk scare: how much of the store is live, how much is reclaimable
//! garbage, and exactly which records were lost.

use std::fmt;

use qfe_wire::Json;

/// One record `fsck` removed from service because its stored bytes no
/// longer match its checksum (or could not be parsed at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRecord {
    /// `"sessions"` or `"workloads"`.
    pub namespace: String,
    /// The record key, as far as it could be recovered.
    pub key: String,
    /// Where the damage sits (a byte offset for the log store, a file path
    /// for the directory store).
    pub location: String,
    /// Why the record was quarantined.
    pub reason: String,
}

/// What an `fsck` pass over a store found (and repaired).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Which backend produced the report (`"log"` / `"dir"`).
    pub backend: &'static str,
    /// Records examined, live and dead.
    pub records_scanned: usize,
    /// Parked sessions still readable after the pass.
    pub live_sessions: usize,
    /// Content-addressed workloads still readable after the pass.
    pub live_workloads: usize,
    /// Records taken out of service because their bytes fail verification.
    pub quarantined: Vec<QuarantinedRecord>,
    /// Bytes of a torn trailing append (log store only) discarded at open.
    pub torn_tail_bytes: u64,
    /// Bytes held by superseded or tombstoned records — reclaimable by a
    /// compaction, but never served.
    pub garbage_bytes: u64,
    /// Orphaned temp files removed (directory store only).
    pub reclaimed_tmp_files: usize,
}

impl FsckReport {
    /// True when nothing was quarantined: every stored record verifies.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// The report as JSON — the body of `GET /admin/fsck` and the
    /// `qfe-server --fsck` output, so operator tooling can parse it.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("backend", Json::Str(self.backend.to_string())),
            ("clean", Json::Bool(self.is_clean())),
            ("records_scanned", Json::Int(self.records_scanned as i64)),
            ("live_sessions", Json::Int(self.live_sessions as i64)),
            ("live_workloads", Json::Int(self.live_workloads as i64)),
            ("torn_tail_bytes", Json::Int(self.torn_tail_bytes as i64)),
            ("garbage_bytes", Json::Int(self.garbage_bytes as i64)),
            (
                "reclaimed_tmp_files",
                Json::Int(self.reclaimed_tmp_files as i64),
            ),
            (
                "quarantined",
                Json::Array(
                    self.quarantined
                        .iter()
                        .map(|q| {
                            Json::object([
                                ("namespace", Json::Str(q.namespace.clone())),
                                ("key", Json::Str(q.key.clone())),
                                ("location", Json::Str(q.location.clone())),
                                ("reason", Json::Str(q.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fsck({}): {} records scanned, {} live sessions, {} live workloads",
            self.backend, self.records_scanned, self.live_sessions, self.live_workloads
        )?;
        writeln!(
            f,
            "  garbage: {} bytes, torn tail: {} bytes, tmp files reclaimed: {}",
            self.garbage_bytes, self.torn_tail_bytes, self.reclaimed_tmp_files
        )?;
        if self.quarantined.is_empty() {
            write!(f, "  quarantined: none")
        } else {
            write!(f, "  quarantined: {} record(s)", self.quarantined.len())?;
            for q in &self.quarantined {
                write!(
                    f,
                    "\n    {}/{} at {}: {}",
                    q.namespace, q.key, q.location, q.reason
                )?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_formats_cleanly() {
        let mut report = FsckReport {
            backend: "log",
            records_scanned: 4,
            live_sessions: 2,
            live_workloads: 1,
            ..FsckReport::default()
        };
        assert!(report.is_clean());
        assert!(report.to_string().contains("quarantined: none"));
        report.quarantined.push(QuarantinedRecord {
            namespace: "sessions".to_string(),
            key: "s3".to_string(),
            location: "offset 120".to_string(),
            reason: "checksum mismatch".to_string(),
        });
        assert!(!report.is_clean());
        let text = report.to_string();
        assert!(text.contains("sessions/s3"));
        assert!(text.contains("checksum mismatch"));
    }
}
