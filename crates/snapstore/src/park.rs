//! Parking and rehydrating snapshots through a store, with the workload
//! payload stored once under its content hash.
//!
//! A parked session is a small state document:
//!
//! ```json
//! {"version":1,"workload":"<content hash>","state":{ ...session state... }}
//! ```
//!
//! The bulk example pair `(D, R)` lives separately under
//! `workloads/<hash>`; every session on the same workload references the
//! same hash, so the pair is stored once no matter how many sessions park.

use qfe_core::{SessionSnapshot, WorkloadPayload};
use qfe_wire::{content_hash, FromJson, Json};

use crate::store::{SnapshotStore, StoreError, StoreResult};

/// Version tag of the parked-session document format.
const PARKED_VERSION: i64 = 1;

/// What [`park_snapshot`] wrote — the numbers behind the content-addressing
/// win reported by the service bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParkReceipt {
    /// Content hash of the workload payload this session references.
    pub workload_hash: String,
    /// Bytes of the per-session state document written for this park.
    pub state_bytes: usize,
    /// Bytes of the serialized workload payload (stored once per workload).
    pub workload_bytes: usize,
    /// True when the workload was already in the store — this park wrote
    /// only the state document.
    pub workload_was_shared: bool,
}

/// Parks a snapshot under `key`: writes the workload payload (if not already
/// stored) under its content hash, and the session state referencing it.
pub fn park_snapshot(
    store: &dyn SnapshotStore,
    key: &str,
    snapshot: &SessionSnapshot,
) -> StoreResult<ParkReceipt> {
    let (workload, state) = snapshot.split();
    let workload_text = workload.canonical_text();
    let hash = content_hash(&workload_text);
    let workload_was_shared = store.has_workload(&hash)?;
    if !workload_was_shared {
        store.put_workload(&hash, &workload_text)?;
    }
    let record = Json::object([
        ("version", Json::Int(PARKED_VERSION)),
        ("workload", Json::Str(hash.clone())),
        ("state", state),
    ])
    .render();
    store.put_session(key, &record)?;
    Ok(ParkReceipt {
        workload_hash: hash,
        state_bytes: record.len(),
        workload_bytes: workload_text.len(),
        workload_was_shared,
    })
}

/// Loads the session parked under `key`, resolving its workload reference.
/// `Ok(None)` when no session is parked under the key; a corrupt state
/// document or a dangling workload reference is a [`StoreError`] naming the
/// key, so one damaged record fails one request — it never takes the host
/// down.
pub fn load_snapshot(store: &dyn SnapshotStore, key: &str) -> StoreResult<Option<SessionSnapshot>> {
    let context = format!("load_snapshot {key}");
    let Some(record) = store.get_session(key)? else {
        return Ok(None);
    };
    let record = Json::parse(&record).map_err(|e| StoreError::new(context.clone(), e))?;
    let version = record
        .field("version")
        .and_then(|v| v.as_i64())
        .map_err(|e| StoreError::new(context.clone(), e))?;
    if version != PARKED_VERSION {
        return Err(StoreError::new(
            context,
            format!("unsupported parked-session version {version}"),
        ));
    }
    let hash = record
        .field("workload")
        .and_then(|v| v.as_str())
        .map_err(|e| StoreError::new(context.clone(), e))?;
    let Some(workload_text) = store.get_workload(hash)? else {
        return Err(StoreError::new(
            context,
            format!("workload {hash} referenced by the session is not in the store"),
        ));
    };
    let workload = WorkloadPayload::from_json_str(&workload_text)
        .map_err(|e| StoreError::new(format!("{context} (workload {hash})"), e))?;
    let state = record
        .field("state")
        .map_err(|e| StoreError::new(context.clone(), e))?;
    let snapshot =
        SessionSnapshot::from_parts(workload, state).map_err(|e| StoreError::new(context, e))?;
    Ok(Some(snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use qfe_core::QfeSession;
    use qfe_datasets::example_1_1;

    fn snapshot_mid_round() -> SessionSnapshot {
        let (db, result, candidates, _) = example_1_1();
        let session = QfeSession::builder(db, result)
            .with_candidates(candidates)
            .build()
            .unwrap();
        let mut engine = session.start();
        let _ = engine.step().unwrap();
        engine.snapshot()
    }

    #[test]
    fn park_and_load_roundtrip_with_sharing() {
        let store = MemoryStore::new();
        let snapshot = snapshot_mid_round();

        let first = park_snapshot(&store, "s1", &snapshot).unwrap();
        assert!(!first.workload_was_shared, "first park stores the workload");
        assert!(first.workload_bytes > 0);

        // A second session on the same workload shares the stored pair.
        let second = park_snapshot(&store, "s2", &snapshot).unwrap();
        assert!(second.workload_was_shared);
        assert_eq!(second.workload_hash, first.workload_hash);
        assert_eq!(store.workload_hashes().unwrap().len(), 1);

        // The state document omits the workload bytes — that is the saving
        // every additional session on the workload banks.
        let full = snapshot.serialize().len();
        assert!(
            second.state_bytes < full && full - second.state_bytes > second.workload_bytes / 2,
            "state {} bytes should be under the full snapshot {} bytes by \
             most of the workload's {} bytes",
            second.state_bytes,
            full,
            second.workload_bytes
        );

        let back = load_snapshot(&store, "s1").unwrap().unwrap();
        assert_eq!(back, snapshot);
        assert!(load_snapshot(&store, "missing").unwrap().is_none());
    }

    #[test]
    fn corrupt_records_error_cleanly() {
        let store = MemoryStore::new();
        store.put_session("bad", "{not json").unwrap();
        let err = load_snapshot(&store, "bad").unwrap_err();
        assert!(err.to_string().contains("load_snapshot bad"));

        store
            .put_session("vers", "{\"version\":9,\"workload\":\"x\",\"state\":{}}")
            .unwrap();
        let err = load_snapshot(&store, "vers").unwrap_err();
        assert!(err.to_string().contains("version 9"));

        store
            .put_session(
                "dangling",
                "{\"version\":1,\"workload\":\"feed\",\"state\":{}}",
            )
            .unwrap();
        let err = load_snapshot(&store, "dangling").unwrap_err();
        assert!(err.to_string().contains("workload feed"));
    }
}
