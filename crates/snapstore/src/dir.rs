//! The directory-per-deployment store: one file per parked session.
//!
//! ```text
//! <root>/sessions/<key>.json     — parked session state documents
//! <root>/workloads/<hash>.json   — content-addressed workload payloads
//! ```
//!
//! The trivially inspectable backend: operators can `ls` the parked
//! sessions, `cat` a state document, and delete a damaged record with `rm`.
//! Writes go to a temp file and are renamed into place, so readers never
//! observe a half-written document. Keys are percent-encoded into file
//! names, so any key the host produces is representable.
//!
//! Every file written by this store starts with a one-line checksum header:
//!
//! ```text
//! #qfe-sum:<content-hash-of-body> <LF> body…
//! ```
//!
//! Reads verify the body against the header and fail just that record on a
//! mismatch — a rotted file is a [`StoreError`] naming the key, never a
//! wrong answer. Headerless files (written before the checksum era, or by
//! an operator's editor) still serve, just unverified. [`DirStore::fsck`]
//! sweeps both namespaces, renames damaged files to `<name>.quarantined`
//! so subsequent reads are clean misses, and removes orphaned `.json.tmp`
//! files left by a crash between create and rename.

use std::io::Write;
use std::path::{Path, PathBuf};

use qfe_wire::content_hash;

use crate::fsck::{FsckReport, QuarantinedRecord};
use crate::store::{SnapshotStore, StoreError, StoreResult};

/// Checksum header prefix; the rest of the first line is the content hash
/// of everything after the newline.
const SUM_PREFIX: &str = "#qfe-sum:";

/// [`SnapshotStore`] backed by a directory tree, one file per record.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

/// Percent-encodes a key into a safe file stem: alphanumerics and `._-`
/// pass through, everything else becomes `%XX` per byte.
fn encode_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for &b in key.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
        }
    }
    out
}

/// Inverse of [`encode_key`]; `None` for stems this store never produced.
fn decode_key(stem: &str) -> Option<String> {
    let mut bytes = Vec::with_capacity(stem.len());
    let mut chars = stem.bytes();
    while let Some(b) = chars.next() {
        if b == b'%' {
            let hi = chars.next()?;
            let lo = chars.next()?;
            let hex = [hi, lo];
            let hex = std::str::from_utf8(&hex).ok()?;
            bytes.push(u8::from_str_radix(hex, 16).ok()?);
        } else {
            bytes.push(b);
        }
    }
    String::from_utf8(bytes).ok()
}

/// Splits file text into `(body, verified)` — verifying the checksum header
/// when one is present. `Err(())` means the header exists but the body does
/// not match it.
fn verify_file_text(text: &str) -> Result<(String, bool), ()> {
    let Some(rest) = text.strip_prefix(SUM_PREFIX) else {
        return Ok((text.to_string(), false)); // pre-checksum file
    };
    let Some((sum, body)) = rest.split_once('\n') else {
        return Err(()); // header line never terminated: torn write
    };
    if content_hash(body) != sum {
        return Err(());
    }
    Ok((body.to_string(), true))
}

impl DirStore {
    /// Opens (or creates) the store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> StoreResult<DirStore> {
        let root = root.as_ref().to_path_buf();
        for sub in ["sessions", "workloads"] {
            std::fs::create_dir_all(root.join(sub))
                .map_err(|e| StoreError::new(format!("open dir store {}", root.display()), e))?;
        }
        Ok(DirStore { root })
    }

    /// The root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn record_path(&self, namespace: &str, key: &str) -> PathBuf {
        self.root
            .join(namespace)
            .join(format!("{}.json", encode_key(key)))
    }

    fn write_atomic(&self, context: &str, path: &Path, text: &str) -> StoreResult<()> {
        let tmp = path.with_extension("json.tmp");
        {
            let mut f =
                std::fs::File::create(&tmp).map_err(|e| StoreError::new(context.to_string(), e))?;
            f.write_all(format!("{SUM_PREFIX}{}\n", content_hash(text)).as_bytes())
                .map_err(|e| StoreError::new(context.to_string(), e))?;
            f.write_all(text.as_bytes())
                .map_err(|e| StoreError::new(context.to_string(), e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| StoreError::new(context.to_string(), e))
    }

    fn read(&self, context: &str, path: &Path) -> StoreResult<Option<String>> {
        match std::fs::read_to_string(path) {
            Ok(text) => match verify_file_text(&text) {
                Ok((body, _)) => Ok(Some(body)),
                Err(()) => Err(StoreError::new(
                    context.to_string(),
                    format!("record checksum mismatch in {}", path.display()),
                )),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::new(context.to_string(), e)),
        }
    }

    fn list(&self, namespace: &str) -> StoreResult<Vec<String>> {
        let dir = self.root.join(namespace);
        let context = format!("list {}", dir.display());
        let mut keys = Vec::new();
        let entries = std::fs::read_dir(&dir).map_err(|e| StoreError::new(context.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::new(context.clone(), e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".json") else {
                continue; // temp files and foreign droppings
            };
            if let Some(key) = decode_key(stem) {
                keys.push(key);
            }
        }
        keys.sort();
        Ok(keys)
    }

    /// Sweeps both namespaces: verifies every record checksum, renames
    /// damaged files to `<name>.quarantined` (so later reads are clean
    /// misses and the bytes stay available for manual inspection), and
    /// removes orphaned `.json.tmp` files left by a crash between create
    /// and rename. Returns the recovery report.
    pub fn fsck(&self) -> StoreResult<FsckReport> {
        let mut report = FsckReport {
            backend: "dir",
            ..FsckReport::default()
        };
        for namespace in ["sessions", "workloads"] {
            let dir = self.root.join(namespace);
            let context = format!("fsck {}", dir.display());
            let entries =
                std::fs::read_dir(&dir).map_err(|e| StoreError::new(context.clone(), e))?;
            let mut live = 0usize;
            for entry in entries {
                let entry = entry.map_err(|e| StoreError::new(context.clone(), e))?;
                let path = entry.path();
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.ends_with(".json.tmp") {
                    // Orphaned temp file: the rename never happened, so the
                    // record it was replacing is still authoritative.
                    std::fs::remove_file(&path).map_err(|e| StoreError::new(context.clone(), e))?;
                    report.reclaimed_tmp_files += 1;
                    continue;
                }
                let Some(stem) = name.strip_suffix(".json") else {
                    continue;
                };
                report.records_scanned += 1;
                let key = decode_key(stem).unwrap_or_else(|| stem.to_string());
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| StoreError::new(context.clone(), e))?;
                match verify_file_text(&text) {
                    Ok(_) => live += 1,
                    Err(()) => {
                        let quarantine = path.with_extension("json.quarantined");
                        std::fs::rename(&path, &quarantine)
                            .map_err(|e| StoreError::new(context.clone(), e))?;
                        report.quarantined.push(QuarantinedRecord {
                            namespace: namespace.to_string(),
                            key,
                            location: quarantine.display().to_string(),
                            reason: "checksum mismatch".to_string(),
                        });
                    }
                }
            }
            if namespace == "sessions" {
                report.live_sessions = live;
            } else {
                report.live_workloads = live;
            }
        }
        Ok(report)
    }
}

impl SnapshotStore for DirStore {
    fn put_session(&self, key: &str, text: &str) -> StoreResult<()> {
        let path = self.record_path("sessions", key);
        self.write_atomic(&format!("put_session {key}"), &path, text)
    }

    fn get_session(&self, key: &str) -> StoreResult<Option<String>> {
        let path = self.record_path("sessions", key);
        self.read(&format!("get_session {key}"), &path)
    }

    fn remove_session(&self, key: &str) -> StoreResult<bool> {
        let path = self.record_path("sessions", key);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::new(format!("remove_session {key}"), e)),
        }
    }

    fn session_keys(&self) -> StoreResult<Vec<String>> {
        self.list("sessions")
    }

    fn put_workload(&self, hash: &str, text: &str) -> StoreResult<()> {
        let path = self.record_path("workloads", hash);
        if path.exists() {
            return Ok(()); // content-addressed: identical by construction
        }
        self.write_atomic(&format!("put_workload {hash}"), &path, text)
    }

    fn get_workload(&self, hash: &str) -> StoreResult<Option<String>> {
        let path = self.record_path("workloads", hash);
        self.read(&format!("get_workload {hash}"), &path)
    }

    fn has_workload(&self, hash: &str) -> StoreResult<bool> {
        Ok(self.record_path("workloads", hash).exists())
    }

    fn workload_hashes(&self) -> StoreResult<Vec<String>> {
        self.list("workloads")
    }

    fn backend_name(&self) -> &'static str {
        "dir"
    }

    fn fsck(&self) -> StoreResult<FsckReport> {
        DirStore::fsck(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qfe-dirstore-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dir_store_roundtrips_and_survives_reopen() {
        let root = temp_root("roundtrip");
        {
            let store = DirStore::open(&root).unwrap();
            store.put_session("s1", "{\"v\":1}").unwrap();
            store.put_session("s1", "{\"v\":2}").unwrap();
            store.put_workload("deadbeef", "{\"w\":1}").unwrap();
        }
        let store = DirStore::open(&root).unwrap();
        assert_eq!(store.get_session("s1").unwrap().unwrap(), "{\"v\":2}");
        assert_eq!(store.session_keys().unwrap(), vec!["s1"]);
        assert_eq!(store.workload_hashes().unwrap(), vec!["deadbeef"]);
        assert!(store.remove_session("s1").unwrap());
        assert!(!store.remove_session("s1").unwrap());
        assert!(store.session_keys().unwrap().is_empty());
        assert!(store.root().ends_with(root.file_name().unwrap()));
        assert_eq!(store.backend_name(), "dir");
    }

    #[test]
    fn awkward_keys_are_encoded() {
        let root = temp_root("encode");
        let store = DirStore::open(&root).unwrap();
        let key = "weird/key with spaces%and#stuff";
        store.put_session(key, "{}").unwrap();
        assert_eq!(store.get_session(key).unwrap().unwrap(), "{}");
        assert_eq!(store.session_keys().unwrap(), vec![key.to_string()]);
        // The encoded file actually lives directly under sessions/.
        let encoded = encode_key(key);
        assert!(root
            .join("sessions")
            .join(format!("{encoded}.json"))
            .exists());
        assert_eq!(decode_key(&encoded).unwrap(), key);
    }

    #[test]
    fn workload_files_are_write_once() {
        let root = temp_root("once");
        let store = DirStore::open(&root).unwrap();
        store.put_workload("h", "first").unwrap();
        store.put_workload("h", "second").unwrap();
        assert_eq!(store.get_workload("h").unwrap().unwrap(), "first");
        assert!(store.has_workload("h").unwrap());
        assert!(!store.has_workload("other").unwrap());
        assert_eq!(store.get_workload("other").unwrap(), None);
    }

    #[test]
    fn read_verifies_checksum_and_fails_only_that_record() {
        let root = temp_root("verify");
        let store = DirStore::open(&root).unwrap();
        store.put_session("good", "{\"v\":\"fine\"}").unwrap();
        store.put_session("bad", "{\"v\":\"rotten\"}").unwrap();
        // Rot the body of one file in place (keeping the stale header).
        let path = root.join("sessions").join("bad.json");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("rotten", "ROTTEN")).unwrap();
        let err = store.get_session("bad").unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // Only the damaged record fails; its sibling still serves.
        assert_eq!(
            store.get_session("good").unwrap().unwrap(),
            "{\"v\":\"fine\"}"
        );
    }

    #[test]
    fn headerless_legacy_files_still_serve() {
        let root = temp_root("legacy");
        let store = DirStore::open(&root).unwrap();
        std::fs::write(root.join("sessions").join("old.json"), "{\"v\":\"raw\"}").unwrap();
        assert_eq!(
            store.get_session("old").unwrap().unwrap(),
            "{\"v\":\"raw\"}"
        );
        assert_eq!(store.session_keys().unwrap(), vec!["old"]);
    }

    #[test]
    fn fsck_quarantines_and_reclaims() {
        let root = temp_root("fsck");
        let store = DirStore::open(&root).unwrap();
        store.put_session("s1", "{\"v\":1}").unwrap();
        store.put_session("s2", "{\"v\":\"target\"}").unwrap();
        store.put_workload("w1", "{\"w\":1}").unwrap();
        let clean = store.fsck().unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.backend, "dir");
        assert_eq!(clean.live_sessions, 2);
        assert_eq!(clean.live_workloads, 1);

        // Rot one file and strand a temp file, as a crash would.
        let path = root.join("sessions").join("s2.json");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("target", "TARGET")).unwrap();
        std::fs::write(root.join("workloads").join("w9.json.tmp"), "partial").unwrap();

        let report = store.fsck().unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].key, "s2");
        assert_eq!(report.live_sessions, 1);
        assert_eq!(report.reclaimed_tmp_files, 1);
        // The damaged record is out of service but preserved for forensics;
        // reads are clean misses now.
        assert_eq!(store.get_session("s2").unwrap(), None);
        assert!(root.join("sessions").join("s2.json.quarantined").exists());
        assert!(!root.join("workloads").join("w9.json.tmp").exists());
        // A second pass finds nothing new.
        assert!(store.fsck().unwrap().is_clean());
    }
}
