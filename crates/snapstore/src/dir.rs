//! The directory-per-deployment store: one file per parked session.
//!
//! ```text
//! <root>/sessions/<key>.json     — parked session state documents
//! <root>/workloads/<hash>.json   — content-addressed workload payloads
//! ```
//!
//! The trivially inspectable backend: operators can `ls` the parked
//! sessions, `cat` a state document, and delete a damaged record with `rm`.
//! Writes go to a temp file and are renamed into place, so readers never
//! observe a half-written document. Keys are percent-encoded into file
//! names, so any key the host produces is representable.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::store::{SnapshotStore, StoreError, StoreResult};

/// [`SnapshotStore`] backed by a directory tree, one file per record.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

/// Percent-encodes a key into a safe file stem: alphanumerics and `._-`
/// pass through, everything else becomes `%XX` per byte.
fn encode_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for &b in key.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
        }
    }
    out
}

/// Inverse of [`encode_key`]; `None` for stems this store never produced.
fn decode_key(stem: &str) -> Option<String> {
    let mut bytes = Vec::with_capacity(stem.len());
    let mut chars = stem.bytes();
    while let Some(b) = chars.next() {
        if b == b'%' {
            let hi = chars.next()?;
            let lo = chars.next()?;
            let hex = [hi, lo];
            let hex = std::str::from_utf8(&hex).ok()?;
            bytes.push(u8::from_str_radix(hex, 16).ok()?);
        } else {
            bytes.push(b);
        }
    }
    String::from_utf8(bytes).ok()
}

impl DirStore {
    /// Opens (or creates) the store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> StoreResult<DirStore> {
        let root = root.as_ref().to_path_buf();
        for sub in ["sessions", "workloads"] {
            std::fs::create_dir_all(root.join(sub))
                .map_err(|e| StoreError::new(format!("open dir store {}", root.display()), e))?;
        }
        Ok(DirStore { root })
    }

    /// The root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn record_path(&self, namespace: &str, key: &str) -> PathBuf {
        self.root
            .join(namespace)
            .join(format!("{}.json", encode_key(key)))
    }

    fn write_atomic(&self, context: &str, path: &Path, text: &str) -> StoreResult<()> {
        let tmp = path.with_extension("json.tmp");
        {
            let mut f =
                std::fs::File::create(&tmp).map_err(|e| StoreError::new(context.to_string(), e))?;
            f.write_all(text.as_bytes())
                .map_err(|e| StoreError::new(context.to_string(), e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| StoreError::new(context.to_string(), e))
    }

    fn read(&self, context: &str, path: &Path) -> StoreResult<Option<String>> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::new(context.to_string(), e)),
        }
    }

    fn list(&self, namespace: &str) -> StoreResult<Vec<String>> {
        let dir = self.root.join(namespace);
        let context = format!("list {}", dir.display());
        let mut keys = Vec::new();
        let entries = std::fs::read_dir(&dir).map_err(|e| StoreError::new(context.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::new(context.clone(), e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".json") else {
                continue; // temp files and foreign droppings
            };
            if let Some(key) = decode_key(stem) {
                keys.push(key);
            }
        }
        keys.sort();
        Ok(keys)
    }
}

impl SnapshotStore for DirStore {
    fn put_session(&self, key: &str, text: &str) -> StoreResult<()> {
        let path = self.record_path("sessions", key);
        self.write_atomic(&format!("put_session {key}"), &path, text)
    }

    fn get_session(&self, key: &str) -> StoreResult<Option<String>> {
        let path = self.record_path("sessions", key);
        self.read(&format!("get_session {key}"), &path)
    }

    fn remove_session(&self, key: &str) -> StoreResult<bool> {
        let path = self.record_path("sessions", key);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::new(format!("remove_session {key}"), e)),
        }
    }

    fn session_keys(&self) -> StoreResult<Vec<String>> {
        self.list("sessions")
    }

    fn put_workload(&self, hash: &str, text: &str) -> StoreResult<()> {
        let path = self.record_path("workloads", hash);
        if path.exists() {
            return Ok(()); // content-addressed: identical by construction
        }
        self.write_atomic(&format!("put_workload {hash}"), &path, text)
    }

    fn get_workload(&self, hash: &str) -> StoreResult<Option<String>> {
        let path = self.record_path("workloads", hash);
        self.read(&format!("get_workload {hash}"), &path)
    }

    fn has_workload(&self, hash: &str) -> StoreResult<bool> {
        Ok(self.record_path("workloads", hash).exists())
    }

    fn workload_hashes(&self) -> StoreResult<Vec<String>> {
        self.list("workloads")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qfe-dirstore-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dir_store_roundtrips_and_survives_reopen() {
        let root = temp_root("roundtrip");
        {
            let store = DirStore::open(&root).unwrap();
            store.put_session("s1", "{\"v\":1}").unwrap();
            store.put_session("s1", "{\"v\":2}").unwrap();
            store.put_workload("deadbeef", "{\"w\":1}").unwrap();
        }
        let store = DirStore::open(&root).unwrap();
        assert_eq!(store.get_session("s1").unwrap().unwrap(), "{\"v\":2}");
        assert_eq!(store.session_keys().unwrap(), vec!["s1"]);
        assert_eq!(store.workload_hashes().unwrap(), vec!["deadbeef"]);
        assert!(store.remove_session("s1").unwrap());
        assert!(!store.remove_session("s1").unwrap());
        assert!(store.session_keys().unwrap().is_empty());
        assert!(store.root().ends_with(root.file_name().unwrap()));
    }

    #[test]
    fn awkward_keys_are_encoded() {
        let root = temp_root("encode");
        let store = DirStore::open(&root).unwrap();
        let key = "weird/key with spaces%and#stuff";
        store.put_session(key, "{}").unwrap();
        assert_eq!(store.get_session(key).unwrap().unwrap(), "{}");
        assert_eq!(store.session_keys().unwrap(), vec![key.to_string()]);
        // The encoded file actually lives directly under sessions/.
        let encoded = encode_key(key);
        assert!(root
            .join("sessions")
            .join(format!("{encoded}.json"))
            .exists());
        assert_eq!(decode_key(&encoded).unwrap(), key);
    }

    #[test]
    fn workload_files_are_write_once() {
        let root = temp_root("once");
        let store = DirStore::open(&root).unwrap();
        store.put_workload("h", "first").unwrap();
        store.put_workload("h", "second").unwrap();
        assert_eq!(store.get_workload("h").unwrap().unwrap(), "first");
        assert!(store.has_workload("h").unwrap());
        assert!(!store.has_workload("other").unwrap());
        assert_eq!(store.get_workload("other").unwrap(), None);
    }
}
