//! # qfe-snapstore — durable, content-addressed session parking
//!
//! A QFE deployment hosts many long-lived interactive sessions with large
//! idle gaps between feedback rounds. Keeping every idle [`QfeEngine`]
//! resident wastes memory, and keeping it only in memory loses the session
//! on a crash. This crate provides the storage discipline for parking
//! sessions off the heap and across process restarts:
//!
//! * [`SnapshotStore`] — the trait a durable backend implements, with three
//!   implementations: [`MemoryStore`] (tests and single-process eviction),
//!   [`LogStore`] (one append-only log file with an in-memory index, cheap
//!   to write, survives crashes mid-record), and [`DirStore`]
//!   (directory-per-deployment with one file per session, trivially
//!   inspectable by operators).
//! * **Content addressing** — the example pair `(D, R)` of a workload is
//!   serialized once, keyed by the hash of its canonical JSON text
//!   ([`qfe_wire::content_hash`]), and every parked session on that workload
//!   stores only a tiny state document referencing the hash. Thousands of
//!   parked sessions share one copy of the bulk data (see
//!   [`park_snapshot`] / [`load_snapshot`]).
//! * [`SessionHost`] — a [`SessionManager`] wrapped with a store and a
//!   memory-pressure watermark: sessions over the resident limit are parked
//!   longest-idle-first, and any request for a parked session transparently
//!   rehydrates it under its original id.
//!
//! Failures surface as [`QfeError::Store`] with a context string naming the
//! operation and key — a corrupt or missing snapshot produces a clean error
//! for one request, never a poisoned lock or a crashed host.
//!
//! ## Integrity and fault tolerance
//!
//! Both durable backends write a per-record checksum
//! ([`qfe_wire::content_hash`] over the record identity and body) and verify
//! it on **every** read, not just at open. A record whose bytes rot on disk
//! is *quarantined*: dropped from service so later reads are clean misses,
//! while the damage is reported through [`LogStore::fsck`] /
//! [`DirStore::fsck`] as an [`FsckReport`] listing each
//! [`QuarantinedRecord`], garbage bytes, and reclaimed temp files.
//!
//! For provoking failures deterministically, [`FaultyStore`] wraps any
//! [`SnapshotStore`] and injects faults — IO errors, torn writes, stale
//! reads, latency — scripted by a serializable, seeded [`FaultPlan`]. The
//! same plan and seed always produce the same fault schedule, which is what
//! lets CI replay a chaos run byte-for-byte.
//!
//! [`QfeEngine`]: qfe_core::QfeEngine
//! [`SessionManager`]: qfe_core::SessionManager
//! [`QfeError::Store`]: qfe_core::QfeError

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod dir;
mod fault;
mod fsck;
mod host;
mod log;
mod park;
mod store;

pub use backend::SessionBackend;
pub use dir::DirStore;
pub use fault::{FaultAction, FaultPlan, FaultRule, FaultTrigger, FaultyStore, InjectedFault};
pub use fsck::{FsckReport, QuarantinedRecord};
pub use host::{
    parse_session_store_key, session_store_key, HostConfig, ParkAllReport, SessionHost,
};
pub use log::LogStore;
pub use park::{load_snapshot, park_snapshot, ParkReceipt};
pub use store::{MemoryStore, SnapshotStore, StoreError, StoreResult};
